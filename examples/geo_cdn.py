"""Geo-distributed content service: the paper's motivating scenario.

A content service stores several objects of different popularity
(Zipf-distributed) in a replicated store spanning 12 data centers.
Its audience is concentrated in Europe.  Each object starts at random
sites — the uninformed placement the paper says real systems use — and
the per-object placement controllers gradually migrate replicas using
micro-cluster summaries.

The script reports, per object, the mean read delay before the first
migration epoch and at steady state, plus the control-plane overhead
(summary bytes shipped — the O(k·m) cost the paper advertises).

Run:  python examples/geo_cdn.py
"""

import numpy as np

from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation, ZipfObjectPopularity

N_NODES = 100
N_DATACENTERS = 12
OBJECTS = [f"video-{i}" for i in range(5)]
EPOCH_MS = 20_000.0
RUN_MS = 160_000.0


def main() -> None:
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=N_NODES), seed=21)
    embedding = embed_matrix(matrix, system="rnp", rounds=100,
                             rng=np.random.default_rng(22))
    planar = embedding.coords[:, :embedding.space.dim]

    sim = Simulator(seed=21)
    candidates = tuple(range(N_DATACENTERS))
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle")

    for key in OBJECTS:
        store.create_object(
            key, size_gb=2.0, k=3,
            controller_config=ControllerConfig(k=3, max_micro_clusters=10),
            policy=MigrationPolicy(min_relative_gain=0.03,
                                   min_absolute_gain_ms=0.5),
            epoch_period_ms=EPOCH_MS,
        )

    # A European-heavy audience (the service's home market).
    clients = tuple(range(N_DATACENTERS, N_NODES))
    population = ClientPopulation.region_weighted(
        clients, topology,
        {"eu-west": 6.0, "eu-central": 6.0}, default_weight=1.0)
    popularity = ZipfObjectPopularity(OBJECTS, exponent=1.0)
    AccessWorkload(store, population, OBJECTS, rate_per_second=300.0,
                   popularity=popularity)

    sim.run_until(RUN_MS)

    print(f"{'object':>10} | {'reads':>6} | {'delay@start':>11} | "
          f"{'delay@end':>9} | {'migrations':>10} | {'summary KB':>10}")
    print("-" * 72)
    for key in OBJECTS:
        records = [r for r in store.log.records if r.key == key
                   and r.kind == "read"]
        early = [r.delay_ms for r in records if r.time < EPOCH_MS]
        late = [r.delay_ms for r in records if r.time > RUN_MS - 2 * EPOCH_MS]
        reports = store.epoch_reports(key)
        tally = store.controller(key).tally
        print(f"{key:>10} | {len(records):>6} | "
              f"{np.mean(early):>8.1f} ms | {np.mean(late):>6.1f} ms | "
              f"{sum(1 for r in reports if r.migrated):>10} | "
              f"{tally.summary_bytes / 1024:>10.1f}")

    total_reads = sum(1 for r in store.log.records if r.kind == "read")
    data_bytes = store.network.per_kind_bytes.get("read-rep", 0)
    control_bytes = store.network.per_kind_bytes.get("summary", 0)
    print()
    print(f"total reads: {total_reads}; placement control traffic: "
          f"{control_bytes / 1024:.1f} KB "
          f"({control_bytes / max(data_bytes, 1) * 100:.4f}% of data traffic)")


if __name__ == "__main__":
    main()
