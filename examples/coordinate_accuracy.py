"""Compare the network coordinate systems (Section III-A substrate).

Embeds the same 226-node synthetic PlanetLab matrix with every
implemented system — Vivaldi, RNP (the paper's), GNP and classical MDS
— and reports the metrics that matter to replica placement: prediction
error and how often a client's coordinate-predicted closest replica is
the true closest.

Run:  python examples/coordinate_accuracy.py
"""

import numpy as np

from repro.coords import (
    closest_selection_accuracy,
    embed_matrix,
    median_absolute_error,
    relative_errors,
    selection_penalty_ms,
    stress,
)
from repro.net import PlanetLabParams, synthetic_planetlab_matrix


def main() -> None:
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=0)
    candidates = list(range(0, matrix.n, 12))[:10]
    clients = [i for i in range(matrix.n) if i not in candidates]

    print(f"226-node synthetic PlanetLab matrix; "
          f"median pairwise RTT {matrix.median():.0f} ms")
    print()
    print(f"{'system':>8} | {'med abs err':>11} | {'med rel err':>11} | "
          f"{'stress':>6} | {'pick acc':>8} | {'pick penalty':>12}")
    print("-" * 72)
    for system in ("vivaldi", "rnp", "gnp", "mds"):
        result = embed_matrix(matrix, system=system, rounds=200,
                              rng=np.random.default_rng(1))
        mae = median_absolute_error(matrix, result.coords, result.space)
        rel = float(np.median(relative_errors(matrix, result.coords,
                                              result.space)))
        s1 = stress(matrix, result.coords, result.space)
        acc = closest_selection_accuracy(matrix, result.coords,
                                         result.space, clients, candidates)
        pen = selection_penalty_ms(matrix, result.coords, result.space,
                                   clients, candidates)
        print(f"{system:>8} | {mae:>8.1f} ms | {rel:>11.3f} | "
              f"{s1:>6.3f} | {acc:>8.2f} | {pen:>9.1f} ms")

    print()
    print("'pick penalty' = extra latency from trusting coordinates when")
    print("choosing among 10 replica sites; what placement actually pays.")


if __name__ == "__main__":
    main()
