"""Custom topologies: placement for an enterprise's own geography.

Everything in the evaluation uses the PlanetLab-like world mix, but the
topology model is fully parameterizable: define your own
:class:`~repro.net.Region` blobs (offices, markets), generate a matrix,
and run the same placement machinery.

Here: a company with a huge engineering hub in Bangalore, product teams
in Berlin, and a small office in São Paulo, choosing 2 replica sites
among 8 candidate data centers spread across its regions.

Run:  python examples/custom_topology.py
"""

import numpy as np

from repro.coords import embed_matrix
from repro.net import PlanetLabParams, Region, synthetic_planetlab_matrix
from repro.placement import (
    OnlineClusteringPlacement,
    OptimalPlacement,
    PlacementProblem,
    RandomPlacement,
    average_access_delay,
)

COMPANY_REGIONS = (
    Region("bangalore", 12.97, 77.59, weight=0.55, spread_deg=1.5),
    Region("berlin", 52.52, 13.40, weight=0.30, spread_deg=1.5),
    Region("sao-paulo", -23.55, -46.63, weight=0.15, spread_deg=1.5),
)


def main() -> None:
    params = PlanetLabParams(n=60, regions=COMPANY_REGIONS,
                             congested_fraction=0.05)
    matrix, topology = synthetic_planetlab_matrix(params, seed=51)
    print(matrix.describe())
    print()

    embedding = embed_matrix(matrix, system="rnp", rounds=120,
                             rng=np.random.default_rng(52))
    planar = embedding.coords[:, :embedding.space.dim]
    heights = embedding.coords[:, -1]

    # Candidates: a few nodes per region act as data centers.
    rng = np.random.default_rng(53)
    by_region: dict[str, list[int]] = {}
    for node in range(matrix.n):
        by_region.setdefault(topology.region_name(node), []).append(node)
    candidates = []
    for region, nodes in sorted(by_region.items()):
        picks = rng.choice(len(nodes), size=min(3, len(nodes)),
                           replace=False)
        candidates.extend(nodes[int(p)] for p in picks)
    candidates = tuple(sorted(candidates)[:8])
    clients = tuple(i for i in range(matrix.n) if i not in set(candidates))

    problem = PlacementProblem(matrix, candidates, clients, k=2,
                               coords=planar, heights=heights)
    print(f"{len(candidates)} candidate data centers, "
          f"{len(clients)} clients; choosing k=2 replica sites\n")
    print(f"{'strategy':>20} | {'mean delay':>10} | sites (region)")
    print("-" * 64)
    for strategy in (RandomPlacement(), OnlineClusteringPlacement(),
                     OptimalPlacement()):
        sites = strategy.place(problem, np.random.default_rng(54))
        delay = average_access_delay(matrix, clients, sites)
        names = ", ".join(topology.region_name(s) for s in sorted(sites))
        print(f"{strategy.name:>20} | {delay:>7.1f} ms | {names}")

    print()
    print("With 55% of demand in Bangalore and 30% in Berlin, informed")
    print("placement covers those two hubs; random frequently strands a")
    print("replica in the small office's region instead.")


if __name__ == "__main__":
    main()
