"""Gradual migration chasing a moving user population.

The scenario that motivates *gradual* placement: a service's demand
migrates from North America to East Asia over half an hour (think a
global news cycle rolling with the sun).  A static placement decays;
the paper's controller re-places replicas epoch by epoch using only
micro-cluster summaries.

The script compares three policies on identical workloads:

* ``static``   — never migrate (threshold ~ infinity);
* ``paper``    — migrate when the predicted gain exceeds 5 %;
* ``eager``    — migrate on any predicted improvement.

Run:  python examples/regional_shift.py
"""

import numpy as np

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation, RegionalShift

N_NODES = 90
N_DATACENTERS = 14
RUN_MS = 300_000.0


def run_policy(name: str, threshold: float) -> dict:
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=N_NODES), seed=11)
    embedding = embed_matrix(matrix, system="rnp", rounds=100,
                             rng=np.random.default_rng(12))
    planar = embedding.coords[:, :embedding.space.dim]

    sim = Simulator(seed=11)
    # Data centers sit at geographically dispersed nodes (the paper's
    # setting) so every demand region has a viable nearby site.
    candidates, _ = draw_candidates(matrix, N_DATACENTERS,
                                    np.random.default_rng(13))
    store = ReplicatedStore(sim, matrix, candidates,
                            planar, selection="oracle")
    store.create_object(
        "feed", size_gb=5.0, k=2,
        controller_config=ControllerConfig(k=2, max_micro_clusters=12),
        policy=MigrationPolicy(min_relative_gain=threshold,
                               min_absolute_gain_ms=0.0),
        epoch_period_ms=20_000.0,
    )

    clients = tuple(i for i in range(N_NODES) if i not in set(candidates))
    shift = RegionalShift(topology, "us-east", "asia-east",
                          start_ms=60_000.0, end_ms=240_000.0,
                          intensity=12.0)
    AccessWorkload(store, ClientPopulation.uniform(clients), ["feed"],
                   rate_per_second=150.0, pattern=shift)
    sim.run_until(RUN_MS)

    tally = store.controller("feed").tally
    last_minute = [r.delay_ms for r in store.log.records
                   if r.time > RUN_MS - 60_000.0]
    return {
        "name": name,
        "mean_delay": store.log.mean_delay(kind="read"),
        "final_delay": float(np.mean(last_minute)),
        "migrations": tally.migrations,
        "dollars": tally.migration_dollars,
    }


def main() -> None:
    rows = [
        run_policy("static (never migrate)", threshold=10.0),
        run_policy("paper (5% threshold)", threshold=0.05),
        run_policy("eager (any gain)", threshold=0.0),
    ]
    print(f"{'policy':>24} | {'mean delay':>10} | {'final delay':>11} | "
          f"{'migrations':>10} | {'cost ($)':>8}")
    print("-" * 78)
    for row in rows:
        print(f"{row['name']:>24} | {row['mean_delay']:>7.1f} ms | "
              f"{row['final_delay']:>8.1f} ms | {row['migrations']:>10} | "
              f"{row['dollars']:>8.2f}")
    static, paper, eager = rows
    print()
    saved = 100.0 * (static["mean_delay"] - paper["mean_delay"]) / static["mean_delay"]
    print(f"Gradual migration (5% threshold) cut the mean read delay by "
          f"{saved:.0f}% versus never migrating,")
    print(f"while migrating at most as often as the eager policy "
          f"({paper['migrations']} vs {eager['migrations']} moves) — "
          "the paper's trade-off.")


if __name__ == "__main__":
    main()
