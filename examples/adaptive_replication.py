"""Adaptive degree of replication under a flash crowd.

Section III-C: "this approach can also vary the number of replicas by
setting the parameter k — creating more replicas as the demand of an
object increases and discarding replicas as the demand decreases."

A single object serves a steady trickle of requests; at t = 60 s a
flash crowd multiplies demand 25× for one minute.  The adaptive
controller grows k toward ``k_max`` while the crowd lasts and sheds the
extra replicas afterwards.  The script prints one line per placement
epoch: demand, chosen k, replica sites and the migration verdict.

Run:  python examples/adaptive_replication.py
"""

import numpy as np

from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation, FlashCrowd

N_NODES = 80
N_DATACENTERS = 10
EPOCH_MS = 15_000.0


def main() -> None:
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=N_NODES), seed=5)
    embedding = embed_matrix(matrix, system="rnp", rounds=100,
                             rng=np.random.default_rng(6))
    planar = embedding.coords[:, :embedding.space.dim]

    sim = Simulator(seed=5)
    store = ReplicatedStore(sim, matrix, tuple(range(N_DATACENTERS)),
                            planar, selection="oracle")
    store.create_object(
        "hot-object", k=1,
        controller_config=ControllerConfig(
            k=1, max_micro_clusters=10,
            adaptive_k=True, k_min=1, k_max=5,
            demand_low=2_000, demand_high=2_500),
        policy=MigrationPolicy(min_relative_gain=0.0,
                               min_absolute_gain_ms=0.0),
        epoch_period_ms=EPOCH_MS,
    )

    clients = tuple(range(N_DATACENTERS, N_NODES))
    crowd = FlashCrowd(clients, start_ms=60_000.0, duration_ms=60_000.0,
                       multiplier=25.0)
    population = ClientPopulation.uniform(clients)
    AccessWorkload(store, population, ["hot-object"],
                   rate_per_second=100.0, pattern=crowd)

    # The temporal pattern reweights *who* asks; model the rate surge by
    # adding a second workload only active during the crowd window.
    surge = AccessWorkload(store, population, ["hot-object"],
                           rate_per_second=250.0)
    surge.stop()

    def surge_driver():
        if 60_000.0 <= sim.now < 120_000.0:
            for c in clients[::4]:
                store.clients[c].read("hot-object")

    from repro.sim import PeriodicProcess
    PeriodicProcess(sim, 100.0, surge_driver)

    sim.run_until(240_000.0)

    print(f"{'epoch t(s)':>10} | {'demand':>7} | {'k':>2} | "
          f"{'sites':>16} | verdict")
    print("-" * 64)
    for i, report in enumerate(store.epoch_reports("hot-object")):
        t = (i + 1) * EPOCH_MS / 1000.0
        sites = ",".join(str(s) for s in sorted(
            report.proposed_sites if report.migrated
            else report.previous_sites))
        print(f"{t:>10.0f} | {report.accesses:>7} | {report.k:>2} | "
              f"{sites:>16} | {report.verdict.reason}")

    ks = [r.k for r in store.epoch_reports("hot-object")]
    print()
    print(f"k grew to {max(ks)} during the crowd and settled at {ks[-1]} "
          "afterwards.")


if __name__ == "__main__":
    main()
