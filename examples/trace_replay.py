"""Trace replay: paired comparison of store configurations.

The paper's conclusion plans "more realistic evaluation study based on
data accesses in actual applications".  Traces are the mechanism: this
example generates one realistic access trace (diurnal demand, Zipf
object popularity, 10 % writes) and replays the *identical* trace
against three store configurations, so every difference in the results
is caused by the configuration — not workload noise:

* ``static``    — replicas stay at their initial random sites;
* ``online``    — the paper's controller migrates replicas each epoch;
* ``online+Q2`` — the controller plus quorum-2 reads (fresher, slower).

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ConsistencyConfig, ReplicatedStore
from repro.workloads import (
    ClientPopulation,
    DiurnalPattern,
    ZipfObjectPopularity,
    generate_trace,
    replay_trace,
)

N_NODES = 80
N_DATACENTERS = 12
OBJECTS = [f"obj-{i}" for i in range(4)]
DURATION_MS = 180_000.0


def build_world():
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=N_NODES), seed=31)
    planar = embed_matrix(matrix, system="rnp", rounds=100,
                          rng=np.random.default_rng(32)).coords[:, :3]
    candidates, clients = draw_candidates(matrix, N_DATACENTERS,
                                          np.random.default_rng(33))
    return matrix, topology, planar, candidates, clients


def run(trace, matrix, planar, candidates, epochs: bool, quorum: int):
    sim = Simulator(seed=31)
    store = ReplicatedStore(
        sim, matrix, candidates, planar, selection="oracle",
        consistency=ConsistencyConfig(read_quorum=quorum))
    for key in OBJECTS:
        store.create_object(
            key, k=2,
            controller_config=ControllerConfig(k=2, max_micro_clusters=10),
            policy=MigrationPolicy(min_relative_gain=0.05),
            epoch_period_ms=20_000.0 if epochs else None,
        )
    replay_trace(store, trace)
    # run_until, not run(): the periodic epoch processes reschedule
    # themselves forever, so draining the queue would never terminate.
    sim.run_until(DURATION_MS + 10_000.0)
    reads = store.log.delays(kind="read")
    migrations = sum(
        sum(1 for r in store.epoch_reports(key) if r.migrated)
        for key in OBJECTS)
    return {
        "reads": len(reads),
        "mean": float(reads.mean()),
        "p95": float(np.percentile(reads, 95)),
        "stale": store.log.stale_fraction(),
        "migrations": migrations,
    }


def main() -> None:
    matrix, topology, planar, candidates, clients = build_world()
    trace = generate_trace(
        ClientPopulation.uniform(clients), OBJECTS,
        duration_ms=DURATION_MS, rate_per_second=200.0,
        rng=np.random.default_rng(34), write_fraction=0.1,
        pattern=DiurnalPattern(topology, amplitude=0.7, period_hours=0.02),
        popularity=ZipfObjectPopularity(OBJECTS, exponent=1.0),
    )
    print(f"replaying one trace of {len(trace)} operations against "
          "three configurations\n")

    configs = [
        ("static", run(trace, matrix, planar, candidates, False, 1)),
        ("online", run(trace, matrix, planar, candidates, True, 1)),
        ("online+Q2", run(trace, matrix, planar, candidates, True, 2)),
    ]
    print(f"{'config':>10} | {'mean read':>9} | {'p95 read':>9} | "
          f"{'stale reads':>11} | {'migrations':>10}")
    print("-" * 62)
    for name, row in configs:
        print(f"{name:>10} | {row['mean']:>6.1f} ms | {row['p95']:>6.1f} ms |"
              f" {row['stale']:>10.1%} | {row['migrations']:>10}")
    print()
    print("Same operations, same arrival times — differences are purely")
    print("the placement policy and the read quorum.")


if __name__ == "__main__":
    main()
