"""Object groups: placing many objects as one virtual object.

Section II-A: a placement solution "can be applied to a group of data
objects by treating accesses to any object of the group as accesses to
a virtual object that represents all the objects of the group."

This example shows why grouping matters.  A photo service stores 30
small albums, all accessed by the same (European) audience.  Two
configurations run the same workload:

* ``per-object``  — every album is placed independently: 30 controllers,
  30 summary streams, 30 migration decisions;
* ``grouped``     — one group ("the European albums") placed as a single
  virtual object: one controller, one summary stream, one migration.

Quality ends up the same — the audience is shared, so the right sites
are the same — but the grouped configuration reaches it with a fraction
of the control traffic and migrations.

Run:  python examples/object_groups.py
"""

import numpy as np

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

N_NODES = 80
N_ALBUMS = 30
RUN_MS = 120_000.0
ALBUMS = [f"album-{i:02d}" for i in range(N_ALBUMS)]


def build_world():
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=N_NODES), seed=41)
    planar = embed_matrix(matrix, system="rnp", rounds=100,
                          rng=np.random.default_rng(42)).coords[:, :3]
    candidates, clients = draw_candidates(matrix, 12,
                                          np.random.default_rng(43))
    population = ClientPopulation.region_weighted(
        clients, topology, {"eu-west": 8.0, "eu-central": 8.0},
        default_weight=1.0)
    return matrix, planar, candidates, population


def run(grouped: bool):
    matrix, planar, candidates, population = build_world()
    sim = Simulator(seed=41)
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle")
    config = ControllerConfig(k=2, max_micro_clusters=10)
    policy = MigrationPolicy(min_relative_gain=0.05)
    if grouped:
        store.create_group("eu-albums", {key: 0.2 for key in ALBUMS},
                           k=2, controller_config=config, policy=policy,
                           epoch_period_ms=20_000.0)
    else:
        for key in ALBUMS:
            store.create_object(key, size_gb=0.2, k=2,
                                controller_config=config, policy=policy,
                                epoch_period_ms=20_000.0)
    AccessWorkload(store, population, ALBUMS, rate_per_second=300.0)
    sim.run_until(RUN_MS)

    unit_keys = ["eu-albums"] if grouped else ALBUMS
    migrations = sum(
        sum(1 for r in store.epoch_reports(k) if r.migrated)
        for k in unit_keys)
    summary_kb = sum(store.controller(k).tally.summary_bytes
                     for k in unit_keys) / 1024
    last_30s = [r.delay_ms for r in store.log.records
                if r.time > RUN_MS - 30_000.0]
    return {
        "mode": "grouped" if grouped else "per-object",
        "reads": len(store.log),
        "final_delay": float(np.mean(last_30s)),
        "migrations": migrations,
        "summary_kb": summary_kb,
    }


def main() -> None:
    rows = [run(grouped=False), run(grouped=True)]
    print(f"{N_ALBUMS} albums, one shared European audience, "
          f"identical workloads\n")
    print(f"{'mode':>12} | {'reads':>6} | {'final delay':>11} | "
          f"{'migrations':>10} | {'summary KB':>10}")
    print("-" * 62)
    for row in rows:
        print(f"{row['mode']:>12} | {row['reads']:>6} | "
              f"{row['final_delay']:>8.1f} ms | {row['migrations']:>10} | "
              f"{row['summary_kb']:>10.1f}")
    per, grp = rows
    print()
    print(f"Grouping cut control-plane summary traffic "
          f"{per['summary_kb'] / max(grp['summary_kb'], 0.1):.0f}x and "
          f"migrations {per['migrations']}->{grp['migrations']}")
    print(f"while final delay stayed comparable "
          f"({per['final_delay']:.1f} vs {grp['final_delay']:.1f} ms).")


if __name__ == "__main__":
    main()
