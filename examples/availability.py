"""Failures, client failover and self-healing replication.

The paper's introduction notes that users within a latency budget "may
have time to access a second or more replicas if they cannot access the
first"; its conclusion defers data availability to future work.  This
example exercises both: data-center nodes crash and recover at random
while a read workload runs, under three configurations —

* no failure handling at all (reads to dead replicas are lost),
* client-side failover (retry the next-closest replica on timeout),
* failover plus the store's availability monitor, which re-replicates
  lost redundancy from surviving copies.

Run:  python examples/availability.py
"""

import numpy as np

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import FailureInjector, Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

RUN_MS = 120_000.0


def run(name, read_timeout_ms, auto_repair):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=70), seed=17)
    planar = embed_matrix(matrix, system="rnp", rounds=80,
                          rng=np.random.default_rng(18)).coords[:, :3]
    sim = Simulator(seed=17)
    candidates, clients = draw_candidates(matrix, 12,
                                          np.random.default_rng(19))
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle",
                            read_timeout_ms=read_timeout_ms,
                            max_read_attempts=3,
                            auto_repair=auto_repair,
                            repair_period_ms=2_000.0)
    store.create_object(
        "obj", k=3,
        controller_config=ControllerConfig(k=3, max_micro_clusters=10))
    injector = FailureInjector(store.network)
    injector.random_failures(candidates, mtbf_ms=30_000.0, mttr_ms=15_000.0,
                             until=RUN_MS, rng=np.random.default_rng(20))
    workload = AccessWorkload(store, ClientPopulation.uniform(clients),
                              ["obj"], rate_per_second=150.0)
    sim.run_until(RUN_MS + 5_000.0)
    reads = [r for r in store.log.records if r.kind == "read"]
    return {
        "name": name,
        "issued": workload.operations_issued,
        "done": len(reads),
        "delay": float(np.mean([r.delay_ms for r in reads])),
        "repairs": store.repairs,
        "crashes": len(injector.crashes()),
    }


def main() -> None:
    rows = [
        run("no handling", read_timeout_ms=None, auto_repair=False),
        run("client retries", read_timeout_ms=600.0, auto_repair=False),
        run("retries + self-heal", read_timeout_ms=600.0, auto_repair=True),
    ]
    print(f"(injected {rows[0]['crashes']} crashes over "
          f"{RUN_MS / 1000:.0f} s; 3 replicas on 12 data centers)\n")
    print(f"{'configuration':>20} | {'reads completed':>15} | "
          f"{'mean delay':>10} | {'repairs':>7}")
    print("-" * 64)
    for row in rows:
        print(f"{row['name']:>20} | {row['done']:>6}/{row['issued']:<6} "
              f"{row['done'] / row['issued']:>4.0%} | {row['delay']:>7.1f} ms"
              f" | {row['repairs']:>7}")
    print()
    print("Retries recover lost reads at a latency cost (timeout + second")
    print("round-trip); self-healing restores both availability and speed.")


if __name__ == "__main__":
    main()
