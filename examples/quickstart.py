"""Quickstart: compare the paper's four placement strategies.

Builds a synthetic PlanetLab-style RTT matrix, assigns RNP network
coordinates, and runs random / offline k-means / online clustering /
optimal placement on the same problem instances — a miniature of the
paper's Figure 2 experiment.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EvaluationSetting,
    format_figure,
    run_figure2,
)


def main() -> None:
    # A reduced setting so the script finishes in seconds; drop the
    # overrides to reproduce the paper's full 226-node, 30-run figures.
    setting = EvaluationSetting(n_nodes=80, n_runs=8, seed=7)

    print("Simulating", setting.n_nodes, "nodes,", setting.n_runs,
          "runs per point; coordinates via", setting.coord_system.upper())
    print()

    figure = run_figure2(setting, replica_counts=(1, 2, 3, 4, 5), n_dc=15)
    print(format_figure(figure))
    print()

    random_k3 = figure.means("random")[2]
    online_k3 = figure.means("online clustering")[2]
    optimal_k3 = figure.means("optimal")[2]
    gain = 100.0 * (random_k3 - online_k3) / random_k3
    print(f"At k=3: online clustering is {gain:.0f}% below random placement")
    print(f"        and within {100 * (online_k3 / optimal_k3 - 1):.0f}% of "
          "the exhaustive optimum.")


if __name__ == "__main__":
    main()
