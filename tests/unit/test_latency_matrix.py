"""Unit tests for repro.net.latency."""

import numpy as np
import pytest

from repro.net import LatencyMatrix


def simple_matrix():
    rtt = np.array([
        [0.0, 10.0, 50.0],
        [10.0, 0.0, 40.0],
        [50.0, 40.0, 0.0],
    ])
    return LatencyMatrix(rtt, ("a", "b", "c"))


class TestConstruction:
    def test_valid_matrix_accepted(self):
        m = simple_matrix()
        assert m.n == 3
        assert len(m) == 3
        assert m.names == ("a", "b", "c")

    def test_default_names_generated(self):
        m = LatencyMatrix(np.zeros((2, 2)))
        assert m.names == ("node-0", "node-1")

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            LatencyMatrix(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one node"):
            LatencyMatrix(np.zeros((0, 0)))

    def test_rejects_negative(self):
        rtt = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            LatencyMatrix(rtt)

    def test_rejects_nonzero_diagonal(self):
        rtt = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            LatencyMatrix(rtt)

    def test_rejects_asymmetric(self):
        rtt = np.array([[0.0, 2.0], [3.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            LatencyMatrix(rtt)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="names"):
            LatencyMatrix(np.zeros((2, 2)), ("only-one",))


class TestAccessors:
    def test_latency_lookup(self):
        m = simple_matrix()
        assert m.latency(0, 1) == 10.0
        assert m.latency(2, 0) == 50.0
        assert m.latency(1, 1) == 0.0

    def test_one_way_is_half_rtt(self):
        m = simple_matrix()
        assert m.one_way(0, 2) == 25.0

    def test_submatrix_preserves_order(self):
        m = simple_matrix()
        sub = m.submatrix([2, 0])
        assert sub.n == 2
        assert sub.names == ("c", "a")
        assert sub.latency(0, 1) == 50.0

    def test_submatrix_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            simple_matrix().submatrix([])

    def test_rows_shape_and_values(self):
        m = simple_matrix()
        block = m.rows([0, 1], [2])
        assert block.shape == (2, 1)
        assert block[0, 0] == 50.0
        assert block[1, 0] == 40.0


class TestStatistics:
    def test_pair_values_upper_triangle(self):
        m = simple_matrix()
        assert sorted(m.pair_values()) == [10.0, 40.0, 50.0]

    def test_median_and_percentile(self):
        m = simple_matrix()
        assert m.median() == 40.0
        assert m.percentile(100) == 50.0

    def test_triangle_violation_detected(self):
        # 0-2 direct (100) is worse than 0-1-2 (10 + 10): a violation.
        rtt = np.array([
            [0.0, 10.0, 100.0],
            [10.0, 0.0, 10.0],
            [100.0, 10.0, 0.0],
        ])
        m = LatencyMatrix(rtt)
        assert m.triangle_violation_fraction() == 1.0

    def test_no_violation_in_metric_matrix(self):
        m = simple_matrix()
        assert m.triangle_violation_fraction() == 0.0

    def test_sampled_violation_fraction_bounded(self):
        m = simple_matrix()
        frac = m.triangle_violation_fraction(sample=50, rng=np.random.default_rng(1))
        assert 0.0 <= frac <= 1.0


class TestFromCondensed:
    def test_roundtrip(self):
        m = LatencyMatrix.from_condensed([10.0, 50.0, 40.0], ["a", "b", "c"])
        assert m.latency(0, 1) == 10.0
        assert m.latency(0, 2) == 50.0
        assert m.latency(1, 2) == 40.0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError, match="condensed"):
            LatencyMatrix.from_condensed([1.0, 2.0])
