"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis import render_chart
from repro.analysis.experiment import FigureResult
from repro.analysis.stats import SeriesPoint, summarize


def make_figure(series_values):
    series = {
        name: [SeriesPoint(float(x), summarize([y]))
               for x, y in points]
        for name, points in series_values.items()
    }
    return FigureResult("Fig", "x label", "y label", series)


class TestRenderChart:
    def test_structure(self):
        fig = make_figure({"a": [(1, 10.0), (2, 20.0)],
                           "b": [(1, 15.0), (2, 5.0)]})
        text = render_chart(fig, width=20, height=6)
        lines = text.splitlines()
        assert lines[0] == "Fig — y label"
        assert "x label" in text
        assert "o a" in text and "x b" in text
        # y-axis extremes labelled.
        assert "20.0" in text and "5.0" in text

    def test_markers_present(self):
        fig = make_figure({"a": [(0, 0.0), (10, 10.0)]})
        text = render_chart(fig, width=16, height=5)
        assert text.count("o") >= 2

    def test_flat_series_handled(self):
        # Zero y-span must not divide by zero.
        fig = make_figure({"a": [(1, 7.0), (2, 7.0)]})
        text = render_chart(fig)
        assert "7.0" in text

    def test_single_point_handled(self):
        fig = make_figure({"a": [(3, 42.0)]})
        text = render_chart(fig)
        assert "42.0" in text

    def test_size_validation(self):
        fig = make_figure({"a": [(1, 1.0)]})
        with pytest.raises(ValueError, match="at least"):
            render_chart(fig, width=4, height=2)

    def test_empty_figure_rejected(self):
        fig = FigureResult("Fig", "x", "y", {})
        with pytest.raises(ValueError, match="no series"):
            render_chart(fig)

    def test_marker_recycling_beyond_eight_series(self):
        fig = make_figure({f"s{i}": [(1, float(i))] for i in range(10)})
        text = render_chart(fig)
        assert "s9" in text  # legend lists everything


class TestCliChartFlag:
    def test_chart_flag_prints_chart(self, capsys):
        from repro.cli import main
        assert main(["figure2", "--nodes", "40", "--runs", "2",
                     "--coord-system", "mds", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o random" in out
        assert "+----" in out

    def test_figure1_and_coords_commands(self, capsys):
        from repro.cli import main
        assert main(["figure1", "--nodes", "40", "--runs", "2",
                     "--coord-system", "mds"]) == 0
        assert "Figure 1" in capsys.readouterr().out
