"""Unit tests for the catalog's consistent-hash ring."""

import pytest

from repro.catalog import DEFAULT_VNODES, HashRing, keyspace
from repro.catalog.ring import _SPACE, _hash64


class TestHash:
    def test_deterministic_and_process_independent(self):
        # blake2b, not the salted builtin hash(): the same string must
        # map to the same point in every process.
        assert _hash64("obj-000001") == _hash64("obj-000001")
        assert _hash64("obj-000001") != _hash64("obj-000002")
        assert 0 <= _hash64("anything") < _SPACE


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ValueError, match="shard"):
            HashRing(0)
        with pytest.raises(ValueError, match="virtual node"):
            HashRing(3, vnodes=0)

    def test_assignment_in_range_and_stable(self):
        ring = HashRing(8)
        again = HashRing(8)
        for key in keyspace(500):
            shard = ring.shard_of(key)
            assert 0 <= shard < 8
            assert again.shard_of(key) == shard

    def test_every_shard_gets_keys(self):
        ring = HashRing(8)
        owners = {ring.shard_of(key) for key in keyspace(2_000)}
        assert owners == set(range(8))

    def test_distribution_roughly_balanced(self):
        ring = HashRing(8, vnodes=DEFAULT_VNODES)
        counts = [0] * 8
        for key in keyspace(8_000):
            counts[ring.shard_of(key)] += 1
        # 64 vnodes give a relative spread of roughly 1/sqrt(64); allow
        # a generous factor so the test pins gross imbalance only.
        assert max(counts) < 3 * min(counts)

    def test_growth_moves_keys_only_to_the_new_shard(self):
        keys = keyspace(3_000)
        for n in (1, 2, 5, 9):
            old = HashRing(n)
            new = HashRing(n + 1)
            moved = 0
            for key in keys:
                before, after = old.shard_of(key), new.shard_of(key)
                if before != after:
                    assert after == n, (
                        f"{key} moved between pre-existing shards "
                        f"{before} -> {after} on growth {n} -> {n + 1}")
                    moved += 1
            # Expectation is len(keys)/(n+1); triple it for headroom.
            assert moved <= 3 * len(keys) / (n + 1)

    def test_unit_phase_in_range_and_shard_independent(self):
        ring_small, ring_big = HashRing(1), HashRing(32)
        for key in keyspace(100):
            phase = ring_small.unit_phase(key)
            assert 0.0 <= phase < 1.0
            assert ring_big.unit_phase(key) == phase

    def test_phase_domain_differs_from_placement_domain(self):
        # The phase hash must not just reuse the ring position; a key's
        # phase and its ring position are drawn from distinct domains.
        assert _hash64("obj-000000") != _hash64("phase/obj-000000")
