"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the instrument semantics (counters, gauges, mergeable
histograms, phase timers), the registry, the span tracer, the
process-wide switchboard, the JSON/CSV exporters, and the CLI
``--metrics-out`` integration.
"""

import csv
import json
import os

import pytest

from repro import obs
from repro.analysis.export import (
    METRICS_SCHEMA,
    metrics_to_csv,
    metrics_to_json,
)
from repro.cli import main
from repro.obs import (
    ACCESS_SERVED,
    DEFAULT_LATENCY_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NULL_TRACER,
    NullRegistry,
    PhaseTimer,
    Tracer,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1.0)

    def test_merge_is_additive(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7.0
        assert b.value == 4.0  # merge source untouched


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0

    def test_merge_takes_latest(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(1.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram("h", bounds=(10.0, 100.0))
        # value == bound lands in that bucket (Prometheus ``le``).
        h.observe(10.0)
        h.observe(10.5)
        h.observe(100.0)
        assert h.bucket_counts == [1, 2, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(2.0)
        h.observe(1e9)
        assert h.bucket_counts == [0, 2]

    def test_scalar_stats(self):
        h = Histogram("h", bounds=(10.0,))
        for v in (4.0, 6.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 30.0
        assert h.mean == 10.0
        assert (h.min, h.max) == (4.0, 20.0)

    def test_observe_many_matches_observe(self):
        values = [0.5, 3.0, 7.5, 40.0, 4000.0, 10.0]
        one = Histogram("h")
        many = Histogram("h")
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.bucket_counts == many.bucket_counts
        assert one.count == many.count
        assert one.total == many.total
        assert (one.min, one.max) == (many.min, many.max)

    def test_merge_empty_plus_empty(self):
        a, b = Histogram("h"), Histogram("h")
        a.merge(b)
        assert a.count == 0
        assert a.min is None and a.max is None

    def test_merge_disjoint_buckets(self):
        a = Histogram("h", bounds=(1.0, 10.0, 100.0))
        b = Histogram("h", bounds=(1.0, 10.0, 100.0))
        a.observe(0.5)
        b.observe(50.0)
        a.merge(b)
        assert a.bucket_counts == [1, 0, 1, 0]
        assert a.count == 2
        assert (a.min, a.max) == (0.5, 50.0)

    def test_merge_with_overflow(self):
        a = Histogram("h", bounds=(1.0,))
        b = Histogram("h", bounds=(1.0,))
        a.observe(9.0)
        b.observe(99.0)
        a.merge(b)
        assert a.bucket_counts == [0, 2]
        assert a.max == 99.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="bound"):
            Histogram("h", bounds=())

    def test_copy_is_independent(self):
        a = Histogram("h", bounds=(1.0,))
        a.observe(0.5)
        b = a.copy()
        b.observe(0.5)
        assert a.count == 1 and b.count == 2

    def test_approx_quantile(self):
        h = Histogram("h", bounds=(10.0, 100.0))
        for _ in range(99):
            h.observe(5.0)
        h.observe(50.0)
        assert h.approx_quantile(0.5) <= 10.0
        assert h.approx_quantile(1.0) <= 100.0

    def test_snapshot_fields(self):
        h = Histogram("h", bounds=(10.0,))
        h.observe(3.0)
        snap = h.snapshot()
        assert snap["bounds"] == [10.0]
        assert snap["bucket_counts"] == [1, 0]
        assert snap["count"] == 1
        assert snap["total"] == 3.0

    def test_default_bounds(self):
        assert Histogram("h").bounds == DEFAULT_LATENCY_BOUNDS_MS


class TestPhaseTimer:
    def test_record_accumulates(self):
        t = PhaseTimer("p")
        t.record(0.5)
        t.record(1.5)
        assert t.calls == 2
        assert t.total_seconds == 2.0
        assert t.max_seconds == 1.5
        assert t.mean_seconds == 1.0

    def test_time_context_manager(self):
        t = PhaseTimer("p")
        with t.time():
            pass
        assert t.calls == 1
        assert t.total_seconds >= 0.0

    def test_merge(self):
        a, b = PhaseTimer("p"), PhaseTimer("p")
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.calls == 2
        assert a.total_seconds == 4.0
        assert a.max_seconds == 3.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.timer("t") is reg.timer("t")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_phase_shorthand_times_the_block(self):
        reg = MetricsRegistry()
        with reg.phase("work"):
            pass
        assert reg.timer("work").calls == 1

    def test_merge_is_additive_per_instrument(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only-b").inc(5)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter("c").value == 3.0
        assert a.counter("only-b").value == 5.0
        assert a.histogram("h").count == 1

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        reg.timer("t").record(0.1)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms",
                             "phase_timers"}
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["phase_timers"]["t"]["calls"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False


class TestNullRegistry:
    def test_instruments_are_noops(self):
        null = NullRegistry()
        null.counter("c").inc(5)
        null.gauge("g").set(3.0)
        null.histogram("h").observe(1.0)
        null.timer("t").record(1.0)
        with null.phase("p"):
            pass
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}, "phase_timers": {}}

    def test_shared_singletons(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")


class TestTracer:
    def test_records_spans_in_order(self):
        tracer = Tracer(capacity=8)
        tracer.record("a", time=1.0, x=1)
        tracer.record("b", time=2.0)
        spans = tracer.spans()
        assert [s.kind for s in spans] == ["a", "b"]
        assert spans[0].attrs == {"x": 1}
        assert tracer.spans(kind="b") == [spans[1]]

    def test_bound_clock_supplies_time(self):
        now = {"t": 42.0}
        tracer = Tracer(clock=lambda: now["t"])
        tracer.record("a")
        now["t"] = 43.0
        tracer.record("a")
        assert [s.time for s in tracer.spans()] == [42.0, 43.0]

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record("a", time=float(i))
        assert len(tracer) == 3
        assert tracer.recorded == 5
        assert tracer.dropped == 2
        assert [s.time for s in tracer.spans()] == [2.0, 3.0, 4.0]

    def test_kind_counts_include_evicted(self):
        tracer = Tracer(capacity=2)
        for _ in range(4):
            tracer.record(ACCESS_SERVED, time=0.0)
        assert tracer.kind_counts() == {ACCESS_SERVED: 4}

    def test_snapshot(self):
        tracer = Tracer(capacity=4)
        tracer.record("a", time=1.0, note="hi")
        snap = tracer.snapshot()
        assert snap["recorded"] == 1
        assert snap["dropped"] == 0
        assert snap["kinds"] == {"a": 1}
        assert "spans" not in snap
        full = tracer.snapshot(include_spans=True)
        assert full["spans"] == [{"kind": "a", "time": 1.0, "note": "hi"}]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_reset(self):
        tracer = Tracer()
        tracer.record("a")
        tracer.reset()
        assert len(tracer) == 0 and tracer.recorded == 0

    def test_null_tracer_noop(self):
        NULL_TRACER.record("a", time=1.0)
        NULL_TRACER.bind_clock(lambda: 0.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.enabled is False


class TestSwitchboard:
    def test_defaults_are_null(self):
        assert obs.get_registry() is NULL_REGISTRY
        assert obs.get_tracer() is NULL_TRACER

    def test_enable_disable(self):
        registry, tracer = obs.enable()
        try:
            assert obs.get_registry() is registry
            assert obs.get_tracer() is tracer
            assert registry.enabled and tracer.enabled
        finally:
            obs.disable()
        assert obs.get_registry() is NULL_REGISTRY
        assert obs.get_tracer() is NULL_TRACER

    def test_observe_restores_previous_pair(self):
        outer_reg, outer_tr = obs.enable()
        try:
            with obs.observe() as (inner_reg, inner_tr):
                assert obs.get_registry() is inner_reg
                assert inner_reg is not outer_reg
            assert obs.get_registry() is outer_reg
            assert obs.get_tracer() is outer_tr
        finally:
            obs.disable()

    def test_observe_accepts_explicit_instruments(self):
        mine = MetricsRegistry()
        with obs.observe(registry=mine) as (registry, _):
            assert registry is mine
            obs.get_registry().counter("c").inc()
        assert mine.counter("c").value == 1.0
        assert obs.get_registry() is NULL_REGISTRY


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(10.0,)).observe(3.0)
        reg.timer("t").record(0.25)
        return reg

    def test_metrics_to_json_schema(self, tmp_path):
        path = tmp_path / "metrics.json"
        tracer = Tracer()
        tracer.record("a", time=1.0)
        metrics_to_json(self._populated(), str(path), tracer=tracer)
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["counters"] == {"c": 2.0}
        assert doc["gauges"] == {"g": 1.5}
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["phase_timers"]["t"]["calls"] == 1
        assert doc["trace"]["kinds"] == {"a": 1}

    def test_metrics_to_json_without_tracer(self, tmp_path):
        path = tmp_path / "metrics.json"
        metrics_to_json(self._populated(), str(path))
        doc = json.loads(path.read_text())
        assert "trace" not in doc

    def test_metrics_to_csv(self, tmp_path):
        path = tmp_path / "metrics.csv"
        metrics_to_csv(self._populated(), str(path))
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["kind", "name", "field", "value"]
        cells = {(r[0], r[1], r[2]): r[3] for r in rows[1:]}
        assert cells[("counter", "c", "value")] == "2.0"
        assert cells[("histogram", "h", "count")] == "1"
        assert cells[("histogram", "h", "bucket_le_10.0")] == "1"
        assert cells[("histogram", "h", "bucket_le_inf")] == "0"
        assert cells[("phase_timer", "t", "calls")] == "1"


class TestCliMetricsOut:
    def test_coords_run_emits_schema_compliant_metrics(self, tmp_path,
                                                       capsys):
        path = tmp_path / "metrics.json"
        assert main(["coords", "--nodes", "40", "--runs", "2",
                     "--seed", "3", "--metrics-out", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_SCHEMA
        # The acceptance triplet: accesses served, latency histogram,
        # macro-clustering phase timer.
        assert doc["counters"]["accesses.served"] > 0
        hist = doc["histograms"]["access.delay_ms"]
        assert hist["count"] == doc["counters"]["accesses.served"]
        assert sum(hist["bucket_counts"]) == hist["count"]
        assert doc["phase_timers"]["macro.place_replicas"]["calls"] > 0
        assert doc["phase_timers"]["macro.place_replicas"][
            "total_seconds"] > 0.0
        assert doc["trace"]["recorded"] >= 0

    def test_metrics_out_disabled_leaves_switchboard_null(self, tmp_path,
                                                          capsys):
        # Without --metrics-out the run must stay on the no-op path.
        out = tmp_path / "matrix.npz"
        assert main(["matrix", "--nodes", "30", "--seed", "1",
                     "--out", str(out)]) == 0
        assert os.path.exists(out)
        assert obs.get_registry() is NULL_REGISTRY
