"""Unit tests for repro.workloads."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.net import GeoTopology
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import (
    AccessWorkload,
    ClientPopulation,
    ConstantPattern,
    DiurnalPattern,
    FlashCrowd,
    RegionalShift,
    ZipfObjectPopularity,
    generate_trace,
    replay_trace,
)


@pytest.fixture()
def topology():
    return GeoTopology(30, rng=np.random.default_rng(0))


class TestClientPopulation:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ClientPopulation([])
        with pytest.raises(ValueError, match="distinct"):
            ClientPopulation([1, 1])
        with pytest.raises(ValueError, match="per client"):
            ClientPopulation([1, 2], [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            ClientPopulation([1, 2], [1.0, -1.0])

    def test_uniform_sampling_covers_all(self):
        pop = ClientPopulation.uniform([5, 6, 7])
        rng = np.random.default_rng(0)
        seen = {pop.sample(rng) for _ in range(200)}
        assert seen == {5, 6, 7}

    def test_weights_bias_sampling(self):
        pop = ClientPopulation([1, 2], [0.01, 0.99])
        rng = np.random.default_rng(0)
        draws = [pop.sample(rng) for _ in range(300)]
        assert draws.count(2) > 250

    def test_modulation_shifts_distribution(self):
        pop = ClientPopulation([1, 2], [1.0, 1.0])
        rng = np.random.default_rng(0)
        draws = [pop.sample(rng, modulation=np.array([100.0, 0.001]))
                 for _ in range(200)]
        assert draws.count(1) > 190

    def test_modulation_shape_checked(self):
        pop = ClientPopulation([1, 2])
        with pytest.raises(ValueError, match="modulation"):
            pop.sample(np.random.default_rng(0), modulation=np.ones(3))

    def test_fully_suppressed_falls_back(self):
        pop = ClientPopulation([1, 2])
        client = pop.sample(np.random.default_rng(0),
                            modulation=np.zeros(2))
        assert client in (1, 2)

    def test_region_weighted(self, topology):
        clients = list(range(topology.n))
        target = topology.region_name(0)
        pop = ClientPopulation.region_weighted(
            clients, topology, {target: 50.0}, default_weight=0.1)
        rng = np.random.default_rng(1)
        draws = [pop.sample(rng) for _ in range(300)]
        in_region = sum(
            1 for d in draws if topology.region_name(d) == target)
        assert in_region > 150

    def test_index_of(self):
        pop = ClientPopulation([9, 4])
        assert pop.index_of(4) == 1


class TestZipf:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ZipfObjectPopularity([])
        with pytest.raises(ValueError, match="exponent"):
            ZipfObjectPopularity(["a"], exponent=-1.0)

    def test_rank_ordering(self):
        pop = ZipfObjectPopularity(["a", "b", "c"], exponent=1.0)
        assert pop.probability_of("a") > pop.probability_of("b")
        assert pop.probability_of("b") > pop.probability_of("c")

    def test_zero_exponent_is_uniform(self):
        pop = ZipfObjectPopularity(["a", "b"], exponent=0.0)
        assert pop.probability_of("a") == pytest.approx(0.5)

    def test_sampling_respects_skew(self):
        pop = ZipfObjectPopularity(["a", "b", "c"], exponent=2.0)
        rng = np.random.default_rng(0)
        draws = [pop.sample(rng) for _ in range(500)]
        assert draws.count("a") > draws.count("c")


class TestTemporalPatterns:
    def test_constant(self):
        pop = ClientPopulation([1, 2])
        assert np.all(ConstantPattern().modulation(0.0, pop) == 1.0)

    def test_diurnal_oscillates(self, topology):
        pop = ClientPopulation(list(range(10)))
        pattern = DiurnalPattern(topology, amplitude=0.8)
        day = 24 * 3_600_000.0
        samples = np.stack([
            pattern.modulation(t, pop)
            for t in np.linspace(0, day, 25)
        ])
        assert samples.min() < 0.5
        assert samples.max() > 1.5
        # Strictly positive intensities.
        assert samples.min() > 0.0

    def test_diurnal_validation(self, topology):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalPattern(topology, amplitude=1.5)
        with pytest.raises(ValueError, match="period"):
            DiurnalPattern(topology, period_hours=0.0)

    def test_flash_crowd_window(self):
        pop = ClientPopulation([1, 2, 3])
        crowd = FlashCrowd([2], start_ms=100.0, duration_ms=50.0,
                           multiplier=10.0)
        before = crowd.modulation(50.0, pop)
        during = crowd.modulation(120.0, pop)
        after = crowd.modulation(200.0, pop)
        assert np.all(before == 1.0)
        assert during[1] == 10.0 and during[0] == 1.0
        assert np.all(after == 1.0)

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError, match="duration"):
            FlashCrowd([1], 0.0, 0.0)
        with pytest.raises(ValueError, match="amplifies"):
            FlashCrowd([1], 0.0, 10.0, multiplier=0.5)

    def test_regional_shift_progress(self, topology):
        regions = [r.name for r in topology.regions]
        shift = RegionalShift(topology, regions[0], regions[1],
                              start_ms=100.0, end_ms=200.0)
        assert shift.progress(0.0) == 0.0
        assert shift.progress(150.0) == 0.5
        assert shift.progress(300.0) == 1.0

    def test_regional_shift_moves_weight(self, topology):
        regions = [r.name for r in topology.regions]
        src, dst = regions[0], regions[1]
        clients = list(range(topology.n))
        pop = ClientPopulation(clients)
        shift = RegionalShift(topology, src, dst, 0.0, 100.0, intensity=5.0)
        start = shift.modulation(0.0, pop)
        end = shift.modulation(100.0, pop)
        for i, c in enumerate(clients):
            region = topology.region_name(c)
            if region == src:
                assert start[i] == pytest.approx(6.0)
                assert end[i] == pytest.approx(1.0)
            elif region == dst:
                assert start[i] == pytest.approx(1.0)
                assert end[i] == pytest.approx(6.0)

    def test_regional_shift_validation(self, topology):
        with pytest.raises(ValueError, match="after start"):
            RegionalShift(topology, "us-east", "eu-west", 100.0, 100.0)
        with pytest.raises(ValueError, match="unknown region"):
            RegionalShift(topology, "atlantis", "eu-west", 0.0, 1.0)
        with pytest.raises(ValueError, match="intensity"):
            RegionalShift(topology, "us-east", "eu-west", 0.0, 1.0,
                          intensity=0.0)


class TestGenerateTrace:
    def test_rate_controls_volume(self):
        pop = ClientPopulation([1, 2, 3])
        rng = np.random.default_rng(0)
        events = generate_trace(pop, ["obj"], duration_ms=10_000.0,
                                rate_per_second=100.0, rng=rng)
        # ~1000 expected; allow generous slack.
        assert 700 < len(events) < 1300
        assert all(0 <= e.time_ms < 10_000.0 for e in events)
        assert all(e.kind == "read" for e in events)

    def test_timestamps_sorted(self):
        pop = ClientPopulation([1])
        events = generate_trace(pop, ["o"], 1000.0, 50.0,
                                np.random.default_rng(1))
        times = [e.time_ms for e in events]
        assert times == sorted(times)

    def test_write_fraction(self):
        pop = ClientPopulation([1])
        events = generate_trace(pop, ["o"], 10_000.0, 100.0,
                                np.random.default_rng(2),
                                write_fraction=0.5)
        writes = sum(1 for e in events if e.kind == "write")
        assert 0.3 < writes / len(events) < 0.7

    def test_validation(self):
        pop = ClientPopulation([1])
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duration"):
            generate_trace(pop, ["o"], 0.0, 1.0, rng)
        with pytest.raises(ValueError, match="rate"):
            generate_trace(pop, ["o"], 1.0, 0.0, rng)
        with pytest.raises(ValueError, match="write fraction"):
            generate_trace(pop, ["o"], 1.0, 1.0, rng, write_fraction=2.0)
        with pytest.raises(ValueError, match="key"):
            generate_trace(pop, [], 1.0, 1.0, rng)


class TestReplayTrace:
    def build_store(self, seed=3):
        matrix = small_matrix(n=15, seed=2)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=seed)
        store = ReplicatedStore(sim, matrix, (0, 1, 2), coords,
                                selection="oracle")
        store.create_object("obj", initial_sites=[0, 1])
        return sim, store

    def test_replay_executes_every_event(self):
        sim, store = self.build_store()
        pop = ClientPopulation.uniform(list(range(5, 15)))
        trace = generate_trace(pop, ["obj"], duration_ms=5_000.0,
                               rate_per_second=100.0,
                               rng=np.random.default_rng(0),
                               write_fraction=0.2)
        scheduled = replay_trace(store, trace)
        assert scheduled == len(trace)
        sim.run()
        assert len(store.log) == len(trace)
        kinds = {e.kind for e in trace}
        assert {r.kind for r in store.log.records} == kinds

    def test_replay_is_reproducible_across_configs(self):
        # The same trace on two stores yields identical clients/keys.
        pop = ClientPopulation.uniform(list(range(5, 15)))
        trace = generate_trace(pop, ["obj"], duration_ms=2_000.0,
                               rate_per_second=50.0,
                               rng=np.random.default_rng(1))
        logs = []
        for seed in (3, 4):
            sim, store = self.build_store(seed=seed)
            replay_trace(store, trace)
            sim.run()
            logs.append([(r.client, r.key) for r in store.log.records])
        assert logs[0] == logs[1]

    def test_replay_rejects_past_events(self):
        sim, store = self.build_store()
        sim.run_until(1_000.0)
        pop = ClientPopulation.uniform([5])
        trace = generate_trace(pop, ["obj"], duration_ms=500.0,
                               rate_per_second=50.0,
                               rng=np.random.default_rng(2))
        with pytest.raises(ValueError, match="past"):
            replay_trace(store, trace)

    def test_replay_with_offset(self):
        sim, store = self.build_store()
        sim.run_until(1_000.0)
        pop = ClientPopulation.uniform([5])
        trace = generate_trace(pop, ["obj"], duration_ms=500.0,
                               rate_per_second=50.0,
                               rng=np.random.default_rng(2))
        replay_trace(store, trace, time_offset_ms=2_000.0)
        sim.run()
        assert len(store.log) == len(trace)


class TestAccessWorkload:
    def build(self, write_fraction=0.0):
        matrix = small_matrix(n=15, seed=2)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=3)
        store = ReplicatedStore(sim, matrix, (0, 1, 2), coords,
                                selection="oracle")
        store.create_object("obj", initial_sites=[0, 1])
        pop = ClientPopulation.uniform(list(range(5, 15)))
        workload = AccessWorkload(store, pop, ["obj"],
                                  rate_per_second=1000.0,
                                  write_fraction=write_fraction)
        return sim, store, workload

    def test_drives_reads_through_store(self):
        sim, store, workload = self.build()
        sim.run_until(2_000.0)
        workload.stop()
        sim.run()
        assert workload.operations_issued > 1000
        assert len(store.log) == workload.operations_issued

    def test_registers_clients_lazily(self):
        sim, store, workload = self.build()
        assert set(store.clients) == set(range(5, 15))

    def test_mixed_workload_produces_writes(self):
        sim, store, workload = self.build(write_fraction=0.3)
        sim.run_until(2_000.0)
        workload.stop()
        sim.run()
        kinds = {r.kind for r in store.log.records}
        assert kinds == {"read", "write"}

    def test_validation(self):
        sim, store, _ = self.build()
        pop = ClientPopulation([5])
        with pytest.raises(ValueError, match="rate"):
            AccessWorkload(store, pop, ["obj"], rate_per_second=0.0)
        with pytest.raises(ValueError, match="write fraction"):
            AccessWorkload(store, pop, ["obj"], write_fraction=1.5)
        with pytest.raises(ValueError, match="key"):
            AccessWorkload(store, pop, [])


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        from repro.workloads import load_trace, save_trace
        pop = ClientPopulation.uniform([1, 2, 3])
        trace = generate_trace(pop, ["a", "b"], duration_ms=2_000.0,
                               rate_per_second=100.0,
                               rng=np.random.default_rng(0),
                               write_fraction=0.2)
        path = str(tmp_path / "trace.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_blank_lines_skipped(self, tmp_path):
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time_ms": 1.0, "client": 2, "key": "k", '
                         '"kind": "read"}\n\n')
        events = load_trace(path)
        assert len(events) == 1
        assert events[0].client == 2

    def test_bad_record_rejected(self, tmp_path):
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time_ms": 1.0, "client": 2}\n')
        with pytest.raises(ValueError, match="line 1"):
            load_trace(path)

    def test_bad_kind_rejected(self, tmp_path):
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time_ms": 1.0, "client": 2, "key": "k", '
                         '"kind": "delete"}\n')
        with pytest.raises(ValueError, match="unknown kind"):
            load_trace(path)

    def test_truncated_line_names_line_number(self, tmp_path):
        # A writer killed mid-line leaves invalid JSON on the last line;
        # the loader must say *where*, not dump a bare JSONDecodeError.
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('{"time_ms": 1.0, "client": 2, "key": "k", '
                         '"kind": "read"}\n')
            handle.write('{"time_ms": 2.0, "client": 3, "ke')
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_non_object_line_rejected(self, tmp_path):
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('[1, 2, 3]\n')
        with pytest.raises(ValueError, match="line 1.*expected an object"):
            load_trace(path)

    def test_garbage_line_rejected(self, tmp_path):
        from repro.workloads import load_trace
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write('not json at all\n')
        with pytest.raises(ValueError, match="line 1"):
            load_trace(path)


class TestTraceDeterminism:
    def test_key_enumeration_order_is_irrelevant(self, tmp_path):
        # The default popularity ranks keys in sorted order, so the same
        # seed yields a byte-identical trace file no matter how the
        # caller enumerates the keyspace.
        from repro.workloads import save_trace
        pop = ClientPopulation.uniform([1, 2, 3])
        keys = [f"obj-{i:06d}" for i in range(12)]
        paths = []
        for i, enumeration in enumerate(
                [keys, list(reversed(keys)), keys[6:] + keys[:6]]):
            trace = generate_trace(pop, enumeration, duration_ms=3_000.0,
                                   rate_per_second=200.0,
                                   rng=np.random.default_rng(7),
                                   write_fraction=0.1)
            path = tmp_path / f"trace-{i}.jsonl"
            save_trace(trace, str(path))
            paths.append(path)
        reference = paths[0].read_bytes()
        assert paths[1].read_bytes() == reference
        assert paths[2].read_bytes() == reference

    def test_explicit_popularity_is_honoured(self):
        # An explicit ranking still wins over the sorted default.
        from repro.workloads import ZipfObjectPopularity
        pop = ClientPopulation.uniform([1])
        keys = ["b", "a"]
        events = generate_trace(
            pop, keys, duration_ms=5_000.0, rate_per_second=200.0,
            rng=np.random.default_rng(0),
            popularity=ZipfObjectPopularity(("b", "a"), exponent=3.0))
        counts = {k: sum(1 for e in events if e.key == k) for k in keys}
        assert counts["b"] > counts["a"]
