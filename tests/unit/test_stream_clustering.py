"""Unit tests for repro.clustering.stream."""

import numpy as np
import pytest

from repro.clustering import ClusterFeature, OnlineClusterer


class TestClusterFeature:
    def test_singleton_stats(self):
        cf = ClusterFeature.from_point(np.array([3.0, 4.0]), weight=2.0)
        assert cf.count == 1
        assert cf.weight == 2.0
        assert np.allclose(cf.centroid, [3.0, 4.0])
        assert cf.deviation == 0.0
        assert cf.dim == 2

    def test_rejects_matrix_point(self):
        with pytest.raises(ValueError, match="1-D"):
            ClusterFeature.from_point(np.zeros((2, 2)))

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="non-negative"):
            ClusterFeature.from_point(np.zeros(2), weight=-1.0)
        cf = ClusterFeature.from_point(np.zeros(2))
        with pytest.raises(ValueError, match="non-negative"):
            cf.absorb(np.ones(2), weight=-0.5)

    def test_absorb_updates_centroid(self):
        cf = ClusterFeature.from_point(np.array([0.0, 0.0]))
        cf.absorb(np.array([2.0, 2.0]))
        assert np.allclose(cf.centroid, [1.0, 1.0])
        assert cf.count == 2

    def test_deviation_matches_numpy_std(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 3))
        cf = ClusterFeature.from_point(points[0])
        for p in points[1:]:
            cf.absorb(p)
        # deviation = sqrt(sum over dims of per-dim variance)
        expected = np.sqrt(np.sum(points.var(axis=0)))
        assert cf.deviation == pytest.approx(expected, rel=1e-9)

    def test_merge_equals_bulk_absorb(self):
        rng = np.random.default_rng(1)
        a_pts = rng.normal(size=(10, 2))
        b_pts = rng.normal(size=(7, 2))
        a = ClusterFeature.from_point(a_pts[0])
        for p in a_pts[1:]:
            a.absorb(p)
        b = ClusterFeature.from_point(b_pts[0], weight=2.0)
        for p in b_pts[1:]:
            b.absorb(p, weight=2.0)
        merged = a.copy()
        merged.merge(b)
        combined = ClusterFeature.from_point(a_pts[0])
        for p in a_pts[1:]:
            combined.absorb(p)
        for p in b_pts:
            combined.absorb(p, weight=2.0)
        assert merged.count == combined.count
        assert merged.weight == pytest.approx(combined.weight)
        assert np.allclose(merged.linear_sum, combined.linear_sum)
        assert np.allclose(merged.square_sum, combined.square_sum)

    def test_dimension_mismatch_rejected(self):
        cf = ClusterFeature.from_point(np.zeros(2))
        with pytest.raises(ValueError, match="dimension"):
            cf.absorb(np.zeros(3))
        with pytest.raises(ValueError, match="dimension"):
            cf.merge(ClusterFeature.from_point(np.zeros(3)))

    def test_copy_is_independent(self):
        cf = ClusterFeature.from_point(np.array([1.0, 1.0]))
        dup = cf.copy()
        dup.absorb(np.array([3.0, 3.0]))
        assert cf.count == 1
        assert dup.count == 2

    def test_wire_size_under_1kb(self):
        # The paper states each micro-cluster serializes under 1 KB.
        cf = ClusterFeature.from_point(np.zeros(4))
        assert cf.wire_size_bytes < 1024

    def test_distance_to(self):
        cf = ClusterFeature.from_point(np.array([0.0, 0.0]))
        assert cf.distance_to(np.array([3.0, 4.0])) == pytest.approx(5.0)


class TestOnlineClusterer:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            OnlineClusterer(0)
        with pytest.raises(ValueError, match="radius floor"):
            OnlineClusterer(3, radius_floor=-1.0)

    def test_budget_never_exceeded(self):
        rng = np.random.default_rng(2)
        clusterer = OnlineClusterer(max_clusters=4, radius_floor=0.1)
        for _ in range(500):
            clusterer.add(rng.uniform(-100, 100, size=2))
            assert len(clusterer) <= 4

    def test_counts_conserved(self):
        rng = np.random.default_rng(3)
        clusterer = OnlineClusterer(max_clusters=5)
        n = 200
        for _ in range(n):
            clusterer.add(rng.normal(size=2), weight=2.0)
        assert clusterer.total_count == n
        assert clusterer.total_weight == pytest.approx(2.0 * n)
        assert clusterer.points_seen == n

    def test_nearby_points_absorbed_into_one_cluster(self):
        clusterer = OnlineClusterer(max_clusters=10, radius_floor=5.0)
        rng = np.random.default_rng(4)
        for _ in range(100):
            clusterer.add(rng.normal(0.0, 0.5, size=2))
        assert len(clusterer) == 1

    def test_separated_blobs_get_separate_clusters(self):
        clusterer = OnlineClusterer(max_clusters=10, radius_floor=2.0)
        rng = np.random.default_rng(5)
        blobs = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        for _ in range(60):
            b = blobs[rng.integers(0, 3)]
            clusterer.add(b + rng.normal(0, 0.5, size=2))
        assert len(clusterer) == 3
        centroids = sorted(tuple(np.round(c.centroid, -1)) for c in clusterer)
        assert centroids == [(0.0, 0.0), (0.0, 100.0), (100.0, 0.0)]

    def test_merge_picks_closest_pair(self):
        clusterer = OnlineClusterer(max_clusters=2, radius_floor=0.5)
        clusterer.add(np.array([0.0, 0.0]))
        clusterer.add(np.array([100.0, 0.0]))
        # Third point near origin but outside the floor: spawns a cluster
        # and forces a merge of the two closest (the two near origin).
        clusterer.add(np.array([3.0, 0.0]))
        assert len(clusterer) == 2
        counts = sorted(c.count for c in clusterer)
        assert counts == [1, 2]
        merged = max(clusterer.clusters, key=lambda c: c.count)
        assert np.allclose(merged.centroid, [1.5, 0.0])

    def test_snapshot_is_deep(self):
        clusterer = OnlineClusterer(max_clusters=3)
        clusterer.add(np.array([1.0, 1.0]))
        snap = clusterer.snapshot()
        clusterer.add(np.array([1.1, 1.1]))
        assert snap[0].count == 1

    def test_reset(self):
        clusterer = OnlineClusterer(max_clusters=3)
        clusterer.add(np.zeros(2))
        clusterer.reset()
        assert len(clusterer) == 0
        assert clusterer.points_seen == 0

    def test_extend_with_weights(self):
        clusterer = OnlineClusterer(max_clusters=3)
        points = [np.zeros(2), np.ones(2)]
        clusterer.extend(points, weights=[1.0, 3.0])
        assert clusterer.total_weight == pytest.approx(4.0)

    def test_extend_without_weights(self):
        clusterer = OnlineClusterer(max_clusters=3)
        clusterer.extend([np.zeros(2), np.ones(2)])
        assert clusterer.total_count == 2

    def test_iteration_yields_clusters(self):
        clusterer = OnlineClusterer(max_clusters=3, radius_floor=0.1)
        clusterer.add(np.array([0.0, 0.0]))
        clusterer.add(np.array([50.0, 50.0]))
        assert all(isinstance(c, ClusterFeature) for c in clusterer)
