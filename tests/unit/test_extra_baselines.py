"""Unit tests for the extra placement baselines (k-median, greedy modes)."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.net.planetlab import small_matrix
from repro.placement import (
    GreedyPlacement,
    KMedianPlacement,
    OptimalPlacement,
    PlacementProblem,
    average_access_delay,
)


@pytest.fixture(scope="module")
def problem():
    matrix = small_matrix(n=40, seed=8)
    result = embed_matrix(matrix, system="mds", space=EuclideanSpace(3))
    rng = np.random.default_rng(9)
    candidates = tuple(int(i) for i in rng.choice(40, size=10, replace=False))
    clients = tuple(i for i in range(40) if i not in candidates)
    return PlacementProblem(matrix, candidates, clients, k=3,
                            coords=result.coords)


class TestKMedian:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            KMedianPlacement(max_rounds=0)
        with pytest.raises(ValueError, match="positive"):
            KMedianPlacement(restarts=0)

    def test_contract(self, problem):
        sites = KMedianPlacement().place(problem, np.random.default_rng(0))
        assert len(sites) == 3
        assert len(set(sites)) == 3
        assert all(s in problem.candidates for s in sites)

    def test_deterministic(self, problem):
        a = KMedianPlacement().place(problem, np.random.default_rng(4))
        b = KMedianPlacement().place(problem, np.random.default_rng(4))
        assert a == b

    def test_beats_or_matches_offline_kmeans(self, problem):
        from repro.placement import OfflineKMeansPlacement
        kmedian_delays, kmeans_delays = [], []
        for seed in range(6):
            rng1 = np.random.default_rng(seed)
            rng2 = np.random.default_rng(seed)
            kmedian_delays.append(average_access_delay(
                problem.matrix, problem.clients,
                KMedianPlacement().place(problem, rng1)))
            kmeans_delays.append(average_access_delay(
                problem.matrix, problem.clients,
                OfflineKMeansPlacement().place(problem, rng2)))
        # Direct objective optimization should not lose on average.
        assert np.mean(kmedian_delays) <= np.mean(kmeans_delays) * 1.05

    def test_local_optimum_on_coordinates(self, problem):
        # No single swap may improve the coordinate-space objective.
        strategy = KMedianPlacement(restarts=1)
        sites = strategy.place(problem, np.random.default_rng(1))
        coords = problem.coords
        client_coords = problem.client_coords()

        def coord_objective(site_list):
            site_coords = coords[list(site_list)]
            d = np.linalg.norm(
                client_coords[:, None, :] - site_coords[None, :, :], axis=-1)
            return d.min(axis=1).sum()

        base = coord_objective(sites)
        for i in range(len(sites)):
            for candidate in problem.candidates:
                if candidate in sites:
                    continue
                trial = list(sites)
                trial[i] = candidate
                assert coord_objective(trial) >= base - 1e-9


class TestGreedyCoordsMode:
    def test_name_reflects_mode(self):
        assert GreedyPlacement().name == "greedy"
        assert GreedyPlacement(use_coords=True).name == "greedy (coords)"

    def test_contract(self, problem):
        sites = GreedyPlacement(use_coords=True).place(
            problem, np.random.default_rng(0))
        assert len(sites) == 3
        assert all(s in problem.candidates for s in sites)

    def test_oracle_mode_no_worse_than_coords_mode(self, problem):
        oracle = average_access_delay(
            problem.matrix, problem.clients,
            GreedyPlacement().place(problem, np.random.default_rng(0)))
        coords = average_access_delay(
            problem.matrix, problem.clients,
            GreedyPlacement(use_coords=True).place(
                problem, np.random.default_rng(0)))
        # True-latency information can only help.
        assert oracle <= coords * 1.02

    def test_coords_mode_requires_coords(self, problem):
        bare = PlacementProblem(problem.matrix, problem.candidates,
                                problem.clients, k=2)
        with pytest.raises(ValueError, match="coordinates"):
            GreedyPlacement(use_coords=True).place(
                bare, np.random.default_rng(0))

    def test_oracle_close_to_optimal(self, problem):
        rng = np.random.default_rng(0)
        opt = average_access_delay(
            problem.matrix, problem.clients,
            OptimalPlacement().place(problem, rng))
        greedy = average_access_delay(
            problem.matrix, problem.clients,
            GreedyPlacement().place(problem, rng))
        assert greedy <= opt * 1.15
