"""Tests for smaller surfaces: describe(), strategy checks, cost tally,
consistency delays, custom regions, CLI coords command."""

import numpy as np
import pytest

from repro.core import CostTally
from repro.coords import EuclideanSpace, embed_matrix
from repro.net import GeoTopology, PlanetLabParams, Region, synthetic_planetlab_matrix
from repro.net.planetlab import small_matrix
from repro.placement import PlacementProblem, PlacementStrategy
from repro.sim import Simulator
from repro.store import ConsistencyConfig, ReplicatedStore


class TestDescribe:
    def test_describe_mentions_key_stats(self):
        m = small_matrix(n=20, seed=1)
        text = m.describe()
        assert "20 nodes" in text
        assert "median" in text
        assert "triangle-inequality" in text

    def test_describe_small_matrix(self):
        m = small_matrix(n=3, seed=0)
        assert "3 nodes" in m.describe()


class TestCustomRegions:
    def test_single_region_topology(self):
        region = Region("only", 10.0, 20.0, weight=1.0, spread_deg=1.0)
        topo = GeoTopology(15, regions=(region,),
                           rng=np.random.default_rng(0))
        assert all(topo.region_name(i) == "only" for i in range(15))
        # All nodes close to the region center.
        assert np.all(np.abs(topo.lat - 10.0) < 6.0)

    def test_matrix_from_custom_regions(self):
        regions = (
            Region("west", 40.0, -120.0, weight=1.0, spread_deg=1.0),
            Region("east", 40.0, -70.0, weight=1.0, spread_deg=1.0),
        )
        params = PlanetLabParams(n=20, regions=regions,
                                 congested_fraction=0.0)
        matrix, topo = synthetic_planetlab_matrix(params, seed=0)
        same = topo.same_region()
        iu = np.triu_indices(20, k=1)
        intra = matrix.rtt[iu][same[iu]]
        inter = matrix.rtt[iu][~same[iu]]
        assert np.median(intra) < np.median(inter)


class TestStrategyContractChecks:
    class Broken(PlacementStrategy):
        name = "broken"

        def __init__(self, mode):
            self.mode = mode

        def place(self, problem, rng):
            if self.mode == "short":
                return self._check(problem, [problem.candidates[0]])
            if self.mode == "dup":
                c = problem.candidates[0]
                return self._check(problem, [c, c])
            return self._check(problem, [9999, 9998])

    @pytest.fixture()
    def problem(self):
        matrix = small_matrix(n=10, seed=0)
        return PlacementProblem(matrix, (0, 1, 2, 3), (4, 5, 6), k=2)

    def test_wrong_count_detected(self, problem):
        with pytest.raises(AssertionError, match="expected 2"):
            self.Broken("short").place(problem, np.random.default_rng(0))

    def test_duplicates_detected(self, problem):
        with pytest.raises(AssertionError, match="duplicate"):
            self.Broken("dup").place(problem, np.random.default_rng(0))

    def test_non_candidate_detected(self, problem):
        with pytest.raises(AssertionError, match="non-candidate"):
            self.Broken("bad").place(problem, np.random.default_rng(0))


class TestCostTally:
    def test_merge(self):
        a = CostTally(summary_bytes=100, clustering_seconds=1.0,
                      migrations=2, migration_dollars=0.5, epochs=3,
                      notes=["a"])
        b = CostTally(summary_bytes=50, clustering_seconds=0.5,
                      migrations=1, migration_dollars=0.1, epochs=1,
                      notes=["b"])
        merged = a.merge(b)
        assert merged.summary_bytes == 150
        assert merged.clustering_seconds == 1.5
        assert merged.migrations == 3
        assert merged.migration_dollars == pytest.approx(0.6)
        assert merged.epochs == 4
        assert merged.notes == ["a", "b"]


class TestPropagationDelay:
    def test_delayed_propagation_window(self):
        matrix = small_matrix(n=15, seed=2)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=2)
        store = ReplicatedStore(
            sim, matrix, (0, 1), coords, selection="oracle",
            consistency=ConsistencyConfig(propagate_updates=True,
                                          propagation_delay_ms=5_000.0))
        store.create_object("obj", initial_sites=[0, 1])
        client = store.add_client(10)
        client.write("obj")
        # Shortly after the ack, the peer is still stale ...
        sim.run_until(1_000.0)
        versions = {store.servers[0].replicas["obj"],
                    store.servers[1].replicas["obj"]}
        assert versions == {0, 1}
        # ... and after the batching window plus transfer, it caught up.
        sim.run_until(10_000.0)
        assert store.servers[0].replicas["obj"] == 1
        assert store.servers[1].replicas["obj"] == 1


class TestCliCoords:
    def test_coords_command_small(self, capsys):
        from repro.cli import main
        assert main(["coords", "--nodes", "30", "--runs", "2",
                     "--coord-system", "mds", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Coordinate-system ablation" in out
        for system in ("mds", "rnp", "vivaldi", "gnp"):
            assert system in out
