"""Unit tests for the command-line interface and CSV export."""

import csv

import pytest

from repro.analysis import EvaluationSetting, run_figure2, run_table2
from repro.analysis.export import figure_to_csv, table2_to_csv
from repro.cli import build_parser, main


SMALL_ARGS = ["--nodes", "40", "--runs", "2", "--coord-system", "mds",
              "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["astrology"])

    def test_defaults_match_paper(self):
        args = build_parser().parse_args(["figure2"])
        assert args.nodes == 226
        assert args.runs == 30
        assert args.coord_system == "rnp"
        assert args.candidate_mode == "dispersed"

    def test_matrix_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix"])

    def test_catalog_defaults(self):
        args = build_parser().parse_args(["catalog"])
        assert args.keys == [100, 1_000]
        assert args.shards == [1, 4, 16]
        assert args.grouping == "chunked"
        assert args.engine == "batched"

    def test_catalog_rejects_unknown_grouping(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["catalog", "--grouping", "psychic"])


class TestCommands:
    def test_figure2_prints_table(self, capsys):
        assert main(["figure2", *SMALL_ARGS]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "online clustering" in out

    def test_figure2_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "fig2.csv")
        assert main(["figure2", *SMALL_ARGS, "--csv", path]) == 0
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert {r["series"] for r in rows} == {
            "random", "offline k-means", "online clustering", "optimal"}
        assert all(float(r["mean_ms"]) > 0 for r in rows)
        assert all(int(r["n_runs"]) == 2 for r in rows)

    def test_table2_command(self, capsys, tmp_path):
        path = str(tmp_path / "t2.csv")
        assert main(["table2", "--accesses", "500", "1000",
                     "--k", "2", "--micro-clusters", "10",
                     "--csv", path]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert [int(r["n_accesses"]) for r in rows] == [500, 1000]

    def test_catalog_command(self, tmp_path, capsys):
        path = str(tmp_path / "catalog.csv")
        assert main(["catalog", "--keys", "24", "--shards", "1", "2",
                     "--grouping", "chunked", "--group-size", "6",
                     "--nodes", "20", "--dc", "6", "--seed", "3",
                     "--rate", "100", "--duration-ms", "8000",
                     "--csv", path]) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert [int(r["n_shards"]) for r in rows] == [1, 2]
        assert all(int(r["reads_completed"]) > 0 for r in rows)
        assert all(int(r["groups"]) == 4 for r in rows)

    def test_matrix_command(self, tmp_path, capsys):
        path = str(tmp_path / "m.npz")
        assert main(["matrix", "--nodes", "12", "--seed", "1",
                     "--out", path]) == 0
        from repro.net import load_matrix
        matrix = load_matrix(path)
        assert matrix.n == 12


class TestExportHelpers:
    def test_figure_csv_roundtrip(self, tmp_path):
        setting = EvaluationSetting(n_nodes=40, n_runs=2,
                                    coord_system="mds", seed=3)
        figure = run_figure2(setting, replica_counts=(1, 2), n_dc=10)
        path = str(tmp_path / "f.csv")
        figure_to_csv(figure, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4 * 2  # four series, two x points

    def test_table2_csv_columns(self, tmp_path):
        rows = run_table2(n_accesses_list=(500,), k=2, m=10)
        path = str(tmp_path / "t.csv")
        table2_to_csv(rows, path)
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0]["k"] == "2"
        assert int(parsed[0]["offline_bytes"]) > 0


class TestJsonRoundtrip:
    def test_figure_json_roundtrip(self, tmp_path):
        from repro.analysis.export import figure_from_json, figure_to_json
        setting = EvaluationSetting(n_nodes=40, n_runs=2,
                                    coord_system="mds", seed=3)
        figure = run_figure2(setting, replica_counts=(1, 2), n_dc=10)
        path = str(tmp_path / "fig.json")
        figure_to_json(figure, path)
        loaded = figure_from_json(path)
        assert loaded.name == figure.name
        assert set(loaded.series) == set(figure.series)
        for name in figure.series:
            for a, b in zip(figure.series[name], loaded.series[name]):
                assert a.x == b.x
                assert a.summary.mean == pytest.approx(b.summary.mean)
                assert a.summary.n == b.summary.n

    def test_bad_json_rejected(self, tmp_path):
        import json
        from repro.analysis.export import figure_from_json
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"name": "x"}, handle)
        with pytest.raises(ValueError, match="missing field"):
            figure_from_json(path)


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        from repro.cli import main
        assert main(["report", "--nodes", "40", "--runs", "2",
                     "--coord-system", "mds"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "Headline-claim checklist" in out
        assert "Figure 2" in out and "Table II" in out

    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "report.md")
        assert main(["report", "--nodes", "40", "--runs", "2",
                     "--coord-system", "mds", "--out", path]) == 0
        with open(path) as handle:
            text = handle.read()
        assert "claims reproduced" in text

    def test_generate_report_checks_structure(self):
        from repro.analysis import EvaluationSetting, generate_report
        text = generate_report(EvaluationSetting(
            n_nodes=40, n_runs=2, coord_system="mds", seed=3))
        # Every claim line carries a verdict mark and a detail.
        claim_lines = [l for l in text.splitlines()
                       if l.startswith(("- ✅", "- ❌"))]
        assert len(claim_lines) >= 8
        assert all(" — " in l for l in claim_lines)
