"""Unit tests for the replicated store."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net.planetlab import small_matrix
from repro.store import (
    AccessRecord,
    AccessLog,
    ConsistencyConfig,
    DataObject,
    QuorumError,
    ReplicatedStore,
)
from repro.sim import Simulator


def build_store(selection="oracle", consistency=None, seed=0, n=20):
    matrix = small_matrix(n=n, seed=seed)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=seed)
    candidates = tuple(range(5))
    store = ReplicatedStore(sim, matrix, candidates, coords,
                            selection=selection, consistency=consistency)
    return sim, matrix, store


class TestDataObject:
    def test_validation(self):
        with pytest.raises(ValueError, match="key"):
            DataObject("")
        with pytest.raises(ValueError, match="size"):
            DataObject("x", size_gb=0)

    def test_size_bytes(self):
        assert DataObject("x", size_gb=2.0).size_bytes == 2 * 1024 ** 3


class TestAccessLog:
    def record(self, t, delay, kind="read", stale=False):
        return AccessRecord(time=t, client=1, server=2, key="k",
                            delay_ms=delay, kind=kind, stale=stale)

    def test_mean_and_percentile(self):
        log = AccessLog()
        log.extend([self.record(0, 10.0), self.record(1, 30.0)])
        assert log.mean_delay() == 20.0
        assert log.percentile_delay(100) == 30.0

    def test_filters(self):
        log = AccessLog()
        log.append(self.record(0, 10.0, kind="read"))
        log.append(self.record(5, 50.0, kind="write"))
        assert log.mean_delay(kind="write") == 50.0
        assert log.mean_delay(since=5) == 50.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no matching"):
            AccessLog().mean_delay()
        with pytest.raises(ValueError, match="no matching"):
            AccessLog().percentile_delay(50)

    def test_stale_fraction(self):
        log = AccessLog()
        log.append(self.record(0, 1.0, stale=True))
        log.append(self.record(0, 1.0, stale=False))
        log.append(self.record(0, 1.0, kind="write"))
        assert log.stale_fraction() == 0.5
        assert AccessLog().stale_fraction() == 0.0

    def test_by_client(self):
        log = AccessLog()
        log.append(self.record(0, 1.0))
        log.append(self.record(1, 2.0))
        assert set(log.by_client().keys()) == {1}
        assert len(log.by_client()[1]) == 2


class TestStoreBasics:
    def test_create_object_with_explicit_sites(self):
        sim, matrix, store = build_store()
        store.create_object("obj", initial_sites=[0, 2])
        assert store.installed_sites("obj") == (0, 2)
        assert store.servers[0].replicas == {"obj": 0}
        assert store.servers[2].replicas == {"obj": 0}

    def test_create_object_random_sites(self):
        sim, matrix, store = build_store()
        store.create_object("obj", k=3)
        assert len(store.installed_sites("obj")) == 3

    def test_duplicate_key_rejected(self):
        sim, matrix, store = build_store()
        store.create_object("obj", initial_sites=[0])
        with pytest.raises(ValueError, match="already exists"):
            store.create_object("obj", initial_sites=[1])

    def test_non_candidate_site_rejected(self):
        sim, matrix, store = build_store()
        with pytest.raises(ValueError, match="candidate"):
            store.create_object("obj", initial_sites=[19])

    def test_unknown_object_rejected(self):
        sim, matrix, store = build_store()
        with pytest.raises(KeyError, match="unknown object"):
            store.installed_sites("ghost")

    def test_duplicate_client_rejected(self):
        sim, matrix, store = build_store()
        store.add_client(10)
        with pytest.raises(ValueError, match="already exists"):
            store.add_client(10)

    def test_selection_validation(self):
        matrix = small_matrix(n=10, seed=0)
        with pytest.raises(ValueError, match="selection"):
            ReplicatedStore(Simulator(), matrix, (0, 1), np.zeros((10, 2)),
                            selection="vibes")

    def test_duplicate_candidates_rejected(self):
        matrix = small_matrix(n=10, seed=0)
        with pytest.raises(ValueError, match="distinct"):
            ReplicatedStore(Simulator(), matrix, (0, 0), np.zeros((10, 2)))


class TestReads:
    def test_read_measures_round_trip(self):
        sim, matrix, store = build_store(selection="oracle")
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.read("obj")
        sim.run()
        assert len(store.log) == 1
        record = store.log.records[0]
        assert record.kind == "read"
        assert record.server == 0
        assert record.delay_ms == pytest.approx(matrix.latency(10, 0))

    def test_oracle_routing_picks_true_closest(self):
        sim, matrix, store = build_store(selection="oracle")
        store.create_object("obj", initial_sites=[0, 1, 2])
        client = store.add_client(12)
        client.read("obj")
        sim.run()
        best = min((0, 1, 2), key=lambda s: matrix.latency(12, s))
        assert store.log.records[0].server == best

    def test_coords_routing_works(self):
        sim, matrix, store = build_store(selection="coords")
        store.create_object("obj", initial_sites=[0, 1, 2])
        client = store.add_client(12)
        client.read("obj")
        sim.run()
        assert len(store.log) == 1
        assert store.log.records[0].server in (0, 1, 2)

    def test_read_without_replicas_raises(self):
        sim, matrix, store = build_store()
        with pytest.raises(KeyError):
            store.route_read(10, "ghost")


class TestConsistencyConfigValidation:
    def test_defaults_are_valid(self):
        config = ConsistencyConfig()
        assert config.read_quorum == 1

    def test_read_quorum_must_be_positive_int(self):
        with pytest.raises(ValueError, match="at least 1"):
            ConsistencyConfig(read_quorum=0)
        with pytest.raises(ValueError, match="at least 1"):
            ConsistencyConfig(read_quorum=-3)
        with pytest.raises(ValueError, match="integer"):
            ConsistencyConfig(read_quorum=2.5)
        with pytest.raises(ValueError, match="integer"):
            ConsistencyConfig(read_quorum=True)

    def test_propagate_updates_must_be_boolean(self):
        with pytest.raises(ValueError, match="boolean"):
            ConsistencyConfig(propagate_updates=1)

    def test_propagation_delay_rejects_nan_and_negatives(self):
        # NaN slips past both plain comparisons (NaN < 0 is False), so
        # the config must reject it explicitly.
        with pytest.raises(ValueError, match="NaN"):
            ConsistencyConfig(propagation_delay_ms=float("nan"))
        with pytest.raises(ValueError, match="finite"):
            ConsistencyConfig(propagation_delay_ms=float("inf"))
        with pytest.raises(ValueError, match="non-negative"):
            ConsistencyConfig(propagation_delay_ms=-1.0)
        with pytest.raises(ValueError, match="number"):
            ConsistencyConfig(propagation_delay_ms="soon")
        with pytest.raises(ValueError, match="number"):
            ConsistencyConfig(propagation_delay_ms=True)

    def test_valid_numpy_delay_accepted(self):
        config = ConsistencyConfig(propagation_delay_ms=np.float64(5.0))
        assert float(config.propagation_delay_ms) == 5.0


class TestWritesAndConsistency:
    def test_write_bumps_version_and_propagates(self):
        sim, matrix, store = build_store(
            selection="oracle",
            consistency=ConsistencyConfig(propagate_updates=True))
        store.create_object("obj", initial_sites=[0, 1])
        client = store.add_client(10)
        client.write("obj")
        sim.run()
        assert store.latest_version("obj") == 1
        assert store.servers[0].replicas["obj"] == 1
        assert store.servers[1].replicas["obj"] == 1
        writes = [r for r in store.log.records if r.kind == "write"]
        assert len(writes) == 1 and writes[0].version == 1

    def test_no_propagation_leaves_peers_stale(self):
        sim, matrix, store = build_store(
            selection="oracle",
            consistency=ConsistencyConfig(propagate_updates=False))
        store.create_object("obj", initial_sites=[0, 1])
        client = store.add_client(10)
        client.write("obj")
        sim.run()
        versions = sorted([store.servers[0].replicas["obj"],
                           store.servers[1].replicas["obj"]])
        assert versions == [0, 1]

    def test_stale_read_detected(self):
        sim, matrix, store = build_store(
            selection="oracle",
            consistency=ConsistencyConfig(propagate_updates=False))
        store.create_object("obj", initial_sites=[0, 1])
        writer = store.add_client(10)
        # Write goes to whichever replica is closest to node 10.
        target = store.route_write(10, "obj")
        other = 1 if target == 0 else 0
        writer.write("obj")
        sim.run()
        # Read from a client closest to the *other* replica is stale.
        reader_candidates = [
            c for c in range(6, 20)
            if store.route_read(c, "obj")[0] == other and c != 10
        ]
        assert reader_candidates, "topology should give the other replica users"
        reader = store.add_client(reader_candidates[0])
        reader.read("obj")
        sim.run()
        read = [r for r in store.log.records if r.kind == "read"][0]
        assert read.stale

    def test_quorum_read_returns_freshest(self):
        sim, matrix, store = build_store(
            selection="oracle",
            consistency=ConsistencyConfig(read_quorum=2,
                                          propagate_updates=False))
        store.create_object("obj", initial_sites=[0, 1])
        writer = store.add_client(10)
        writer.write("obj")
        sim.run()
        reader = store.add_client(11)
        reader.read("obj")
        sim.run()
        read = [r for r in store.log.records if r.kind == "read"][0]
        # Quorum of 2 over 2 replicas always sees the write.
        assert read.version == 1
        assert not read.stale
        # Quorum delay is the max of the two RTTs.
        expected = max(matrix.latency(11, 0), matrix.latency(11, 1))
        assert read.delay_ms == pytest.approx(expected)

    def test_quorum_capped_at_installed(self):
        sim, matrix, store = build_store(
            consistency=ConsistencyConfig(read_quorum=5))
        store.create_object("obj", initial_sites=[0, 1])
        targets = store.route_read(10, "obj")
        assert len(targets) == 2

    def test_consistency_validation(self):
        with pytest.raises(ValueError, match="quorum"):
            ConsistencyConfig(read_quorum=0)
        with pytest.raises(ValueError, match="delay"):
            ConsistencyConfig(propagation_delay_ms=-1.0)


class TestMigration:
    def migrate_setup(self):
        sim, matrix, store = build_store(selection="oracle")
        store.create_object(
            "obj", initial_sites=[0],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8,
                                               radius_floor=2.0),
            policy=MigrationPolicy(min_relative_gain=0.01,
                                   min_absolute_gain_ms=0.5),
        )
        return sim, matrix, store

    def test_epoch_migrates_to_population(self):
        sim, matrix, store = self.migrate_setup()
        # Clients cluster around candidate 4's coordinates; use clients
        # 15..19 accessing repeatedly, then run an epoch.
        clients = [store.add_client(i) for i in range(15, 20)]
        for _ in range(10):
            for c in clients:
                c.read("obj")
        sim.run()
        report = store.run_epoch("obj")
        sim.run()
        assert report.accesses == 50
        sites = store.installed_sites("obj")
        assert len(sites) == 1
        if report.migrated:
            # Replica data actually moved: new server holds it, old dropped.
            new_site = sites[0]
            assert "obj" in store.servers[new_site].replicas
            assert new_site != 0 or "obj" in store.servers[0].replicas

    def test_reads_survive_migration_window(self):
        sim, matrix, store = self.migrate_setup()
        clients = [store.add_client(i) for i in range(15, 20)]
        for _ in range(10):
            for c in clients:
                c.read("obj")
        sim.run()
        store.run_epoch("obj")
        # Issue reads immediately, while the transfer may be in flight.
        for c in clients:
            c.read("obj")
        sim.run()
        assert len(store.log) == 55  # every read completed

    def test_epoch_periodic_process(self):
        sim, matrix, store = build_store(selection="oracle")
        store.create_object(
            "obj", initial_sites=[0],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8),
            epoch_period_ms=5_000.0,
        )
        client = store.add_client(15)
        client.read("obj")
        sim.run_until(11_000.0)
        assert len(store.epoch_reports("obj")) == 2

    def test_summary_traffic_charged(self):
        sim, matrix, store = self.migrate_setup()
        client = store.add_client(15)
        for _ in range(5):
            client.read("obj")
        sim.run()
        store.run_epoch("obj")
        sim.run()
        # Summaries travel from site 0 to the coordinator... unless the
        # site *is* the coordinator, in which case nothing is shipped.
        # Site 0 is the coordinator here, so force a second object on a
        # different site to observe summary bytes.
        store.create_object("obj2", initial_sites=[3],
                            controller_config=ControllerConfig(
                                k=1, max_micro_clusters=8))
        for _ in range(5):
            client.read("obj2")
        sim.run()
        store.run_epoch("obj2")
        sim.run()
        assert store.network.per_kind_bytes.get("summary", 0) > 0


class TestDeletion:
    def build(self):
        return build_store(selection="oracle")

    def test_delete_object_removes_everything(self):
        sim, matrix, store = self.build()
        store.create_object("obj", initial_sites=[0, 1],
                            epoch_period_ms=5_000.0)
        store.delete("obj")
        assert "obj" not in store.servers[0].replicas
        assert "obj" not in store.servers[1].replicas
        with pytest.raises(KeyError):
            store.installed_sites("obj")
        # No epoch fires after deletion.
        sim.run_until(20_000.0)

    def test_delete_group_by_group_key_only(self):
        sim, matrix, store = self.build()
        store.create_group("album", ["img-1", "img-2"], initial_sites=[0])
        with pytest.raises(ValueError, match="group member"):
            store.delete("img-1")
        store.delete("album")
        with pytest.raises(KeyError):
            store.installed_sites("img-1")

    def test_delete_unknown_rejected(self):
        sim, matrix, store = self.build()
        with pytest.raises(KeyError, match="unknown unit"):
            store.delete("ghost")

    def test_key_reusable_after_delete(self):
        sim, matrix, store = self.build()
        store.create_object("obj", initial_sites=[0])
        store.delete("obj")
        store.create_object("obj", initial_sites=[2])
        assert store.installed_sites("obj") == (2,)

    def test_inflight_read_to_deleted_object_is_lost(self):
        sim, matrix, store = self.build()
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.read("obj")
        store.delete("obj")
        sim.run()
        assert len(store.log) == 0

    def test_inflight_read_with_timeout_fails_cleanly(self):
        matrix = small_matrix(n=20, seed=0)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=0)
        store = ReplicatedStore(sim, matrix, tuple(range(5)), coords,
                                selection="oracle", read_timeout_ms=200.0)
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.read("obj")
        store.delete("obj")
        sim.run()
        assert store.failed_reads == 1
        assert store.log.records[0].kind == "read-timeout"
