"""Unit tests for the placement strategies."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.net.planetlab import small_matrix
from repro.placement import (
    GreedyPlacement,
    HotZonePlacement,
    OfflineKMeansPlacement,
    OnlineClusteringPlacement,
    OptimalPlacement,
    PlacementProblem,
    RandomPlacement,
    average_access_delay,
)

ALL_STRATEGIES = [
    RandomPlacement(),
    OfflineKMeansPlacement(),
    OnlineClusteringPlacement(micro_clusters=6, migration_rounds=2),
    OptimalPlacement(),
    GreedyPlacement(),
    HotZonePlacement(),
]


@pytest.fixture(scope="module")
def problem():
    matrix = small_matrix(n=40, seed=3)
    result = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(dim=3))
    rng = np.random.default_rng(5)
    candidates = tuple(int(i) for i in rng.choice(40, size=10, replace=False))
    clients = tuple(i for i in range(40) if i not in candidates)
    return PlacementProblem(matrix, candidates, clients, k=3,
                            coords=result.coords)


class TestPlacementProblem:
    def test_validation(self, problem):
        with pytest.raises(ValueError, match="k must be positive"):
            PlacementProblem(problem.matrix, problem.candidates,
                             problem.clients, k=0)
        with pytest.raises(ValueError, match="candidate"):
            PlacementProblem(problem.matrix, (), problem.clients, k=1)
        with pytest.raises(ValueError, match="client"):
            PlacementProblem(problem.matrix, problem.candidates, (), k=1)
        with pytest.raises(ValueError, match="outside matrix"):
            PlacementProblem(problem.matrix, (999,), problem.clients, k=1)
        with pytest.raises(ValueError, match="distinct"):
            PlacementProblem(problem.matrix, (1, 1), problem.clients, k=1)
        with pytest.raises(ValueError, match="coords"):
            PlacementProblem(problem.matrix, problem.candidates,
                             problem.clients, k=1, coords=np.zeros((3, 2)))

    def test_effective_k_caps(self, problem):
        big = PlacementProblem(problem.matrix, problem.candidates[:2],
                               problem.clients, k=5, coords=problem.coords)
        assert big.effective_k == 2

    def test_require_coords_raises_without(self, problem):
        bare = PlacementProblem(problem.matrix, problem.candidates,
                                problem.clients, k=2)
        with pytest.raises(ValueError, match="coordinates"):
            bare.require_coords()

    def test_coord_slices(self, problem):
        assert problem.candidate_coords().shape == (10, 3)
        assert problem.client_coords().shape == (30, 3)


class TestAverageAccessDelay:
    def test_single_site(self, problem):
        sites = [problem.candidates[0]]
        expected = problem.matrix.rows(problem.clients, sites).mean()
        assert average_access_delay(problem.matrix, problem.clients,
                                    sites) == pytest.approx(expected)

    def test_more_sites_never_hurt(self, problem):
        one = average_access_delay(problem.matrix, problem.clients,
                                   problem.candidates[:1])
        all_sites = average_access_delay(problem.matrix, problem.clients,
                                         problem.candidates)
        assert all_sites <= one

    def test_rejects_empty(self, problem):
        with pytest.raises(ValueError):
            average_access_delay(problem.matrix, [], [0])
        with pytest.raises(ValueError):
            average_access_delay(problem.matrix, [0], [])


class TestStrategyContracts:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.name)
    def test_returns_k_distinct_candidates(self, problem, strategy):
        sites = strategy.place(problem, np.random.default_rng(0))
        assert len(sites) == 3
        assert len(set(sites)) == 3
        assert all(s in problem.candidates for s in sites)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.name)
    def test_deterministic_given_rng(self, problem, strategy):
        s1 = strategy.place(problem, np.random.default_rng(11))
        s2 = strategy.place(problem, np.random.default_rng(11))
        assert s1 == s2

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.name)
    def test_k1(self, problem, strategy):
        p1 = PlacementProblem(problem.matrix, problem.candidates,
                              problem.clients, k=1, coords=problem.coords)
        sites = strategy.place(p1, np.random.default_rng(0))
        assert len(sites) == 1

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                             ids=lambda s: s.name)
    def test_k_equals_candidates(self, problem, strategy):
        pk = PlacementProblem(problem.matrix, problem.candidates[:4],
                              problem.clients, k=4, coords=problem.coords)
        sites = strategy.place(pk, np.random.default_rng(0))
        assert sorted(sites) == sorted(pk.candidates)


class TestQualityOrdering:
    """The relationships the paper's figures rest on."""

    def test_optimal_is_lower_bound(self, problem):
        rng = np.random.default_rng(1)
        opt = average_access_delay(
            problem.matrix, problem.clients,
            OptimalPlacement().place(problem, rng))
        for strategy in ALL_STRATEGIES:
            delay = average_access_delay(
                problem.matrix, problem.clients,
                strategy.place(problem, np.random.default_rng(2)))
            assert opt <= delay + 1e-9

    def test_informed_strategies_beat_random_on_average(self, problem):
        random_delays = []
        online_delays = []
        offline_delays = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            random_delays.append(average_access_delay(
                problem.matrix, problem.clients,
                RandomPlacement().place(problem, rng)))
            online_delays.append(average_access_delay(
                problem.matrix, problem.clients,
                OnlineClusteringPlacement(micro_clusters=6).place(
                    problem, np.random.default_rng(seed))))
            offline_delays.append(average_access_delay(
                problem.matrix, problem.clients,
                OfflineKMeansPlacement().place(
                    problem, np.random.default_rng(seed))))
        assert np.mean(online_delays) < np.mean(random_delays)
        assert np.mean(offline_delays) < np.mean(random_delays)

    def test_greedy_close_to_optimal(self, problem):
        rng = np.random.default_rng(0)
        opt = average_access_delay(problem.matrix, problem.clients,
                                   OptimalPlacement().place(problem, rng))
        greedy = average_access_delay(problem.matrix, problem.clients,
                                      GreedyPlacement().place(problem, rng))
        assert greedy <= opt * 1.2


class TestOnlineSpecifics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineClusteringPlacement(micro_clusters=0)
        with pytest.raises(ValueError):
            OnlineClusteringPlacement(migration_rounds=0)
        with pytest.raises(ValueError):
            OnlineClusteringPlacement(accesses_per_client=0)
        with pytest.raises(ValueError):
            OnlineClusteringPlacement(selection="psychic")

    def test_summary_bytes_tracked_and_bounded(self, problem):
        strategy = OnlineClusteringPlacement(micro_clusters=6,
                                             migration_rounds=2)
        strategy.place(problem, np.random.default_rng(0))
        per_cluster = 16 + 2 * 8 * 3  # dim 3
        upper = 2 * 3 * 6 * per_cluster  # rounds * k * m * size
        assert 0 < strategy.last_summary_bytes <= upper

    def test_true_selection_mode(self, problem):
        strategy = OnlineClusteringPlacement(micro_clusters=6,
                                             selection="true")
        sites = strategy.place(problem, np.random.default_rng(0))
        assert len(sites) == 3


class TestOptimalSpecifics:
    def test_search_space_guard(self, problem):
        strategy = OptimalPlacement(max_combinations=10)
        with pytest.raises(ValueError, match="search space"):
            strategy.place(problem, np.random.default_rng(0))

    def test_beats_every_other_combination(self):
        matrix = small_matrix(n=12, seed=1)
        candidates = tuple(range(5))
        clients = tuple(range(5, 12))
        problem = PlacementProblem(matrix, candidates, clients, k=2)
        sites = OptimalPlacement().place(problem, np.random.default_rng(0))
        best = average_access_delay(matrix, clients, sites)
        from itertools import combinations
        for combo in combinations(candidates, 2):
            assert best <= average_access_delay(matrix, clients, combo) + 1e-9


class TestHotZoneSpecifics:
    def test_grid_validation(self):
        with pytest.raises(ValueError, match="cell"):
            HotZonePlacement(cells_per_axis=0)

    def test_concentrated_population_gets_local_replica(self):
        # All clients in one corner: hotzone must pick the candidate
        # nearest that corner first.
        matrix = small_matrix(n=20, seed=7)
        coords = np.zeros((20, 2))
        coords[10:] = [1.0, 1.0]           # clients cluster at (1, 1)
        coords[0] = [100.0, 100.0]          # far candidate
        coords[1] = [2.0, 2.0]              # near candidate
        problem = PlacementProblem(matrix, (0, 1), tuple(range(10, 20)),
                                   k=1, coords=coords)
        sites = HotZonePlacement(cells_per_axis=4).place(
            problem, np.random.default_rng(0))
        assert sites == (1,)
