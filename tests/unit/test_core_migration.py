"""Unit tests for repro.core.migration and repro.core.costs."""

import math

import pytest

from repro.core import (
    MigrationCostModel,
    MigrationPolicy,
    offline_bandwidth_bytes,
    offline_compute_ops,
    online_bandwidth_bytes,
    online_compute_ops,
)


class TestCostModel:
    def test_cost_counts_only_new_sites(self):
        model = MigrationCostModel(dollars_per_gb=0.10, object_size_gb=5.0)
        # One site kept, two new: 2 transfers of 5 GB at $0.10.
        assert model.cost_of_move((1, 2, 3), (1, 4, 5)) == pytest.approx(1.0)

    def test_no_cost_when_unchanged(self):
        model = MigrationCostModel()
        assert model.cost_of_move((1, 2), (2, 1)) == 0.0

    def test_dropping_replicas_is_free(self):
        model = MigrationCostModel()
        assert model.cost_of_move((1, 2, 3), (1,)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="price"):
            MigrationCostModel(dollars_per_gb=-0.1)
        with pytest.raises(ValueError, match="size"):
            MigrationCostModel(object_size_gb=0.0)


class TestPolicy:
    def setup_method(self):
        self.model = MigrationCostModel(dollars_per_gb=0.10, object_size_gb=1.0)

    def test_migrates_on_clear_gain(self):
        policy = MigrationPolicy(min_relative_gain=0.05, min_absolute_gain_ms=1.0)
        verdict = policy.decide(100.0, 60.0, self.model, (0, 1), (2, 3))
        assert verdict.migrate
        assert verdict.gain_ms == pytest.approx(40.0)
        assert verdict.relative_gain == pytest.approx(0.4)
        assert verdict.cost_dollars == pytest.approx(0.2)

    def test_rejects_unchanged_placement(self):
        policy = MigrationPolicy()
        verdict = policy.decide(100.0, 60.0, self.model, (0, 1), (1, 0))
        assert not verdict.migrate
        assert verdict.reason == "placement unchanged"

    def test_rejects_small_absolute_gain(self):
        policy = MigrationPolicy(min_relative_gain=0.0, min_absolute_gain_ms=5.0)
        verdict = policy.decide(100.0, 97.0, self.model, (0,), (1,))
        assert not verdict.migrate
        assert "absolute" in verdict.reason

    def test_rejects_small_relative_gain(self):
        policy = MigrationPolicy(min_relative_gain=0.10, min_absolute_gain_ms=0.0)
        verdict = policy.decide(100.0, 95.0, self.model, (0,), (1,))
        assert not verdict.migrate
        assert "relative" in verdict.reason

    def test_rejects_over_budget(self):
        policy = MigrationPolicy(min_relative_gain=0.0,
                                 min_absolute_gain_ms=0.0,
                                 max_cost_dollars=0.05)
        verdict = policy.decide(100.0, 50.0, self.model, (0,), (1,))
        assert not verdict.migrate
        assert "budget" in verdict.reason

    def test_regression_never_migrates(self):
        policy = MigrationPolicy(min_relative_gain=0.0, min_absolute_gain_ms=0.0)
        verdict = policy.decide(50.0, 80.0, self.model, (0,), (1,))
        assert not verdict.migrate

    def test_zero_current_delay_is_safe(self):
        policy = MigrationPolicy()
        verdict = policy.decide(0.0, 0.0, self.model, (0,), (1,))
        assert not verdict.migrate

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(min_relative_gain=-0.1)
        with pytest.raises(ValueError):
            MigrationPolicy(min_absolute_gain_ms=-1.0)
        with pytest.raises(ValueError):
            MigrationPolicy(max_cost_dollars=-1.0)
        policy = MigrationPolicy()
        with pytest.raises(ValueError, match="delays"):
            policy.decide(-1.0, 0.0, self.model, (0,), (1,))


class TestTableIIFormulas:
    def test_online_bandwidth_matches_paper_example(self):
        # Paper: 100 micro-clusters for each of 3 replicas -> 300
        # micro-clusters, "less than 300 KB".
        size = online_bandwidth_bytes(k=3, m=100, dim=3)
        assert size == 300 * (16 + 48)
        assert size < 300 * 1024

    def test_offline_bandwidth_matches_paper_example(self):
        # 1 million accesses -> "more than tens of megabytes".
        size = offline_bandwidth_bytes(1_000_000, dim=3)
        assert size >= 10 * 1024 * 1024

    def test_online_independent_of_access_count(self):
        assert online_bandwidth_bytes(3, 100) == online_bandwidth_bytes(3, 100)

    def test_compute_ops_formulas(self):
        km = 12
        assert online_compute_ops(3, 4) == pytest.approx(km ** 3 * math.log(km))
        assert offline_compute_ops(1000, 2) == pytest.approx(
            1000 ** 2 * math.log(1000))

    def test_online_cheaper_than_offline_at_scale(self):
        assert online_compute_ops(3, 100) < offline_compute_ops(1_000_000, 3)
        assert online_bandwidth_bytes(3, 100) < offline_bandwidth_bytes(1_000_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            online_bandwidth_bytes(0, 10)
        with pytest.raises(ValueError):
            offline_bandwidth_bytes(-1)
        with pytest.raises(ValueError):
            online_compute_ops(1, 0)
        with pytest.raises(ValueError):
            offline_compute_ops(0, 1)
