"""Unit tests for repro.net.io."""

import numpy as np
import pytest

from repro.net import LatencyMatrix, load_matrix, save_matrix
from repro.net.planetlab import small_matrix


class TestRoundtrip:
    def test_npz_roundtrip(self, tmp_path):
        m = small_matrix(n=12, seed=3)
        path = str(tmp_path / "m.npz")
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert np.allclose(loaded.rtt, m.rtt)
        assert loaded.names == m.names

    def test_text_roundtrip(self, tmp_path):
        m = small_matrix(n=8, seed=3)
        path = str(tmp_path / "m.txt")
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert np.allclose(loaded.rtt, m.rtt, atol=1e-3)

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            load_matrix("/nonexistent/matrix.npz")


class TestCleaning:
    def test_one_sided_missing_patched_from_reverse(self, tmp_path):
        raw = np.array([
            [0.0, -1.0, 30.0],
            [20.0, 0.0, 10.0],
            [30.0, 10.0, 0.0],
        ])
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, raw)
        m = load_matrix(path)
        assert m.latency(0, 1) == pytest.approx(20.0)

    def test_asymmetric_measurements_averaged(self, tmp_path):
        raw = np.array([
            [0.0, 10.0],
            [30.0, 0.0],
        ])
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, raw)
        m = load_matrix(path)
        assert m.latency(0, 1) == pytest.approx(20.0)

    def test_fully_missing_pair_gets_median(self, tmp_path):
        raw = np.array([
            [0.0, -1.0, 30.0],
            [-1.0, 0.0, 10.0],
            [30.0, 10.0, 0.0],
        ])
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, raw)
        m = load_matrix(path)
        # Median of the finite off-diagonal values {30, 10, 30, 10} = 20.
        assert m.latency(0, 1) == pytest.approx(20.0)

    def test_diagonal_forced_to_zero(self, tmp_path):
        raw = np.array([
            [5.0, 10.0],
            [10.0, 5.0],
        ])
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, raw)
        m = load_matrix(path)
        assert m.latency(0, 0) == 0.0

    def test_all_missing_rejected(self, tmp_path):
        raw = np.full((3, 3), -1.0)
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, raw)
        with pytest.raises(ValueError, match="finite"):
            load_matrix(path)

    def test_non_square_rejected(self, tmp_path):
        path = str(tmp_path / "raw.txt")
        np.savetxt(path, np.zeros((2, 3)))
        with pytest.raises(ValueError, match="square"):
            load_matrix(path)
