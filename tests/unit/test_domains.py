"""Unit tests for the failure-domain tree and its co-failure model.

The closed forms (``p_pair_down``, ``prob_all_down``,
``expected_survivors``) are checked against brute-force enumeration of
every independent domain-failure combination — the model's source
definition.
"""

import itertools

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.net.domains import FailureDomains


def brute_force(domains, sites, predicate):
    """Sum P(failure combination) over combinations satisfying
    ``predicate(down_sites)`` — exhaustive over the independent atoms
    (regions, DCs, racks, nodes) touching ``sites``."""
    atoms = sorted({("region", int(domains.region_of[s]), domains.p_region)
                    for s in sites}
                   | {("dc", int(domains.dc_of[s]), domains.p_dc)
                      for s in sites}
                   | {("rack", int(domains.rack_of[s]), domains.p_rack)
                      for s in sites}
                   | {("node", int(s), domains.p_node) for s in sites})
    total = 0.0
    for states in itertools.product((False, True), repeat=len(atoms)):
        prob = 1.0
        failed = set()
        for (level, ident, p), state in zip(atoms, states):
            prob *= p if state else 1.0 - p
            if state:
                failed.add((level, ident))
        down = {
            s for s in sites
            if ("region", int(domains.region_of[s])) in failed
            or ("dc", int(domains.dc_of[s])) in failed
            or ("rack", int(domains.rack_of[s])) in failed
            or ("node", int(s)) in failed
        }
        if predicate(down):
            total += prob
    return total


@pytest.fixture
def tree():
    # 2 regions x 2 DCs x 2 racks x 2 positions = 16 positions.
    return FailureDomains.contiguous(16, regions=2, dcs_per_region=2,
                                     racks_per_dc=2, p_region=0.02,
                                     p_dc=0.05, p_rack=0.10, p_node=0.03)


class TestConstruction:
    def test_contiguous_structure(self, tree):
        assert tree.n == 16
        assert tree.rack_of.tolist() == [i // 2 for i in range(16)]
        assert tree.dc_of.tolist() == [i // 4 for i in range(16)]
        assert tree.region_of.tolist() == [i // 8 for i in range(16)]

    def test_contiguous_uneven(self):
        # 5 positions over 4 racks: one rack gets two.
        domains = FailureDomains.contiguous(5, regions=2, dcs_per_region=1,
                                            racks_per_dc=2)
        assert sorted(domains.rack_of.tolist()) == [0, 0, 1, 2, 3]
        assert len(set(domains.region_of.tolist())) == 2

    def test_too_many_racks(self):
        with pytest.raises(ValueError, match="every rack"):
            FailureDomains.contiguous(3, regions=2, dcs_per_region=1,
                                      racks_per_dc=2)

    def test_nesting_violation(self):
        # Rack 0 spans DCs 0 and 1.
        with pytest.raises(ValueError, match="spans multiple"):
            FailureDomains(region_of=[0, 0], dc_of=[0, 1], rack_of=[0, 0])

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="p_rack"):
            FailureDomains.contiguous(4, 1, 1, 2, p_rack=1.0)
        with pytest.raises(ValueError, match="p_node"):
            FailureDomains.contiguous(4, 1, 1, 2, p_node=-0.1)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="one region/dc/rack"):
            FailureDomains(region_of=[0, 0], dc_of=[0], rack_of=[0, 0])
        with pytest.raises(ValueError, match="at least one"):
            FailureDomains(region_of=[], dc_of=[], rack_of=[])

    def test_from_matrix_groups_mutually_close_candidates(self):
        # Eight nodes on a line in four tight pairs: each pair must
        # become one rack, near pairs one region.
        x = np.array([0.0, 1.0, 100.0, 101.0, 200.0, 201.0, 300.0, 301.0])
        rtt = np.abs(x[:, None] - x[None, :])
        matrix = LatencyMatrix(rtt)
        domains = FailureDomains.from_matrix(
            matrix, list(range(8)), regions=2, dcs_per_region=2,
            racks_per_dc=1)
        assert domains.rack_of.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert domains.dc_of.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert domains.region_of.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]


class TestTopologyQueries:
    def test_shared_depth(self, tree):
        assert tree.shared_depth(0, 1) == 3      # same rack
        assert tree.shared_depth(0, 2) == 2      # same DC, other rack
        assert tree.shared_depth(0, 4) == 1      # same region, other DC
        assert tree.shared_depth(0, 8) == 0      # other region
        assert tree.shared_depth(5, 5) == 3

    def test_members_and_resolve(self, tree):
        assert tree.members("rack", 3) == (6, 7)
        assert tree.members("dc", 1) == (4, 5, 6, 7)
        assert tree.resolve("region:1") == tuple(range(8, 16))
        with pytest.raises(ValueError, match="unknown level"):
            tree.members("continent", 0)
        with pytest.raises(ValueError, match="no positions"):
            tree.resolve("rack:99")
        with pytest.raises(ValueError, match="bad domain spec"):
            tree.resolve("rack")

    def test_densest_members(self, tree):
        assert tree.densest_members("rack", [0, 1, 5]) == (0, 1)
        assert tree.densest_members("dc", [4, 5, 9]) == (4, 5, 6, 7)
        # Tie: one replica each in racks 2 and 0 -> lowest rack id wins.
        assert tree.densest_members("rack", [5, 0]) == (0, 1)
        # No positions at all: lowest-id domain.
        assert tree.densest_members("region", []) == tuple(range(8))


class TestCoFailureModel:
    def test_p_down_matches_brute_force(self, tree):
        expected = brute_force(tree, [3], lambda down: 3 in down)
        assert tree.p_down(3) == pytest.approx(expected, abs=1e-12)
        with pytest.raises(ValueError, match="outside"):
            tree.p_down(16)

    @pytest.mark.parametrize("pair", [(0, 1), (0, 2), (0, 4), (0, 8)])
    def test_p_pair_down_matches_brute_force(self, tree, pair):
        a, b = pair
        expected = brute_force(tree, [a, b],
                               lambda down: a in down and b in down)
        assert tree.p_pair_down(a, b) == pytest.approx(expected, abs=1e-12)

    def test_p_pair_down_monotone_in_shared_depth(self, tree):
        risks = [tree.p_pair_down(0, other) for other in (8, 4, 2, 1)]
        assert risks == sorted(risks)
        assert risks[0] < risks[-1]          # strictly, probs are > 0

    def test_cofailure_risk_is_mean_pairwise(self, tree):
        sites = [0, 2, 9]
        pairs = [(0, 2), (0, 9), (2, 9)]
        expected = sum(tree.p_pair_down(a, b) for a, b in pairs) / 3
        assert tree.cofailure_risk(sites) == pytest.approx(expected)
        assert tree.cofailure_risk([4]) == 0.0
        with pytest.raises(ValueError, match="distinct"):
            tree.cofailure_risk([1, 1, 2])

    def test_cofailure_risk_rewards_spreading(self, tree):
        packed = tree.cofailure_risk([0, 1, 2])      # one DC
        spread = tree.cofailure_risk([0, 4, 8])      # rack/DC/region split
        assert spread < packed

    def test_expected_survivors_matches_brute_force(self, tree):
        sites = [0, 1, 10]
        expected = sum(
            brute_force(tree, [s], lambda down, s=s: s not in down)
            for s in sites)
        assert tree.expected_survivors(sites) == pytest.approx(expected)

    @pytest.mark.parametrize("sites", [[0, 1], [0, 1, 2], [0, 4, 8],
                                       [0, 1, 8, 9], [5]])
    def test_prob_all_down_matches_brute_force(self, tree, sites):
        expected = brute_force(
            tree, sites, lambda down: all(s in down for s in sites))
        assert tree.prob_all_down(sites) == pytest.approx(expected,
                                                          abs=1e-12)

    def test_prob_all_down_validates(self, tree):
        with pytest.raises(ValueError, match="non-empty"):
            tree.prob_all_down([])
