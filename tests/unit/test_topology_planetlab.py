"""Unit tests for repro.net.topology and repro.net.planetlab."""

import numpy as np
import pytest

from repro.net import (
    GeoTopology,
    PlanetLabParams,
    Region,
    WORLD_REGIONS,
    great_circle_km,
    synthetic_planetlab_matrix,
)


class TestGreatCircle:
    def test_zero_distance_same_point(self):
        assert great_circle_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_quarter_circumference(self):
        # Pole to equator is a quarter of the circumference (~10 007 km).
        d = great_circle_km(90.0, 0.0, 0.0, 0.0)
        assert d == pytest.approx(10007.5, rel=0.01)

    def test_symmetry(self):
        d1 = great_circle_km(40.7, -74.0, 48.9, 2.4)
        d2 = great_circle_km(48.9, 2.4, 40.7, -74.0)
        assert d1 == pytest.approx(d2)

    def test_nyc_paris_is_about_5800km(self):
        d = great_circle_km(40.7, -74.0, 48.9, 2.4)
        assert 5500 < d < 6100


class TestRegion:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError, match="latitude"):
            Region("bad", 91.0, 0.0, weight=1.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError, match="longitude"):
            Region("bad", 0.0, 181.0, weight=1.0)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Region("bad", 0.0, 0.0, weight=0.0)

    def test_rejects_nonpositive_spread(self):
        with pytest.raises(ValueError, match="spread"):
            Region("bad", 0.0, 0.0, weight=1.0, spread_deg=0.0)


class TestGeoTopology:
    def test_deterministic_with_seed(self):
        t1 = GeoTopology(50, rng=np.random.default_rng(7))
        t2 = GeoTopology(50, rng=np.random.default_rng(7))
        assert np.array_equal(t1.lat, t2.lat)
        assert np.array_equal(t1.lon, t2.lon)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            GeoTopology(0)

    def test_rejects_no_regions(self):
        with pytest.raises(ValueError, match="region"):
            GeoTopology(5, regions=())

    def test_coordinates_in_valid_range(self):
        t = GeoTopology(200, rng=np.random.default_rng(3))
        assert np.all(np.abs(t.lat) <= 90)
        assert np.all(np.abs(t.lon) <= 180)

    def test_distance_matrix_properties(self):
        t = GeoTopology(20, rng=np.random.default_rng(3))
        d = t.distance_km()
        assert d.shape == (20, 20)
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0)
        assert np.all(d >= 0)

    def test_region_names_resolve(self):
        t = GeoTopology(10, rng=np.random.default_rng(3))
        names = {r.name for r in WORLD_REGIONS}
        for i in range(10):
            assert t.region_name(i) in names

    def test_same_region_matrix(self):
        t = GeoTopology(30, rng=np.random.default_rng(3))
        same = t.same_region()
        assert np.all(np.diag(same))
        assert np.array_equal(same, same.T)


class TestSyntheticPlanetLab:
    def test_default_size_is_226(self):
        matrix, topo = synthetic_planetlab_matrix(seed=1)
        assert matrix.n == 226
        assert topo.n == 226

    def test_seed_determinism(self):
        m1, _ = synthetic_planetlab_matrix(seed=42)
        m2, _ = synthetic_planetlab_matrix(seed=42)
        assert np.array_equal(m1.rtt, m2.rtt)

    def test_different_seeds_differ(self):
        m1, _ = synthetic_planetlab_matrix(seed=1)
        m2, _ = synthetic_planetlab_matrix(seed=2)
        assert not np.array_equal(m1.rtt, m2.rtt)

    def test_realistic_rtt_range(self):
        matrix, _ = synthetic_planetlab_matrix(seed=5)
        values = matrix.pair_values()
        # Median pairwise RTT in the wide-area regime.
        assert 40 < np.median(values) < 250
        # A heavy tail exists but nothing absurd.
        assert values.max() < 1500
        assert values.min() > 0

    def test_intra_region_faster_than_inter_region(self):
        params = PlanetLabParams(n=120)
        matrix, topo = synthetic_planetlab_matrix(params, seed=9)
        same = topo.same_region()
        iu = np.triu_indices(matrix.n, k=1)
        intra = matrix.rtt[iu][same[iu]]
        inter = matrix.rtt[iu][~same[iu]]
        assert intra.size > 0 and inter.size > 0
        assert np.median(intra) < np.median(inter) / 2

    def test_triangle_violations_present(self):
        matrix, _ = synthetic_planetlab_matrix(seed=11)
        frac = matrix.triangle_violation_fraction(
            sample=3000, rng=np.random.default_rng(0))
        assert frac > 0.001

    def test_small_configurations(self):
        params = PlanetLabParams(n=10)
        matrix, _ = synthetic_planetlab_matrix(params, seed=0)
        assert matrix.n == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="two nodes"):
            PlanetLabParams(n=1)
        with pytest.raises(ValueError, match="stretch"):
            PlanetLabParams(path_stretch=0.5)
        with pytest.raises(ValueError, match="detour fraction"):
            PlanetLabParams(detour_fraction=1.5)
        with pytest.raises(ValueError, match="inflate"):
            PlanetLabParams(detour_inflation=0.9)
        with pytest.raises(ValueError, match="overhead"):
            PlanetLabParams(node_overhead_range=(5.0, 1.0))

    def test_topology_size_mismatch_rejected(self):
        topo = GeoTopology(10, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="nodes"):
            synthetic_planetlab_matrix(PlanetLabParams(n=20), seed=0, topology=topo)
