"""Unit tests for coded (split-object) placement."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.net import LatencyMatrix
from repro.net.planetlab import small_matrix
from repro.placement import (
    CodedPlacement,
    PlacementProblem,
    average_access_delay,
    coded_access_delay,
)


@pytest.fixture(scope="module")
def problem():
    matrix = small_matrix(n=40, seed=12)
    result = embed_matrix(matrix, system="mds", space=EuclideanSpace(3))
    rng = np.random.default_rng(13)
    candidates = tuple(int(i) for i in rng.choice(40, size=12, replace=False))
    clients = tuple(i for i in range(40) if i not in candidates)
    return PlacementProblem(matrix, candidates, clients, k=3,
                            coords=result.coords)


class TestCodedAccessDelay:
    def test_k1_equals_plain_delay(self, problem):
        sites = list(problem.candidates[:4])
        assert coded_access_delay(problem.matrix, problem.clients, sites,
                                  1) == pytest.approx(
            average_access_delay(problem.matrix, problem.clients, sites))

    def test_monotone_in_k_required(self, problem):
        sites = list(problem.candidates[:5])
        delays = [coded_access_delay(problem.matrix, problem.clients,
                                     sites, k) for k in range(1, 6)]
        for a, b in zip(delays, delays[1:]):
            assert a <= b + 1e-9  # waiting for more fragments is slower

    def test_k_equals_n_is_max(self, problem):
        sites = list(problem.candidates[:3])
        block = problem.matrix.rows(problem.clients, sites)
        expected = block.max(axis=1).mean()
        assert coded_access_delay(problem.matrix, problem.clients, sites,
                                  3) == pytest.approx(expected)

    def test_validation(self, problem):
        with pytest.raises(ValueError, match="non-empty"):
            coded_access_delay(problem.matrix, [], [0], 1)
        with pytest.raises(ValueError, match="k_required"):
            coded_access_delay(problem.matrix, problem.clients,
                               list(problem.candidates[:3]), 4)


class TestCodedPlacement:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CodedPlacement(n_fragments=3, k_required=4)
        with pytest.raises(ValueError):
            CodedPlacement(n_fragments=0, k_required=0)
        with pytest.raises(ValueError):
            CodedPlacement(max_rounds=0)

    def test_storage_overhead(self):
        assert CodedPlacement(6, 3).storage_overhead == 2.0
        assert CodedPlacement(5, 5).storage_overhead == 1.0

    def test_name_reflects_code(self):
        assert CodedPlacement(6, 3).name == "coded 3-of-6"

    def test_places_n_distinct_fragments(self, problem):
        strategy = CodedPlacement(n_fragments=6, k_required=3)
        sites = strategy.place(problem, np.random.default_rng(0))
        assert len(sites) == 6
        assert len(set(sites)) == 6
        assert all(s in problem.candidates for s in sites)

    def test_fragments_capped_by_candidates(self, problem):
        strategy = CodedPlacement(n_fragments=50, k_required=3)
        sites = strategy.place(problem, np.random.default_rng(0))
        assert len(sites) == len(problem.candidates)

    def test_deterministic(self, problem):
        strategy = CodedPlacement(6, 3)
        a = strategy.place(problem, np.random.default_rng(1))
        b = strategy.place(problem, np.random.default_rng(2))
        assert a == b  # greedy + local search uses no randomness

    def test_1_of_n_spreads_like_replication(self, problem):
        # With k_required = 1 the coded objective IS the replication
        # objective, so the chosen 3 sites should serve clients about
        # as well as a dedicated k=3 strategy.
        from repro.placement import KMedianPlacement
        coded = CodedPlacement(n_fragments=3, k_required=1)
        coded_sites = coded.place(problem, np.random.default_rng(0))
        kmed_sites = KMedianPlacement().place(problem,
                                              np.random.default_rng(0))
        coded_delay = average_access_delay(problem.matrix, problem.clients,
                                           coded_sites)
        kmed_delay = average_access_delay(problem.matrix, problem.clients,
                                          kmed_sites)
        assert coded_delay <= kmed_delay * 1.10

    def test_local_optimum(self, problem):
        strategy = CodedPlacement(4, 2, max_rounds=20)
        sites = strategy.place(problem, np.random.default_rng(0))
        positions = [problem.candidates.index(s) for s in sites]
        coords = problem.coords
        client_coords = problem.client_coords()
        cand_coords = problem.candidate_coords()

        def coord_objective(pos_list):
            d = np.linalg.norm(
                client_coords[:, None, :] - cand_coords[pos_list][None, :, :],
                axis=-1)
            return np.partition(d, 1, axis=1)[:, 1].mean()

        base = coord_objective(positions)
        for i in range(len(positions)):
            for p in range(len(problem.candidates)):
                if p in positions:
                    continue
                trial = positions.copy()
                trial[i] = p
                assert coord_objective(trial) >= base - 1e-9
