"""Unit tests for repro.analysis (stats, experiment harness, reports)."""

import numpy as np
import pytest

from repro.analysis import (
    EvaluationSetting,
    Table2Row,
    default_strategies,
    format_figure,
    format_table2,
    run_comparison,
    run_figure2,
    run_table2,
    summarize,
)
from repro.analysis.experiment import draw_candidates
from repro.analysis.report import format_bytes
from repro.coords import EuclideanSpace, embed_matrix
from repro.net.planetlab import small_matrix


SMALL = EvaluationSetting(n_nodes=50, n_runs=4, coord_system="mds",
                          seed=1)


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([10.0, 20.0, 30.0])
        assert s.mean == 20.0
        assert s.n == 3
        assert s.std == pytest.approx(10.0)
        lo, hi = s.ci95
        assert lo < 20.0 < hi

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.ci95_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, size=5))
        large = summarize(rng.normal(0, 1, size=500))
        assert large.ci95_half_width < small.ci95_half_width


class TestDrawCandidates:
    def test_partition_is_complete_and_disjoint(self):
        matrix = small_matrix(n=30, seed=0)
        for mode in ("uniform", "dispersed"):
            cands, clients = draw_candidates(matrix, 8,
                                              np.random.default_rng(0), mode)
            assert len(cands) == 8
            assert len(set(cands)) == 8
            assert set(cands) | set(clients) == set(range(30))
            assert not set(cands) & set(clients)

    def test_dispersed_is_more_spread_than_uniform(self):
        matrix = small_matrix(n=60, seed=3)
        spreads = {}
        for mode in ("uniform", "dispersed"):
            pair_mins = []
            for run in range(10):
                cands, _ = draw_candidates(matrix, 10,
                                            np.random.default_rng(run), mode)
                sub = matrix.rows(cands, cands).copy()
                np.fill_diagonal(sub, np.inf)
                pair_mins.append(sub.min())
            spreads[mode] = np.mean(pair_mins)
        # Dispersed candidates keep larger nearest-neighbour distances.
        assert spreads["dispersed"] > spreads["uniform"]

    def test_unknown_mode_rejected(self):
        matrix = small_matrix(n=10, seed=0)
        with pytest.raises(ValueError, match="candidate mode"):
            draw_candidates(matrix, 3, np.random.default_rng(0), "psychic")


class TestRunComparison:
    def test_shapes_and_determinism(self):
        matrix = small_matrix(n=30, seed=1)
        res = embed_matrix(matrix, system="mds", space=EuclideanSpace(3))
        strategies = default_strategies(6)
        d1 = run_comparison(matrix, res.coords, strategies, 8, 2, 3, seed=9)
        d2 = run_comparison(matrix, res.coords, strategies, 8, 2, 3, seed=9)
        assert set(d1) == {s.name for s in strategies}
        assert all(len(v) == 3 for v in d1.values())
        assert d1 == d2

    def test_rejects_no_clients(self):
        matrix = small_matrix(n=10, seed=1)
        with pytest.raises(ValueError, match="client"):
            run_comparison(matrix, np.zeros((10, 2)), default_strategies(),
                           10, 1, 1)

    def test_optimal_lower_bounds_everyone(self):
        matrix = small_matrix(n=30, seed=1)
        res = embed_matrix(matrix, system="mds", space=EuclideanSpace(3))
        delays = run_comparison(matrix, res.coords, default_strategies(6),
                                8, 2, 4, seed=3)
        for run in range(4):
            for name, values in delays.items():
                assert delays["optimal"][run] <= values[run] + 1e-9


class TestFigureRunners:
    def test_figure2_structure(self):
        fig = run_figure2(SMALL, replica_counts=(1, 2), n_dc=10,
                          micro_clusters=4)
        assert set(fig.series) == {"random", "offline k-means",
                                   "online clustering", "optimal"}
        assert fig.xs("random") == [1.0, 2.0]
        assert all(len(v) == 2 for v in fig.series.values())
        # Every point summarizes n_runs runs.
        assert fig.series["random"][0].summary.n == SMALL.n_runs

    def test_figure_formatting(self):
        fig = run_figure2(SMALL, replica_counts=(1, 2), n_dc=10,
                          micro_clusters=4)
        text = format_figure(fig)
        assert "Figure 2" in text
        assert "online clustering" in text
        assert "| 1" in text and "| 2" in text


class TestTable2:
    def test_rows_and_invariants(self):
        rows = run_table2(n_accesses_list=(500, 5_000), k=2, m=20)
        assert len(rows) == 2
        first, second = rows
        # Online bytes bounded by the k*m budget; offline grows with n.
        assert first.online_bytes <= first.online_bytes_analytic
        assert second.offline_bytes == 10 * first.offline_bytes
        assert second.offline_bytes == second.offline_bytes_analytic
        # Coordinator-side clustering cost independent of n (loose bound).
        assert second.online_seconds < max(first.online_seconds, 0.005) * 20

    def test_formatting(self):
        rows = run_table2(n_accesses_list=(500,), k=2, m=20)
        text = format_table2(rows)
        assert "Table II" in text
        assert "500" in text


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(10) == "10 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024 ** 2) == "3.0 MB"
        assert format_bytes(5 * 1024 ** 3) == "5.0 GB"


class TestTimeline:
    def test_policy_validation(self):
        from repro.analysis import TimelinePolicy
        with pytest.raises(ValueError, match="period"):
            TimelinePolicy("x", epoch_period_ms=0.0)
        with pytest.raises(ValueError, match="k"):
            TimelinePolicy("x", k=0)

    def test_run_timeline_shapes(self):
        from repro.analysis import TimelinePolicy, run_timeline
        from repro.workloads import ConstantPattern
        result = run_timeline(
            lambda topo: ConstantPattern(),
            [TimelinePolicy("static", epoch_period_ms=None),
             TimelinePolicy("online")],
            n_nodes=30, n_dc=6, duration_ms=30_000.0, bin_ms=10_000.0,
            rate_per_second=80.0, seed=2)
        assert set(result.series) == {"static", "online"}
        assert all(len(v) == 3 for v in result.series.values())
        assert len(result.bin_centers_s) == 3
        assert result.bin_centers_s[0] == pytest.approx(5.0)
        assert result.migrations["static"] == 0

    def test_run_timeline_validation(self):
        from repro.analysis import TimelinePolicy, run_timeline
        from repro.workloads import ConstantPattern
        with pytest.raises(ValueError, match="duration"):
            run_timeline(lambda t: ConstantPattern(),
                         [TimelinePolicy("x")], duration_ms=5.0,
                         bin_ms=10.0)


class TestComparePaired:
    def test_clear_difference_significant(self):
        from repro.analysis import compare_paired
        rng = np.random.default_rng(0)
        base = rng.normal(100, 20, size=30)
        a = base - 10 + rng.normal(0, 1, size=30)   # consistently faster
        b = base + rng.normal(0, 1, size=30)
        result = compare_paired(a, b)
        assert result.significant
        assert result.a_is_better
        assert result.mean_difference == pytest.approx(-10, abs=2)
        assert result.n == 30

    def test_identical_samples_not_significant(self):
        from repro.analysis import compare_paired
        values = [10.0, 20.0, 30.0]
        result = compare_paired(values, values)
        assert not result.significant
        assert result.p_value == 1.0
        assert not result.a_is_better

    def test_noise_not_significant(self):
        from repro.analysis import compare_paired
        rng = np.random.default_rng(1)
        a = rng.normal(100, 5, size=10)
        b = a + rng.normal(0, 5, size=10)  # pure noise difference
        result = compare_paired(a, b, alpha=0.001)
        assert not result.significant

    def test_validation(self):
        from repro.analysis import compare_paired
        with pytest.raises(ValueError, match="equally sized"):
            compare_paired([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="alpha"):
            compare_paired([1.0, 2.0], [3.0, 4.0], alpha=2.0)

    def test_paired_test_beats_unpaired_on_run_variance(self):
        # The scenario the harness produces: huge run-to-run variance,
        # small consistent strategy effect.  Paired detects it.
        from repro.analysis import compare_paired
        rng = np.random.default_rng(2)
        run_effects = rng.normal(100, 40, size=30)
        a = run_effects - 3.0
        b = run_effects.copy()
        result = compare_paired(a, b)
        assert result.significant and result.a_is_better
