"""Unit tests for the write-aware control loop."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig, MigrationPolicy, ReplicationController
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore

LINE_DCS = np.array([[float(x), 0.0] for x in (0, 25, 50, 75, 100)])


def make(write_aware=True, k=2, **kwargs):
    config = ControllerConfig(k=k, max_micro_clusters=10, radius_floor=2.0,
                              write_aware=write_aware, **kwargs)
    return ReplicationController(
        LINE_DCS, list(range(k)), config,
        policy=MigrationPolicy(min_relative_gain=0.0,
                               min_absolute_gain_ms=0.0))


class TestRecording:
    def test_kind_validation(self):
        ctrl = make()
        with pytest.raises(ValueError, match="kind"):
            ctrl.record_access(0, np.zeros(2), kind="delete")

    def test_writes_separate_stream_when_aware(self):
        ctrl = make(write_aware=True)
        ctrl.record_access(0, np.zeros(2), kind="read")
        ctrl.record_access(0, np.zeros(2), kind="write")
        assert ctrl._summaries[0].accesses == 1
        assert ctrl._write_summaries[0].accesses == 1

    def test_writes_fold_into_reads_when_not_aware(self):
        ctrl = make(write_aware=False)
        ctrl.record_access(0, np.zeros(2), kind="write")
        assert ctrl._summaries[0].accesses == 1
        assert ctrl._write_summaries[0].accesses == 0

    def test_epoch_counts_both_streams(self):
        ctrl = make(write_aware=True)
        for _ in range(3):
            ctrl.record_access(0, np.array([10.0, 0.0]), kind="read")
        for _ in range(2):
            ctrl.record_access(1, np.array([20.0, 0.0]), kind="write")
        report = ctrl.run_epoch(np.random.default_rng(0))
        assert report.accesses == 5


class TestWriteAwarePlacement:
    def test_write_heavy_workload_tightens_placement(self):
        # Readers at both ends, overwhelming writes in the center:
        # the write-aware controller should not keep replicas at the
        # extremes (update fan-out over 100 units dominates).
        rng = np.random.default_rng(0)
        aware = make(write_aware=True)
        blind = make(write_aware=False)
        for ctrl in (aware, blind):
            for _ in range(10):
                ctrl.record_access(0, np.array([0.0, 0.0]) + rng.normal(0, 1, 2),
                                   kind="read")
                ctrl.record_access(1, np.array([100.0, 0.0]) + rng.normal(0, 1, 2),
                                   kind="read")
            for _ in range(300):
                ctrl.record_access(0, np.array([50.0, 0.0]) + rng.normal(0, 1, 2),
                                   kind="write")
        aware_report = aware.run_epoch(np.random.default_rng(1))
        blind_report = blind.run_epoch(np.random.default_rng(1))
        aware_spread = abs(LINE_DCS[aware.sites[0], 0]
                           - LINE_DCS[aware.sites[1], 0])
        blind_spread = abs(LINE_DCS[blind.sites[0], 0]
                           - LINE_DCS[blind.sites[1], 0])
        assert aware_spread <= blind_spread
        assert aware_report.epoch == blind_report.epoch == 1

    def test_read_only_workload_behaves_like_paper_mode(self):
        rng = np.random.default_rng(2)
        aware = make(write_aware=True)
        blind = make(write_aware=False)
        for ctrl in (aware, blind):
            for _ in range(30):
                ctrl.record_access(0, np.array([5.0, 0.0]) + rng.normal(0, 1, 2))
                ctrl.record_access(1, np.array([95.0, 0.0]) + rng.normal(0, 1, 2))
        aware.run_epoch(np.random.default_rng(3))
        blind.run_epoch(np.random.default_rng(3))
        assert sorted(aware.sites) == sorted(blind.sites)

    def test_summaries_roll_over_in_both_streams(self):
        ctrl = make(write_aware=True)
        ctrl.record_access(0, np.zeros(2), kind="write")
        ctrl.record_access(0, np.zeros(2), kind="read")
        ctrl.run_epoch(np.random.default_rng(0))
        report = ctrl.run_epoch(np.random.default_rng(1))
        assert report.accesses == 0


class TestStoreIntegration:
    def test_store_routes_kinds_to_streams(self):
        matrix = small_matrix(n=15, seed=4)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=4)
        store = ReplicatedStore(sim, matrix, (0, 1, 2), coords,
                                selection="oracle")
        store.create_object(
            "obj", initial_sites=[0, 1],
            controller_config=ControllerConfig(
                k=2, max_micro_clusters=8, write_aware=True))
        client = store.add_client(8)
        client.read("obj")
        client.write("obj")
        sim.run()
        ctrl = store.controller("obj")
        assert sum(s.accesses for s in ctrl._summaries.values()) == 1
        assert sum(s.accesses for s in ctrl._write_summaries.values()) == 1
