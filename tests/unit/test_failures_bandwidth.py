"""Unit tests for failure injection, read retries, repair and bandwidth."""

import numpy as np
import pytest

from repro.net import (
    LatencyCorrelatedBandwidth,
    LatencyMatrix,
    UniformBandwidth,
)
from repro.net.planetlab import small_matrix
from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig
from repro.sim import Network, Simulator
from repro.sim.failures import FailureInjector
from repro.store import ReplicatedStore


def flat_matrix(n=6, rtt=20.0):
    m = np.full((n, n), rtt)
    np.fill_diagonal(m, 0.0)
    return LatencyMatrix(m)


class TestBandwidthModels:
    def test_uniform_transfer_time(self):
        model = UniformBandwidth(mbps=100.0)
        # 1 MB at 100 Mbps = 8e6 bits / 1e8 bps = 80 ms.
        assert model.transfer_ms(50.0, 1_000_000) == pytest.approx(80.0)
        assert model.transfer_ms(50.0, 0) == 0.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError, match="positive"):
            UniformBandwidth(0.0)

    def test_latency_correlated_shape(self):
        model = LatencyCorrelatedBandwidth(peak_mbps=1000.0,
                                           reference_rtt_ms=50.0,
                                           floor_mbps=10.0)
        assert model.bandwidth_mbps(0.0) == pytest.approx(1000.0)
        assert model.bandwidth_mbps(50.0) == pytest.approx(500.0)
        # Long paths bottom out at the floor.
        assert model.bandwidth_mbps(1e6) == pytest.approx(10.0)
        # Transfers are slower on long paths.
        near = model.transfer_ms(10.0, 10 ** 7)
        far = model.transfer_ms(300.0, 10 ** 7)
        assert far > near

    def test_latency_correlated_validation(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyCorrelatedBandwidth(peak_mbps=0.0)
        with pytest.raises(ValueError, match="floor"):
            LatencyCorrelatedBandwidth(peak_mbps=10.0, floor_mbps=20.0)

    def test_network_applies_bandwidth(self):
        from repro.sim import Node

        class Recorder(Node):
            def __init__(self, net, nid):
                super().__init__(net, nid)
                self.at = None

            def handle_message(self, message):
                self.at = self.sim.now

        sim = Simulator()
        net = Network(sim, flat_matrix(rtt=20.0),
                      bandwidth=UniformBandwidth(mbps=8.0))
        a = Recorder(net, 0)
        b = Recorder(net, 1)
        a.send(1, "blob", size_bytes=1_000_000)  # 8e6 bits / 8 Mbps = 1000 ms
        sim.run()
        assert b.at == pytest.approx(10.0 + 1000.0)


class TestFailureInjector:
    def test_crash_and_recover_toggle_liveness(self):
        sim = Simulator()
        net = Network(sim, flat_matrix())
        injector = FailureInjector(net)
        injector.crash_at(100.0, 2)
        injector.recover_at(200.0, 2)
        sim.run_until(150.0)
        assert not net.is_up(2)
        sim.run_until(250.0)
        assert net.is_up(2)
        kinds = [e.kind for e in injector.timeline]
        assert kinds == ["crash", "recover"]
        assert len(injector.crashes()) == 1

    def test_messages_to_down_node_dropped(self):
        from repro.sim import Node

        class Recorder(Node):
            def __init__(self, net, nid):
                super().__init__(net, nid)
                self.got = 0

            def handle_message(self, message):
                self.got += 1

        sim = Simulator()
        net = Network(sim, flat_matrix())
        a = Recorder(net, 0)
        b = Recorder(net, 1)
        net.set_down(1)
        a.send(1, "ping")
        sim.run()
        assert b.got == 0
        assert net.messages_dropped == 1

    def test_down_sender_cannot_transmit(self):
        from repro.sim import Node

        class Recorder(Node):
            def __init__(self, net, nid):
                super().__init__(net, nid)
                self.got = 0

            def handle_message(self, message):
                self.got += 1

        sim = Simulator()
        net = Network(sim, flat_matrix())
        a = Recorder(net, 0)
        b = Recorder(net, 1)
        net.set_down(0)
        a.send(1, "ping")
        sim.run()
        assert b.got == 0

    def test_crash_hooks_fire(self):
        sim = Simulator()
        net = Network(sim, flat_matrix())
        crashed, recovered = [], []
        injector = FailureInjector(net, on_crash=crashed.append,
                                   on_recover=recovered.append)
        injector.crash_now(3)
        injector.recover_now(3)
        assert crashed == [3]
        assert recovered == [3]

    def test_double_crash_is_idempotent(self):
        sim = Simulator()
        net = Network(sim, flat_matrix())
        injector = FailureInjector(net)
        injector.crash_now(1)
        injector.crash_now(1)
        assert len(injector.timeline) == 1

    def test_random_failures_schedule(self):
        sim = Simulator()
        net = Network(sim, flat_matrix())
        injector = FailureInjector(net)
        n = injector.random_failures([0, 1, 2], mtbf_ms=1_000.0,
                                     mttr_ms=200.0, until=20_000.0,
                                     rng=np.random.default_rng(0))
        assert n > 0
        sim.run_until(20_000.0)
        # Every crash is eventually paired with a recovery or the
        # horizon; the timeline alternates per node.
        per_node = {}
        for e in injector.timeline:
            per_node.setdefault(e.node, []).append(e.kind)
        for kinds in per_node.values():
            for a, b in zip(kinds, kinds[1:]):
                assert a != b

    def test_random_failures_validation(self):
        sim = Simulator()
        net = Network(sim, flat_matrix())
        injector = FailureInjector(net)
        with pytest.raises(ValueError, match="positive"):
            injector.random_failures([0], 0.0, 1.0, 10.0,
                                     np.random.default_rng(0))
        with pytest.raises(ValueError, match="future"):
            injector.random_failures([0], 1.0, 1.0, 0.0,
                                     np.random.default_rng(0))


def build_store(**kwargs):
    matrix = small_matrix(n=20, seed=4)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=4)
    store = ReplicatedStore(sim, matrix, tuple(range(6)), coords,
                            selection="oracle", **kwargs)
    return sim, matrix, store


class TestReadRetries:
    def test_read_retries_next_replica_after_timeout(self):
        sim, matrix, store = build_store(read_timeout_ms=500.0,
                                         max_read_attempts=3)
        store.create_object("obj", initial_sites=[0, 1])
        injector = FailureInjector(store.network)
        client = store.add_client(10)
        primary = store.route_read(10, "obj")[0]
        injector.crash_now(primary)
        client.read("obj")
        sim.run()
        assert len(store.log) == 1
        record = store.log.records[0]
        assert record.kind == "read"
        backup = 1 if primary == 0 else 0
        assert record.server == backup
        # Total delay includes the wasted timeout window.
        assert record.delay_ms >= 500.0
        assert store.failed_reads == 0

    def test_read_fails_when_all_replicas_down(self):
        sim, matrix, store = build_store(read_timeout_ms=400.0,
                                         max_read_attempts=2)
        store.create_object("obj", initial_sites=[0, 1])
        injector = FailureInjector(store.network)
        injector.crash_now(0)
        injector.crash_now(1)
        client = store.add_client(10)
        client.read("obj")
        sim.run()
        assert store.failed_reads == 1
        assert store.log.records[0].kind == "read-timeout"

    def test_no_timeout_configured_read_lost_silently(self):
        sim, matrix, store = build_store()
        store.create_object("obj", initial_sites=[0])
        FailureInjector(store.network).crash_now(0)
        client = store.add_client(10)
        client.read("obj")
        sim.run()
        assert len(store.log) == 0

    def test_store_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            build_store(read_timeout_ms=0.0)
        with pytest.raises(ValueError, match="attempt"):
            build_store(max_read_attempts=0)
        with pytest.raises(ValueError, match="repair period"):
            build_store(repair_period_ms=0.0)


class TestAutoRepair:
    def test_failed_replica_is_rereplicated(self):
        sim, matrix, store = build_store(auto_repair=True,
                                         repair_period_ms=1_000.0,
                                         read_timeout_ms=500.0)
        store.create_object(
            "obj", initial_sites=[0, 1],
            controller_config=ControllerConfig(k=2, max_micro_clusters=8))
        injector = FailureInjector(store.network)
        injector.crash_at(2_000.0, 0)
        sim.run_until(10_000.0)
        sites = store.installed_sites("obj")
        assert len(sites) == 2
        assert 0 not in sites
        assert 1 in sites
        assert store.repairs >= 1
        # The new holder really has the data.
        new_site = [s for s in sites if s != 1][0]
        assert "obj" in store.servers[new_site].replicas
        # The controller follows the repaired set.
        positions = tuple(store.candidates.index(s) for s in sites)
        assert sorted(store.controller("obj").sites) == sorted(positions)

    def test_recovered_durable_replica_rejoins(self):
        sim, matrix, store = build_store(auto_repair=False,
                                         repair_period_ms=1_000.0)
        # auto_repair off: no periodic sweep; drive checks manually.
        store.create_object(
            "obj", initial_sites=[0, 1],
            controller_config=ControllerConfig(k=2, max_micro_clusters=8))
        injector = FailureInjector(store.network)
        injector.crash_now(0)
        store._check_availability()
        assert store.installed_sites("obj") == (1,)
        injector.recover_now(0)
        store._check_availability()
        # Durable disk: node 0 still holds the replica and rejoins free.
        assert store.installed_sites("obj") == (0, 1)
        assert store.repairs == 0

    def test_no_repair_possible_when_all_down(self):
        sim, matrix, store = build_store(auto_repair=True,
                                         repair_period_ms=1_000.0)
        store.create_object(
            "obj", initial_sites=[0],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8))
        FailureInjector(store.network).crash_now(0)
        sim.run_until(5_000.0)
        # Nothing to copy from; the old set is retained pending recovery.
        assert store.installed_sites("obj") == (0,)

    def test_reads_survive_failure_with_repair(self):
        sim, matrix, store = build_store(auto_repair=True,
                                         repair_period_ms=1_000.0,
                                         read_timeout_ms=500.0,
                                         max_read_attempts=3)
        store.create_object(
            "obj", initial_sites=[0, 1],
            controller_config=ControllerConfig(k=2, max_micro_clusters=8))
        injector = FailureInjector(store.network)
        injector.crash_at(3_000.0, 0)
        clients = [store.add_client(i) for i in range(10, 16)]

        from repro.sim import PeriodicProcess
        PeriodicProcess(sim, 200.0,
                        lambda: [c.read("obj") for c in clients])
        sim.run_until(20_000.0)
        reads = [r for r in store.log.records if r.kind == "read"]
        # Overwhelmingly successful despite the crash.
        assert len(reads) > 500
        assert store.failed_reads <= 12  # only the in-flight window
