"""Unit tests for object groups (the paper's virtual objects)."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore


def build_store(seed=6, n=20):
    matrix = small_matrix(n=n, seed=seed)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, tuple(range(6)), coords,
                            selection="oracle")
    return sim, matrix, store


class TestGroupCreation:
    def test_members_share_sites(self):
        sim, matrix, store = build_store()
        store.create_group("album", ["img-1", "img-2", "img-3"],
                           initial_sites=[0, 2])
        for key in ("img-1", "img-2", "img-3"):
            assert store.installed_sites(key) == (0, 2)
        assert store.group_members("album") == ("img-1", "img-2", "img-3")
        # The group key also resolves for catalog queries.
        assert store.installed_sites("album") == (0, 2)

    def test_sized_members(self):
        sim, matrix, store = build_store()
        store.create_group("album", {"big": 4.0, "small": 0.5},
                           initial_sites=[0])
        assert store.object("big").size_gb == 4.0
        assert store.object("small").size_gb == 0.5
        # Migration cost model prices the whole group.
        assert store.controller("album").cost_model.object_size_gb == 4.5

    def test_group_key_is_not_an_object(self):
        sim, matrix, store = build_store()
        store.create_group("album", ["img-1"], initial_sites=[0])
        with pytest.raises(KeyError, match="group, not an object"):
            store.object("album")

    def test_empty_group_rejected(self):
        sim, matrix, store = build_store()
        with pytest.raises(ValueError, match="at least one member"):
            store.create_group("album", [], initial_sites=[0])

    def test_duplicate_member_rejected(self):
        sim, matrix, store = build_store()
        store.create_object("img-1", initial_sites=[0])
        with pytest.raises(ValueError, match="already exists"):
            store.create_group("album", ["img-1"], initial_sites=[0])

    def test_duplicate_group_key_rejected(self):
        sim, matrix, store = build_store()
        store.create_group("album", ["img-1"], initial_sites=[0])
        with pytest.raises(ValueError, match="already exists"):
            store.create_group("album", ["img-9"], initial_sites=[0])

    def test_single_object_is_its_own_group(self):
        sim, matrix, store = build_store()
        store.create_object("solo", initial_sites=[1])
        assert store.group_members("solo") == ("solo",)


class TestGroupAccessAndVersions:
    def test_reads_on_any_member_work(self):
        sim, matrix, store = build_store()
        store.create_group("album", ["img-1", "img-2"], initial_sites=[0, 1])
        client = store.add_client(10)
        client.read("img-1")
        client.read("img-2")
        sim.run()
        keys = sorted(r.key for r in store.log.records)
        assert keys == ["img-1", "img-2"]

    def test_member_versions_independent(self):
        sim, matrix, store = build_store()
        store.create_group("album", ["img-1", "img-2"], initial_sites=[0, 1])
        client = store.add_client(10)
        client.write("img-1")
        sim.run()
        assert store.latest_version("img-1") == 1
        assert store.latest_version("img-2") == 0

    def test_accesses_pool_into_one_summary(self):
        sim, matrix, store = build_store()
        store.create_group(
            "album", ["img-1", "img-2"], initial_sites=[0],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8))
        client = store.add_client(10)
        for _ in range(5):
            client.read("img-1")
            client.read("img-2")
        sim.run()
        report = store.run_epoch("album")
        # All 10 accesses (both members) inform the shared summary.
        assert report.accesses == 10


class TestGroupMigration:
    def test_group_migrates_as_one_unit(self):
        sim, matrix, store = build_store()
        store.create_group(
            "album", ["img-1", "img-2"], initial_sites=[5],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8,
                                               radius_floor=2.0),
            policy=MigrationPolicy(min_relative_gain=0.01,
                                   min_absolute_gain_ms=0.1))
        clients = [store.add_client(i) for i in range(10, 16)]
        for _ in range(10):
            for c in clients:
                c.read("img-1")
        sim.run()
        report = store.run_epoch("album")
        sim.run()
        if report.migrated:
            new_sites = store.installed_sites("album")
            # Both members moved together.
            for key in ("img-1", "img-2"):
                assert store.installed_sites(key) == new_sites
                for s in new_sites:
                    assert key in store.servers[s].replicas

    def test_epoch_by_member_key_works(self):
        sim, matrix, store = build_store()
        store.create_group(
            "album", ["img-1"], initial_sites=[0],
            controller_config=ControllerConfig(k=1, max_micro_clusters=8))
        report = store.run_epoch("img-1")
        assert report.accesses == 0
        assert store.epoch_reports("album") == store.epoch_reports("img-1")
