"""Unit tests for repro.sim.gossip (live coordinates in the simulator)."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, median_absolute_error
from repro.coords.metrics import relative_errors
from repro.net.planetlab import small_matrix
from repro.sim import Network, Simulator
from repro.sim.gossip import CoordinateGossip


def build(system="rnp", n=25, seed=0, period=200.0):
    matrix = small_matrix(n=n, seed=seed)
    sim = Simulator(seed=seed)
    network = Network(sim, matrix)
    gossip = CoordinateGossip(network, system=system, period=period)
    return sim, matrix, network, gossip


class TestConstruction:
    def test_unknown_system_rejected(self):
        matrix = small_matrix(n=5, seed=0)
        network = Network(Simulator(), matrix)
        with pytest.raises(ValueError, match="unknown"):
            CoordinateGossip(network, system="tarot")

    def test_needs_two_participants(self):
        matrix = small_matrix(n=5, seed=0)
        network = Network(Simulator(), matrix)
        with pytest.raises(ValueError, match="two participants"):
            CoordinateGossip(network, node_ids=[0])

    def test_defaults_to_all_nodes(self):
        _, matrix, _, gossip = build(n=10)
        assert len(gossip.nodes) == 10


class TestConvergence:
    @pytest.mark.parametrize("system", ["vivaldi", "rnp"])
    def test_coordinates_learn_the_matrix(self, system):
        sim, matrix, network, gossip = build(system=system, n=25)
        sim.run_until(60_000.0)  # 300 rounds at 200 ms
        gossip.stop()
        space = EuclideanSpace(dim=3)  # planar comparison
        coords = gossip.planar_coords()
        rel = relative_errors(matrix, coords, space)
        # Heights are excluded from the planar check, so allow slack;
        # the embedding must still clearly beat a random layout.
        assert np.median(rel) < 0.5

    def test_probes_counted_and_charged(self):
        sim, matrix, network, gossip = build(n=10)
        sim.run_until(1_000.0)
        assert gossip.probes > 0
        assert network.per_kind_bytes.get("coord-probe", 0) > 0

    def test_stop_freezes_coordinates(self):
        sim, matrix, network, gossip = build(n=10)
        sim.run_until(2_000.0)
        gossip.stop()
        frozen = gossip.full_coords().copy()
        sim.run_until(10_000.0)
        assert np.array_equal(frozen, gossip.full_coords())

    def test_full_coords_shape(self):
        sim, matrix, network, gossip = build(n=10)
        sim.run_until(500.0)
        assert gossip.full_coords().shape == (10, 4)  # 3-D + height
        assert gossip.planar_coords().shape == (10, 3)
        assert gossip.coords_of(3).shape == (4,)

    def test_node_join_bootstraps_quickly(self):
        matrix = small_matrix(n=20, seed=3)
        sim = Simulator(seed=3)
        network = Network(sim, matrix)
        gossip = CoordinateGossip(network, node_ids=list(range(19)),
                                  period=200.0)
        sim.run_until(20_000.0)
        gossip.add_node(19, bootstrap_probes=8)
        sim.run_until(21_000.0)  # a few round-trips later
        # The joiner predicts its latencies usefully already.
        errors = []
        for j in range(10):
            predicted = gossip.nodes[19].predicted_rtt(gossip.coords_of(j))
            errors.append(abs(predicted - matrix.latency(19, j)))
        assert np.median(errors) < matrix.median()

    def test_node_join_validation(self):
        sim, matrix, network, gossip = build(n=10)
        with pytest.raises(ValueError, match="already participates"):
            gossip.add_node(0)
        with pytest.raises(ValueError, match="outside"):
            gossip.add_node(99)

    def test_node_leave(self):
        sim, matrix, network, gossip = build(n=10)
        sim.run_until(1_000.0)
        gossip.remove_node(3)
        assert 3 not in gossip.nodes
        # Gossip keeps running without the departed node.
        sim.run_until(3_000.0)
        assert np.all(gossip.planar_coords()[3] == 0)
        with pytest.raises(ValueError, match="does not participate"):
            gossip.remove_node(3)

    def test_cannot_shrink_below_two(self):
        matrix = small_matrix(n=5, seed=0)
        network = Network(Simulator(), matrix)
        gossip = CoordinateGossip(network, node_ids=[0, 1], period=100.0)
        with pytest.raises(ValueError, match="two participants"):
            gossip.remove_node(0)

    def test_in_flight_sample_to_departed_node_dropped(self):
        sim, matrix, network, gossip = build(n=10, period=100.0)
        sim.run_until(500.0)
        # Probes are in flight now; removing a node must not crash the
        # pending _apply_sample events.
        gossip.remove_node(5)
        sim.run_until(2_000.0)

    def test_crashed_nodes_do_not_gossip(self):
        from repro.sim import FailureInjector
        sim, matrix, network, gossip = build(n=10, period=100.0)
        FailureInjector(network).crash_now(4)
        before = gossip.full_coords()[4].copy()
        sim.run_until(5_000.0)
        # The crashed node's coordinate never moved; everyone else's did.
        after = gossip.full_coords()
        assert np.array_equal(after[4], before)
        moved = sum(1 for i in range(10)
                    if i != 4 and not np.array_equal(after[i], before))
        assert moved >= 8

    def test_subset_participation(self):
        matrix = small_matrix(n=10, seed=0)
        sim = Simulator(seed=0)
        network = Network(sim, matrix)
        gossip = CoordinateGossip(network, node_ids=[0, 1, 2], period=100.0)
        sim.run_until(1_000.0)
        coords = gossip.planar_coords()
        # Non-participants stay at the origin.
        assert np.all(coords[5] == 0)
