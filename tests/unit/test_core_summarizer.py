"""Unit tests for repro.core.summarizer."""

import numpy as np
import pytest

from repro.core import ReplicaAccessSummary


class TestRecording:
    def test_accesses_counted(self):
        s = ReplicaAccessSummary(max_micro_clusters=10)
        for i in range(5):
            s.record_access(np.array([float(i), 0.0]), bytes_exchanged=100.0)
        assert s.accesses == 5
        assert s.bytes_served == 500.0

    def test_budget_respected(self):
        s = ReplicaAccessSummary(max_micro_clusters=3, radius_floor=0.1)
        rng = np.random.default_rng(0)
        for _ in range(100):
            s.record_access(rng.uniform(-100, 100, size=2))
        assert len(s) <= 3
        assert s.max_micro_clusters == 3

    def test_rejects_negative_bytes(self):
        s = ReplicaAccessSummary()
        with pytest.raises(ValueError, match="non-negative"):
            s.record_access(np.zeros(2), bytes_exchanged=-1.0)

    def test_reset_clears_everything(self):
        s = ReplicaAccessSummary()
        s.record_access(np.zeros(2))
        s.reset()
        assert s.accesses == 0
        assert s.bytes_served == 0.0
        assert len(s) == 0

    def test_snapshot_independent_of_live_state(self):
        s = ReplicaAccessSummary(radius_floor=10.0)
        s.record_access(np.zeros(2))
        snap = s.snapshot()
        s.record_access(np.array([1.0, 1.0]))
        assert snap[0].count == 1

    def test_wire_size_scales_with_clusters_not_accesses(self):
        s = ReplicaAccessSummary(max_micro_clusters=4, radius_floor=1.0)
        rng = np.random.default_rng(1)
        blobs = np.array([[0.0, 0.0], [1000.0, 0.0]])
        for _ in range(1000):
            b = blobs[rng.integers(0, 2)]
            s.record_access(b + rng.normal(0, 0.1, size=2))
        # Thousands of accesses, but the summary is a handful of clusters.
        assert s.wire_size_bytes() <= 4 * (16 + 2 * 8 * 2)
        assert s.wire_size_bytes() > 0


class TestDecay:
    def test_decay_validation(self):
        with pytest.raises(ValueError, match="decay"):
            ReplicaAccessSummary(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            ReplicaAccessSummary(decay=1.5)

    def test_age_noop_without_decay(self):
        s = ReplicaAccessSummary()
        s.record_access(np.zeros(2))
        s.age()
        assert s.micro_clusters[0].count == 1

    def test_age_scales_statistics_preserving_centroid(self):
        s = ReplicaAccessSummary(decay=0.5, radius_floor=10.0)
        s.record_access(np.array([2.0, 4.0]))
        s.record_access(np.array([4.0, 2.0]))
        before = s.micro_clusters[0].centroid.copy()
        s.age()
        after = s.micro_clusters[0]
        assert np.allclose(after.centroid, before)
        assert after.count == pytest.approx(1.0)

    def test_age_drops_faded_clusters(self):
        s = ReplicaAccessSummary(decay=0.1, radius_floor=1.0)
        s.record_access(np.zeros(2))
        s.age()  # count 0.1
        s.age()  # count 0.01 -> dropped
        assert len(s) == 0
