"""Unit tests for repro.core.controller."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace
from repro.core import (
    ControllerConfig,
    MigrationCostModel,
    MigrationPolicy,
    ReplicationController,
)


def make_controller(**overrides):
    dc_coords = np.array([
        [0.0, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0], [50.0, 50.0],
    ])
    defaults = dict(
        dc_coords=dc_coords,
        initial_sites=[3],
        config=ControllerConfig(k=1, max_micro_clusters=10, radius_floor=2.0),
        policy=MigrationPolicy(min_relative_gain=0.05, min_absolute_gain_ms=1.0),
    )
    defaults.update(overrides)
    return ReplicationController(**defaults)


class TestConstruction:
    def test_initial_sites_validated(self):
        dc = np.zeros((3, 2))
        with pytest.raises(ValueError, match="at least one"):
            ReplicationController(dc, [])
        with pytest.raises(ValueError, match="candidate"):
            ReplicationController(dc, [7])

    def test_duplicate_initial_sites_deduplicated(self):
        dc = np.array([[0.0, 0.0], [1.0, 1.0]])
        ctrl = ReplicationController(dc, [1, 1, 0],
                                     config=ControllerConfig(k=2))
        assert ctrl.sites == (1, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(k=0)
        with pytest.raises(ValueError):
            ControllerConfig(max_micro_clusters=0)
        with pytest.raises(ValueError):
            ControllerConfig(adaptive_k=True, k=5, k_max=3)
        with pytest.raises(ValueError):
            ControllerConfig(adaptive_k=True, demand_low=100, demand_high=50)
        with pytest.raises(ValueError):
            ControllerConfig(summary_decay=0.0)


class TestAccessRecording:
    def test_record_to_unknown_site_rejected(self):
        ctrl = make_controller()
        with pytest.raises(KeyError, match="replica"):
            ctrl.record_access(0, np.zeros(2))

    def test_clustering_coords_strips_height(self):
        space = EuclideanSpace(dim=2, use_height=True)
        coords = np.array([[1.0, 2.0, 5.0], [3.0, 4.0, 6.0]])
        planar = ReplicationController.clustering_coords(coords, space)
        assert planar.shape == (2, 2)
        assert np.allclose(planar, [[1.0, 2.0], [3.0, 4.0]])

    def test_clustering_coords_passthrough_without_height(self):
        space = EuclideanSpace(dim=2)
        coords = np.array([[1.0, 2.0]])
        assert np.allclose(
            ReplicationController.clustering_coords(coords, space), coords)


class TestEpochs:
    def test_migrates_towards_user_population(self):
        ctrl = make_controller()
        assert ctrl.sites == (3,)  # replica starts far from users
        rng = np.random.default_rng(0)
        for _ in range(200):
            ctrl.record_access(3, rng.normal([2.0, 2.0], 1.0))
        report = ctrl.run_epoch(np.random.default_rng(1))
        assert report.migrated
        assert ctrl.sites == (0,)  # nearest DC to the population
        assert report.accesses == 200
        assert report.proposed_predicted_delay < report.current_predicted_delay

    def test_no_migration_when_already_optimal(self):
        ctrl = make_controller(initial_sites=[0])
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(0, rng.normal([2.0, 2.0], 1.0))
        report = ctrl.run_epoch(np.random.default_rng(1))
        assert not report.migrated
        assert ctrl.sites == (0,)

    def test_empty_epoch_is_a_noop(self):
        ctrl = make_controller()
        report = ctrl.run_epoch()
        assert not report.migrated
        assert report.accesses == 0
        assert report.verdict.reason == "no accesses observed"
        assert ctrl.sites == (3,)

    def test_summaries_reset_after_epoch(self):
        ctrl = make_controller(initial_sites=[0])
        ctrl.record_access(0, np.zeros(2))
        ctrl.run_epoch()
        # Summary window rolled over; next epoch sees no accesses.
        report = ctrl.run_epoch()
        assert report.accesses == 0

    def test_migration_callback_fired(self):
        calls = []
        ctrl = make_controller(
            on_migrate=lambda old, new: calls.append((old, new)))
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(3, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch(np.random.default_rng(1))
        assert calls == [((3,), (0,))]

    def test_tally_accumulates(self):
        ctrl = make_controller()
        rng = np.random.default_rng(0)
        for _ in range(50):
            ctrl.record_access(3, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch(np.random.default_rng(1))
        assert ctrl.tally.epochs == 1
        assert ctrl.tally.summary_bytes > 0
        assert ctrl.tally.migrations == 1
        assert ctrl.tally.clustering_seconds > 0

    def test_k2_places_two_sites(self):
        ctrl = make_controller(
            initial_sites=[4, 3],
            config=ControllerConfig(k=2, max_micro_clusters=10, radius_floor=2.0),
        )
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(4, rng.normal([2.0, 2.0], 1.0))
            ctrl.record_access(3, rng.normal([98.0, 98.0], 1.0))
        report = ctrl.run_epoch(np.random.default_rng(1))
        assert report.migrated
        assert sorted(ctrl.sites) == [0, 3]

    def test_decay_mode_keeps_summaries_across_epochs(self):
        ctrl = make_controller(
            initial_sites=[0],
            config=ControllerConfig(k=1, max_micro_clusters=10,
                                    radius_floor=2.0, summary_decay=0.9),
        )
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(0, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch()
        # With decay (not reset), the aged clusters persist.
        assert sum(len(s) for s in ctrl._summaries.values()) > 0


class TestAdaptiveK:
    def make_adaptive(self):
        return make_controller(
            initial_sites=[0],
            config=ControllerConfig(
                k=1, max_micro_clusters=10, radius_floor=2.0,
                adaptive_k=True, k_min=1, k_max=3,
                demand_low=5, demand_high=50,
            ),
            policy=MigrationPolicy(min_relative_gain=0.0,
                                   min_absolute_gain_ms=0.0),
        )

    def test_k_grows_under_demand(self):
        ctrl = self.make_adaptive()
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(0, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch(np.random.default_rng(1))
        assert ctrl.k == 2

    def test_k_shrinks_when_idle(self):
        ctrl = self.make_adaptive()
        ctrl.k = 3
        ctrl.record_access(0, np.array([2.0, 2.0]))
        ctrl.run_epoch(np.random.default_rng(1))
        assert ctrl.k == 2

    def test_k_respects_bounds(self):
        ctrl = self.make_adaptive()
        # Zero accesses: k would shrink but is already at k_min.
        ctrl.run_epoch()
        assert ctrl.k == 1
        ctrl.k = 3
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(0, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch(np.random.default_rng(1))
        assert ctrl.k == 3  # k_max

    def test_notes_record_adaptation(self):
        ctrl = self.make_adaptive()
        rng = np.random.default_rng(0)
        for _ in range(100):
            ctrl.record_access(0, rng.normal([2.0, 2.0], 1.0))
        ctrl.run_epoch(np.random.default_rng(1))
        assert any("k -> 2" in note for note in ctrl.tally.notes)
