"""Edge-case tests across modules: forwarding, sync, metrics, reports."""

import numpy as np
import pytest

from repro.analysis.experiment import FigureResult
from repro.analysis.report import format_figure
from repro.analysis.stats import SeriesPoint, summarize
from repro.coords import (
    EuclideanSpace,
    closest_selection_accuracy,
    embed_matrix,
    selection_penalty_ms,
)
from repro.core import ControllerConfig, ReplicationController
from repro.net import LatencyMatrix
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore


class TestReadForwarding:
    """A request that lands on a server which just dropped its replica."""

    def build(self):
        matrix = small_matrix(n=12, seed=5)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        sim = Simulator(seed=5)
        store = ReplicatedStore(sim, matrix, (0, 1, 2), coords,
                                selection="oracle")
        store.create_object("obj", initial_sites=[0, 1])
        return sim, matrix, store

    def test_forwarded_read_still_completes(self):
        sim, matrix, store = self.build()
        client = store.add_client(6)
        target = store.route_read(6, "obj")[0]
        other = 1 if target == 0 else 0
        client.read("obj")
        # While the request is in flight, the target drops its replica
        # (as a migration retirement would).
        store.servers[target].drop("obj")
        store._unit("obj").installed = {other}
        sim.run()
        assert len(store.log) == 1
        record = store.log.records[0]
        assert record.server == other
        # The forwarded path is strictly longer than the direct one.
        assert record.delay_ms > matrix.latency(6, target) - 1e-9

    def test_read_lost_when_object_fully_retired(self):
        sim, matrix, store = self.build()
        client = store.add_client(6)
        client.read("obj")
        for site in (0, 1):
            store.servers[site].drop("obj")
        store._unit("obj").installed = set()
        sim.run()
        assert len(store.log) == 0  # silently lost (no timeout configured)


class TestControllerSyncSites:
    def make(self):
        dc = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
        return ReplicationController(dc, [0],
                                     config=ControllerConfig(k=1))

    def test_sync_keeps_existing_summaries(self):
        ctrl = self.make()
        ctrl.record_access(0, np.array([1.0, 1.0]))
        ctrl.sync_sites([0, 2])
        assert ctrl.sites == (0, 2)
        assert ctrl._summaries[0].accesses == 1
        assert ctrl._summaries[2].accesses == 0

    def test_sync_drops_removed_sites(self):
        ctrl = self.make()
        ctrl.sync_sites([1])
        with pytest.raises(KeyError):
            ctrl.record_access(0, np.zeros(2))
        ctrl.record_access(1, np.zeros(2))

    def test_sync_validation(self):
        ctrl = self.make()
        with pytest.raises(ValueError, match="empty"):
            ctrl.sync_sites([])
        with pytest.raises(ValueError, match="candidate"):
            ctrl.sync_sites([7])

    def test_sync_deduplicates(self):
        ctrl = self.make()
        ctrl.sync_sites([2, 2, 1])
        assert ctrl.sites == (2, 1)


class TestSelectionMetrics:
    def test_perfect_coords_give_perfect_selection(self):
        # RTT == planar distance: predictions are exact.
        points = np.array([[0.0, 0.0], [30.0, 0.0], [0.0, 40.0],
                           [60.0, 10.0], [15.0, 25.0]])
        diff = points[:, None] - points[None, :]
        matrix = LatencyMatrix(np.linalg.norm(diff, axis=-1))
        space = EuclideanSpace(2)
        acc = closest_selection_accuracy(matrix, points, space,
                                         clients=[3, 4], candidates=[0, 1, 2])
        assert acc == 1.0
        assert selection_penalty_ms(matrix, points, space,
                                    [3, 4], [0, 1, 2]) == pytest.approx(0.0)

    def test_empty_inputs_rejected(self):
        matrix = small_matrix(n=5, seed=0)
        space = EuclideanSpace(2)
        coords = np.zeros((5, 2))
        with pytest.raises(ValueError, match="non-empty"):
            closest_selection_accuracy(matrix, coords, space, [], [0])


class TestReportFormatting:
    def test_non_integer_x_rendered(self):
        series = {
            "a": [SeriesPoint(0.5, summarize([1.0, 2.0])),
                  SeriesPoint(1.5, summarize([3.0]))],
        }
        result = FigureResult("Fig", "x", "y", series)
        text = format_figure(result)
        assert "0.5" in text and "1.5" in text

    def test_precision_control(self):
        series = {"a": [SeriesPoint(1.0, summarize([1.23456]))]}
        result = FigureResult("Fig", "x", "y", series)
        assert "1.235" in format_figure(result, precision=3)

    def test_figure_result_accessors(self):
        series = {"a": [SeriesPoint(1.0, summarize([2.0]))]}
        result = FigureResult("Fig", "x", "y", series)
        assert result.means("a") == [2.0]
        assert result.xs("a") == [1.0]


class TestLatencyMatrixMore:
    def test_two_node_matrix(self):
        m = LatencyMatrix(np.array([[0.0, 5.0], [5.0, 0.0]]))
        assert m.triangle_violation_fraction() == 0.0
        assert m.median() == 5.0

    def test_submatrix_of_submatrix(self):
        m = small_matrix(n=10, seed=1)
        sub = m.submatrix([0, 3, 7]).submatrix([2, 0])
        assert sub.n == 2
        assert sub.latency(0, 1) == m.latency(7, 0)


class TestOnlinePlacementRadiusFloor:
    def test_radius_floor_plumbed_through(self):
        from repro.placement import OnlineClusteringPlacement
        strategy = OnlineClusteringPlacement(micro_clusters=4,
                                             radius_floor=42.0)
        assert strategy.radius_floor == 42.0

    def test_negative_radius_rejected_by_summary(self):
        from repro.core import ReplicaAccessSummary
        with pytest.raises(ValueError):
            ReplicaAccessSummary(radius_floor=-1.0)
