"""Unit tests for placement groups and the canonical keyspace."""

import numpy as np
import pytest

from repro.catalog import PlacementGroups, build_groups, keyspace


class TestKeyspace:
    def test_padded_and_sorted(self):
        keys = keyspace(12)
        assert keys[0] == "obj-000000"
        assert keys[-1] == "obj-000011"
        assert list(keys) == sorted(keys)

    def test_wide_keyspaces_stay_sorted(self):
        keys = keyspace(3, prefix="blob")
        assert keys == ("blob-000000", "blob-000001", "blob-000002")
        big = keyspace(10_000_000)
        assert len(big[0]) == len(big[-1])  # width grows past 6 digits

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one key"):
            keyspace(0)


class TestPlacementGroups:
    def test_singletons(self):
        groups = PlacementGroups.singletons(["b", "a"])
        assert groups.n_groups == 2
        assert groups.n_keys == 2
        assert groups.group_keys == ("a", "b")
        assert groups.members("a") == ("a",)
        assert groups.group_of("b") == "b"

    def test_chunked(self):
        keys = keyspace(7)
        groups = PlacementGroups.chunked(keys, 3)
        assert groups.n_groups == 3
        assert groups.members("grp:obj-000000") == keys[:3]
        assert groups.members("grp:obj-000003") == keys[3:6]
        # The trailing chunk is a singleton, so it is named after its key.
        assert groups.members("obj-000006") == (keys[6],)
        assert set(groups.keys) == set(keys)

    def test_chunked_sorts_its_input(self):
        keys = keyspace(6)
        forward = PlacementGroups.chunked(keys, 2)
        backward = PlacementGroups.chunked(list(reversed(keys)), 2)
        assert forward.groups == backward.groups

    def test_explicit_and_accessors(self):
        groups = PlacementGroups.explicit(
            {"grp:a": ("a", "b"), "c": ("c",)})
        assert groups.group_of("b") == "grp:a"
        assert groups.keys == ("a", "b", "c")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one group"):
            PlacementGroups({})
        with pytest.raises(ValueError, match="no members"):
            PlacementGroups({"g": ()})
        with pytest.raises(ValueError, match="repeats"):
            PlacementGroups({"g": ("a", "a")})
        with pytest.raises(ValueError, match="belongs to both"):
            PlacementGroups({"grp:a": ("a", "b"), "grp:b2": ("b", "c")})
        with pytest.raises(ValueError, match="chunk size"):
            PlacementGroups.chunked(["a"], 0)

    def test_singleton_naming_rule_enforced(self):
        # The degenerate bitwise identity depends on singleton groups
        # creating units keyed by the member itself.
        with pytest.raises(ValueError, match="named after"):
            PlacementGroups({"g": ("a",)})

    def test_group_key_must_not_shadow_another_member(self):
        # A multi-member group named like another group's member would
        # make ``group_of`` ambiguous with the unit keyspace.
        with pytest.raises(ValueError, match="collides"):
            PlacementGroups({"grp:a": ("a", "b"), "b": ("c", "d")})


class TestBuildGroups:
    def test_identical_vectors_group_together(self):
        vectors = {
            "a": [1.0, 0.0],
            "b": [2.0, 0.0],        # same direction as a
            "c": [0.0, 1.0],
        }
        groups = build_groups(vectors)
        assert groups.group_of("a") == "grp:a"
        assert groups.group_of("b") == "grp:a"
        assert groups.group_of("c") == "c"

    def test_zero_vector_stays_singleton(self):
        groups = build_groups({"a": [1.0, 0.0], "z": [0.0, 0.0]})
        assert groups.members("z") == ("z",)

    def test_enumeration_order_irrelevant(self):
        vectors = {f"k{i}": [float(i % 3 == 0), float(i % 3 == 1),
                             float(i % 3 == 2)] for i in range(9)}
        forward = build_groups(dict(sorted(vectors.items())))
        backward = build_groups(dict(sorted(vectors.items(),
                                            reverse=True)))
        assert forward.groups == backward.groups

    def test_similarity_threshold_splits(self):
        a = np.array([1.0, 0.0])
        tilted = np.array([1.0, 0.5]) / np.linalg.norm([1.0, 0.5])
        cos = float(a @ tilted)
        vectors = {"a": a.tolist(), "b": tilted.tolist()}
        merged = build_groups(vectors, similarity=cos - 0.01)
        split = build_groups(vectors, similarity=cos + 0.01)
        assert merged.n_groups == 1
        assert split.n_groups == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            build_groups({})
        with pytest.raises(ValueError, match="similarity"):
            build_groups({"a": [1.0]}, similarity=0.0)
        with pytest.raises(ValueError, match="shape"):
            build_groups({"a": [1.0, 0.0], "b": [1.0]})
