"""Unit tests for server queueing, selection policies, and their
interaction with the consistency layer (quorum reads over delayed
replies)."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import (
    C3Selection,
    ConsistencyConfig,
    DeterministicService,
    LeastPendingSelection,
    LogNormalService,
    NearestSelection,
    QueueingConfig,
    ReplicatedStore,
    ServerQueue,
    make_strategy,
)


def build_store(queueing=None, strategy="nearest", consistency=None,
                timeout=None, seed=0, n=20):
    matrix = small_matrix(n=n, seed=seed)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, tuple(range(5)), coords,
                            selection="oracle", queueing=queueing,
                            strategy=strategy, consistency=consistency,
                            read_timeout_ms=timeout)
    return sim, matrix, store


class TestServiceModels:
    def test_deterministic_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            DeterministicService(-1.0)
        with pytest.raises(ValueError, match="finite"):
            DeterministicService(float("inf"))

    def test_deterministic_zero_is_inactive(self):
        assert not DeterministicService(0.0).active
        assert DeterministicService(0.5).active

    def test_deterministic_draws_no_randomness(self):
        sim = Simulator(seed=1)
        model = DeterministicService(3.0)
        state_before = sim.rng("service").bit_generator.state
        assert model.draw(sim) == 3.0
        assert list(model.draw_block(sim, 4)) == [3.0] * 4
        assert sim.rng("service").bit_generator.state == state_before

    def test_lognormal_validation(self):
        with pytest.raises(ValueError, match="median"):
            LogNormalService(0.0)
        with pytest.raises(ValueError, match="sigma"):
            LogNormalService(1.0, sigma=-0.1)

    def test_lognormal_block_is_rng_exact_with_scalar_draws(self):
        """draw_block(n) consumes the stream as n draw() calls would."""
        model = LogNormalService(5.0, sigma=0.7)
        sim_scalar, sim_block = Simulator(seed=9), Simulator(seed=9)
        scalars = [model.draw(sim_scalar) for _ in range(6)]
        block = model.draw_block(sim_block, 6)
        assert scalars == list(block)
        assert (sim_scalar.rng("service").bit_generator.state
                == sim_block.rng("service").bit_generator.state)


class TestServerQueue:
    def test_idle_server_serves_immediately(self):
        queue = ServerQueue()
        assert queue.admit(10.0, 3.0) == 13.0
        assert queue.busy_until == 13.0

    def test_lindley_recursion_backlogs(self):
        queue = ServerQueue()
        assert queue.admit(0.0, 5.0) == 5.0
        assert queue.admit(1.0, 5.0) == 10.0   # waits 4 behind the first
        assert queue.admit(20.0, 5.0) == 25.0  # idle gap resets the queue

    def test_capacity_rejects_and_counts(self):
        queue = ServerQueue()
        assert queue.admit(0.0, 10.0, capacity=1) == 10.0
        assert queue.admit(1.0, 10.0, capacity=1) is None
        assert queue.admit(10.5, 10.0, capacity=1) == 20.5
        assert (queue.offered, queue.accepted, queue.rejected) == (3, 2, 1)

    def test_depth_tracks_departures(self):
        queue = ServerQueue()
        queue.admit(0.0, 4.0, capacity=10)
        queue.admit(0.0, 4.0, capacity=10)
        assert queue.depth(1.0) == 2
        assert queue.depth(4.5) == 1
        assert queue.depth(9.0) == 0


class TestQueueingConfig:
    def test_inactive_configurations(self):
        assert not QueueingConfig().active
        assert not QueueingConfig(DeterministicService(0.0)).active
        assert QueueingConfig(DeterministicService(1.0)).active
        assert QueueingConfig(queue_capacity=3).active

    def test_validation(self):
        with pytest.raises(ValueError, match="ServiceModel"):
            QueueingConfig(service=3.0)
        with pytest.raises(ValueError, match="at least 1"):
            QueueingConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="integer"):
            QueueingConfig(queue_capacity=True)

    def test_from_params(self):
        assert QueueingConfig.from_params() is None
        with pytest.raises(ValueError, match="unknown service model"):
            QueueingConfig.from_params(service_model="gamma")
        with pytest.raises(ValueError, match="needs a service model"):
            QueueingConfig.from_params(service_ms=2.0)
        config = QueueingConfig.from_params("deterministic", 2.0)
        assert isinstance(config.service, DeterministicService)
        config = QueueingConfig.from_params("lognormal", 4.0,
                                            service_sigma=0.3,
                                            queue_capacity=8)
        assert isinstance(config.service, LogNormalService)
        assert config.queue_capacity == 8
        capacity_only = QueueingConfig.from_params(queue_capacity=2)
        assert capacity_only.service is None and capacity_only.active

    def test_sample_service_defaults_to_zero(self):
        sim = Simulator()
        config = QueueingConfig()
        assert config.sample_service(sim) == 0.0
        assert list(config.sample_service_block(sim, 3)) == [0.0] * 3


class TestMakeStrategy:
    def test_aliases(self):
        assert isinstance(make_strategy(None), NearestSelection)
        assert isinstance(make_strategy("nearest"), NearestSelection)
        assert isinstance(make_strategy("least-pending"),
                          LeastPendingSelection)
        assert isinstance(make_strategy("c3"), C3Selection)
        custom = LeastPendingSelection()
        assert make_strategy(custom) is custom

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown selection strategy"):
            make_strategy("fastest")

    def test_store_validates_strategy(self):
        with pytest.raises(ValueError, match="unknown selection strategy"):
            build_store(strategy="fastest")


class TestQueuedReads:
    def test_read_delay_includes_service_time(self):
        queueing = QueueingConfig(DeterministicService(7.0))
        sim, matrix, store = build_store(queueing=queueing)
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.read("obj")
        sim.run()
        record = store.log.records[0]
        assert record.delay_ms == pytest.approx(
            matrix.latency(10, 0) + 7.0)
        assert store.queue_stats() == {"offered": 1, "accepted": 1,
                                       "rejected": 0}

    def test_back_to_back_reads_wait_in_fifo_order(self):
        queueing = QueueingConfig(DeterministicService(7.0))
        sim, matrix, store = build_store(queueing=queueing)
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.read("obj")
        client.read("obj")
        sim.run()
        first, second = [r.delay_ms for r in store.log.records]
        rtt = matrix.latency(10, 0)
        assert first == pytest.approx(rtt + 7.0)
        assert second == pytest.approx(rtt + 14.0)

    def test_writes_bypass_the_queue(self):
        queueing = QueueingConfig(DeterministicService(50.0))
        sim, matrix, store = build_store(queueing=queueing)
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        client.write("obj")
        sim.run()
        record = store.log.records[0]
        assert record.kind == "write"
        assert record.delay_ms == pytest.approx(matrix.latency(10, 0))
        assert store.queue_stats()["offered"] == 0

    def test_full_queue_drops_reads_and_counts_rejections(self):
        queueing = QueueingConfig(DeterministicService(100.0),
                                  queue_capacity=1)
        sim, matrix, store = build_store(queueing=queueing)
        store.create_object("obj", initial_sites=[0])
        client = store.add_client(10)
        for _ in range(3):
            client.read("obj")
        sim.run()
        assert store.queue_rejections == 2
        assert store.queue_stats() == {"offered": 3, "accepted": 1,
                                       "rejected": 2}
        assert len(store.log) == 1  # no timeout configured: drops vanish


class TestConsistencyWithQueueing:
    """ConsistencyConfig x queued reads: the pinned semantics.

    A queued read's reply carries the version snapshotted at
    *admission*: a write that commits while the read is waiting in the
    queue is invisible to it.  Staleness is still judged against the
    latest version at *issue* time, so the delayed read is not marked
    stale by writes that happen after it was sent.
    """

    def test_quorum_read_waits_for_slowest_queued_leg(self):
        queueing = QueueingConfig(DeterministicService(9.0))
        sim, matrix, store = build_store(
            queueing=queueing,
            consistency=ConsistencyConfig(read_quorum=2))
        store.create_object("obj", initial_sites=[0, 1])
        client = store.add_client(10)
        client.read("obj")
        sim.run()
        record = store.log.records[0]
        expected = max(matrix.latency(10, 0), matrix.latency(10, 1)) + 9.0
        assert record.delay_ms == pytest.approx(expected)
        assert store.queue_stats()["accepted"] == 2

    def test_write_during_queue_wait_is_invisible_to_the_read(self):
        queueing = QueueingConfig(DeterministicService(1_000.0))
        sim, matrix, store = build_store(
            queueing=queueing,
            consistency=ConsistencyConfig(read_quorum=2))
        store.create_object("obj", initial_sites=[0, 1])
        reader = store.add_client(10)
        writer = store.add_client(11)
        # Both read legs are admitted one leg-trip after issue; fire the
        # write strictly after the later admission but long before the
        # 1 s service completes, so it lands mid-queue-wait at both
        # servers (write trip + propagation is bounded by two RTTs).
        admitted = max(matrix.latency(10, 0), matrix.latency(10, 1)) / 2
        write_path = (max(matrix.latency(11, 0), matrix.latency(11, 1))
                      + matrix.latency(0, 1))
        assert 5.0 + write_path < 1_000.0
        sim.schedule_at(0.0, reader.read, "obj")
        sim.schedule_at(admitted + 5.0, writer.write, "obj")
        sim.schedule_at(3_000.0, reader.read, "obj")
        sim.run()
        reads = [r for r in store.log.records if r.kind == "read"]
        assert [r.version for r in reads] == [0, 1]
        assert [r.stale for r in reads] == [False, False]
