"""Unit tests for the :mod:`repro.kernels` layer.

Covers the backend switch API, python-vs-numpy equality of every kernel,
eligibility masking, the batched CF maintenance kernel against the
sequential reference, the pairwise-distance cache, and the deterministic
empty-cluster reseed regression.
"""

import pickle
import random

import numpy as np
import pytest

from repro import kernels
from repro.clustering.kmeans import weighted_kmeans
from repro.clustering.stream import ClusterFeature, OnlineClusterer
from repro.coords.space import EuclideanSpace
from repro.kernels import cf as cfk
from repro.kernels import wkmeans as wk
from repro.kernels.distcache import PairwiseDistanceCache


# ----------------------------------------------------------------------
# Backend switch API
# ----------------------------------------------------------------------
class TestBackendSwitch:
    def test_default_backend_is_valid(self):
        assert kernels.get_backend() in kernels.BACKENDS

    def test_set_backend_roundtrip(self):
        original = kernels.get_backend()
        try:
            kernels.set_backend("python")
            assert kernels.get_backend() == "python"
            kernels.set_backend("numpy")
            assert kernels.get_backend() == "numpy"
        finally:
            kernels.set_backend(original)

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_use_backend_restores_on_exit(self):
        original = kernels.get_backend()
        other = "python" if original == "numpy" else "numpy"
        with kernels.use_backend(other):
            assert kernels.get_backend() == other
        assert kernels.get_backend() == original

    def test_use_backend_restores_on_error(self):
        original = kernels.get_backend()
        other = "python" if original == "numpy" else "numpy"
        with pytest.raises(RuntimeError):
            with kernels.use_backend(other):
                raise RuntimeError("boom")
        assert kernels.get_backend() == original

    def test_resolve_backend(self):
        assert kernels.resolve_backend(None) == kernels.get_backend()
        assert kernels.resolve_backend("python") == "python"
        with pytest.raises(ValueError):
            kernels.resolve_backend("cuda")


# ----------------------------------------------------------------------
# Weighted k-means kernels: python == numpy
# ----------------------------------------------------------------------
@pytest.fixture
def cloud():
    rng = np.random.default_rng(7)
    points = rng.normal(size=(60, 3)) * 40.0
    centers = rng.normal(size=(5, 3)) * 40.0
    weights = rng.uniform(0.5, 3.0, size=60)
    return points, centers, weights


class TestWKMeansKernels:
    def test_sq_distances_backends_agree(self, cloud):
        points, centers, _ = cloud
        a = wk.sq_distances(points, centers, backend="numpy")
        b = wk.sq_distances(points, centers, backend="python")
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    def test_assign_labels_backends_agree(self, cloud):
        points, centers, _ = cloud
        sq = wk.sq_distances(points, centers, backend="numpy")
        a = wk.assign_labels(sq, backend="numpy")
        b = wk.assign_labels(sq, backend="python")
        np.testing.assert_array_equal(a, b)

    def test_assign_labels_first_minimum_tie_rule(self):
        # Two identical centroids: every point must go to index 0.
        sq = np.array([[2.0, 2.0, 5.0], [1.0, 1.0, 1.0]])
        for backend in kernels.BACKENDS:
            labels = wk.assign_labels(sq, backend=backend)
            np.testing.assert_array_equal(labels, [0, 0])

    def test_assign_labels_eligibility_mask(self, cloud):
        points, centers, _ = cloud
        sq = wk.sq_distances(points, centers, backend="numpy")
        eligible = np.array([False, True, False, True, True])
        for backend in kernels.BACKENDS:
            labels = wk.assign_labels(sq, eligible=eligible, backend=backend)
            assert set(np.unique(labels)) <= {1, 3, 4}
        masked = np.where(eligible[None, :], sq, np.inf)
        np.testing.assert_array_equal(
            wk.assign_labels(sq, eligible=eligible, backend="numpy"),
            np.argmin(masked, axis=1))

    def test_assign_labels_all_ineligible_raises(self):
        sq = np.ones((3, 2))
        for backend in kernels.BACKENDS:
            with pytest.raises(ValueError, match="eligible"):
                wk.assign_labels(sq, eligible=np.zeros(2, dtype=bool),
                                 backend=backend)

    def test_assignment_costs_backends_agree(self, cloud):
        points, centers, weights = cloud
        sq = wk.sq_distances(points, centers, backend="numpy")
        labels = wk.assign_labels(sq, backend="numpy")
        a = wk.assignment_costs(sq, labels, weights, backend="numpy")
        b = wk.assignment_costs(sq, labels, weights, backend="python")
        np.testing.assert_allclose(a, b, rtol=0, atol=0)

    def test_update_centroids_backends_agree(self, cloud):
        points, centers, weights = cloud
        sq = wk.sq_distances(points, centers, backend="numpy")
        labels = wk.assign_labels(sq, backend="numpy")
        costs = wk.assignment_costs(sq, labels, weights, backend="numpy")
        a = wk.update_centroids(points, labels, weights, centers, costs,
                                backend="numpy")
        b = wk.update_centroids(points, labels, weights, centers, costs,
                                backend="python")
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)

    def test_update_centroids_empty_cluster_reseeds_at_costliest(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 9.0]])
        weights = np.ones(3)
        centers = np.array([[0.0, 0.0], [100.0, 100.0]])
        labels = np.array([0, 0, 0])  # cluster 1 empty
        costs = np.array([0.0, 100.0, 81.0])
        for backend in kernels.BACKENDS:
            new = wk.update_centroids(points, labels, weights, centers,
                                      costs, backend=backend)
            np.testing.assert_array_equal(new[1], points[1])

    def test_cross_distances_backends_agree(self, cloud):
        points, centers, _ = cloud
        heights = np.abs(np.random.default_rng(1).normal(size=5))
        a = wk.cross_distances(points, centers, b_heights=heights,
                               backend="numpy")
        b = wk.cross_distances(points, centers, b_heights=heights,
                               backend="python")
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)

    def test_pairwise_distances_backends_agree(self, cloud):
        points, _, _ = cloud
        heights = np.abs(points[:, 0]) * 0.1
        a = wk.pairwise_distances(points, heights=heights, backend="numpy")
        b = wk.pairwise_distances(points, heights=heights, backend="python")
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)
        np.testing.assert_array_equal(np.diag(a), np.zeros(len(points)))


# ----------------------------------------------------------------------
# CF kernels
# ----------------------------------------------------------------------
class TestCFKernels:
    def test_deviations_clamps_negative_variance(self):
        # Rounding can push sum2 slightly below n*mean^2.
        counts = np.array([4.0])
        linear = np.array([[8.0, 8.0]])
        square = np.array([[15.999999999, 16.0]])
        dev = cfk.deviations(counts, linear, square)
        assert dev.shape == (1,)
        assert dev[0] >= 0.0

    def test_absorb_stream_matches_sequential_add(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(200, 2)) * 30.0
        weights = rng.uniform(0.5, 2.0, size=200)

        for backend in kernels.BACKENDS:
            reference = OnlineClusterer(8, radius_floor=5.0, backend=backend)
            for p, w in zip(points, weights):
                reference.add(p, weight=float(w))
            batched = OnlineClusterer(8, radius_floor=5.0, backend=backend)
            batched.extend(points, weights)

            assert len(batched) == len(reference)
            for got, want in zip(batched.clusters, reference.clusters):
                assert got.count == want.count
                np.testing.assert_array_equal(got.linear_sum, want.linear_sum)
                np.testing.assert_array_equal(got.square_sum, want.square_sum)
                assert got.weight == want.weight

    def test_absorb_stream_backends_bitwise_identical(self):
        rng = np.random.default_rng(11)
        points = rng.normal(size=(150, 3)) * 25.0
        weights = rng.uniform(0.1, 4.0, size=150)
        results = {}
        for backend in kernels.BACKENDS:
            cl = OnlineClusterer(6, radius_floor=5.0, backend=backend)
            cl.extend(points, weights)
            results[backend] = [(c.count, c.weight, c.linear_sum.copy(),
                                 c.square_sum.copy()) for c in cl.clusters]
        assert len(results["numpy"]) == len(results["python"])
        for a, b in zip(results["numpy"], results["python"]):
            assert a[0] == b[0] and a[1] == b[1]
            np.testing.assert_array_equal(a[2], b[2])
            np.testing.assert_array_equal(a[3], b[3])

    def test_absorb_stream_respects_budget(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(-500, 500, size=(100, 2))
        for backend in kernels.BACKENDS:
            cl = OnlineClusterer(4, radius_floor=1.0, backend=backend)
            cl.extend(points)
            assert len(cl) <= 4

    def test_absorb_stream_stats(self):
        counts, weights, linear, square, stats = cfk.absorb_stream(
            np.zeros(0), np.zeros(0), np.zeros((0, 2)), np.zeros((0, 2)),
            points=np.array([[0.0, 0.0], [0.1, 0.0], [500.0, 0.0]]),
            point_weights=np.ones(3), radius_floor=5.0, max_clusters=4,
            backend="numpy")
        assert stats["spawned"] == 2
        assert stats["absorbed"] == 1
        assert stats["merged"] == 0
        assert counts.shape == (2,)

    def test_split_row_conserves_exactly(self):
        cf = ClusterFeature.from_point(np.array([3.0, -2.0]), weight=2.0)
        cf.absorb(np.array([5.0, 1.0]), weight=1.5)
        cf.absorb(np.array([4.0, 0.5]), weight=0.5)
        first, second = cf.split()
        assert first.count + second.count == cf.count
        assert first.weight + second.weight == cf.weight
        np.testing.assert_array_equal(
            first.linear_sum + second.linear_sum, cf.linear_sum)
        assert np.all(first.square_sum >= 0)
        assert np.all(second.square_sum >= 0)

    def test_closest_pair_backends_agree(self):
        rng = np.random.default_rng(9)
        centroids = rng.normal(size=(10, 3))
        assert (cfk.closest_pair(centroids, backend="numpy")
                == cfk.closest_pair(centroids, backend="python"))

    def test_closest_pair_tie_rule(self):
        # (0,1) and (2,3) equally close: row-major first wins.
        centroids = np.array([[0.0, 0.0], [1.0, 0.0],
                              [10.0, 0.0], [11.0, 0.0]])
        for backend in kernels.BACKENDS:
            assert cfk.closest_pair(centroids, backend=backend) == (0, 1)


# ----------------------------------------------------------------------
# Pairwise distance cache
# ----------------------------------------------------------------------
class TestDistanceCache:
    def test_hit_and_miss_counting(self):
        cache = PairwiseDistanceCache()
        coords = np.arange(12.0).reshape(4, 3)
        calls = []

        def compute():
            calls.append(1)
            return np.ones((4, 4))

        first = cache.lookup((coords,), compute)
        second = cache.lookup((coords,), compute)
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 1
        np.testing.assert_array_equal(first, second)

    def test_returns_defensive_copies(self):
        cache = PairwiseDistanceCache()
        coords = np.ones((3, 2))
        out = cache.lookup((coords,), lambda: np.zeros((3, 3)))
        out[0, 0] = 99.0
        again = cache.lookup((coords,), lambda: np.zeros((3, 3)))
        assert again[0, 0] == 0.0

    def test_content_key_detects_mutation(self):
        cache = PairwiseDistanceCache()
        coords = np.ones((3, 2))
        cache.lookup((coords,), lambda: np.zeros((3, 3)))
        coords[0, 0] = 2.0  # same object, new contents → new key
        cache.lookup((coords,), lambda: np.full((3, 3), 7.0))
        assert cache.misses == 2 and cache.hits == 0

    def test_invalidate_clears_and_bumps_version(self):
        cache = PairwiseDistanceCache()
        coords = np.ones((2, 2))
        cache.lookup((coords,), lambda: np.zeros((2, 2)))
        v = cache.version
        cache.invalidate()
        assert cache.version == v + 1
        cache.lookup((coords,), lambda: np.zeros((2, 2)))
        assert cache.misses == 2

    def test_fifo_eviction(self):
        cache = PairwiseDistanceCache(maxsize=2)
        arrays = [np.full((2, 2), float(i)) for i in range(3)]
        for arr in arrays:
            cache.lookup((arr,), lambda a=arr: a * 10)
        # First entry evicted; re-looking it up is a miss.
        cache.lookup((arrays[0],), lambda: arrays[0] * 10)
        assert cache.misses == 4

    def test_space_invalidation_hooks(self):
        space = EuclideanSpace(dim=2, use_height=False)
        coords = np.random.default_rng(0).normal(size=(6, 2))
        space.pairwise_distances(coords)
        space.pairwise_distances(coords)
        assert space.cache.hits == 1
        space.invalidate_cache()
        space.pairwise_distances(coords)
        assert space.cache.misses == 2

    def test_space_survives_pickle_without_cache(self):
        space = EuclideanSpace(dim=3, use_height=True)
        coords = np.random.default_rng(0).normal(size=(4, 4))
        space.pairwise_distances(coords)
        clone = pickle.loads(pickle.dumps(space))
        assert clone.cache.hits == 0 and clone.cache.misses == 0
        np.testing.assert_array_equal(clone.pairwise_distances(coords),
                                      space.pairwise_distances(coords))


# ----------------------------------------------------------------------
# Deterministic empty-cluster reseed (satellite regression)
# ----------------------------------------------------------------------
class TestEmptyClusterDeterminism:
    def _tight_pairs(self):
        # k=3 over two tight pairs: one cluster goes empty mid-Lloyd
        # under many inits, exercising the reseed path.
        rng = np.random.default_rng(2)
        a = rng.normal(loc=0.0, scale=0.01, size=(6, 2))
        b = rng.normal(loc=100.0, scale=0.01, size=(6, 2))
        return np.vstack([a, b])

    def test_reseed_is_deterministic_per_seed(self):
        points = self._tight_pairs()
        for backend in kernels.BACKENDS:
            first = weighted_kmeans(points, 3,
                                    rng=np.random.default_rng(42),
                                    backend=backend)
            second = weighted_kmeans(points, 3,
                                     rng=np.random.default_rng(42),
                                     backend=backend)
            np.testing.assert_array_equal(first.centroids, second.centroids)
            np.testing.assert_array_equal(first.labels, second.labels)

    def test_reseed_ignores_global_rng_state(self):
        points = self._tight_pairs()
        results = []
        for salt in (0, 12345):
            random.seed(salt)
            np.random.seed(salt)
            results.append(weighted_kmeans(points, 3,
                                           rng=np.random.default_rng(7),
                                           backend="python"))
        np.testing.assert_array_equal(results[0].centroids,
                                      results[1].centroids)
        np.testing.assert_array_equal(results[0].labels, results[1].labels)
