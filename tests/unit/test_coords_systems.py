"""Unit tests for Vivaldi, RNP, GNP and the batch embedding driver."""

import numpy as np
import pytest

from repro.coords import (
    EuclideanSpace,
    RNPNode,
    VivaldiNode,
    classical_mds,
    embed_landmarks,
    embed_matrix,
    gnp_embed,
    median_absolute_error,
    place_with_landmarks,
    relative_errors,
    stress,
)
from repro.net import LatencyMatrix
from repro.net.planetlab import small_matrix


def grid_matrix(side=4, spacing=20.0):
    """A perfectly embeddable matrix: RTT = 2-D grid distance."""
    points = np.array([
        [i * spacing, j * spacing] for i in range(side) for j in range(side)
    ], dtype=float)
    diff = points[:, None, :] - points[None, :, :]
    rtt = np.linalg.norm(diff, axis=-1)
    # Avoid zero off-diagonal RTTs (grid points are distinct, so fine).
    return LatencyMatrix(rtt)


class TestVivaldiNode:
    def test_rejects_bad_constants(self):
        space = EuclideanSpace(2)
        with pytest.raises(ValueError):
            VivaldiNode(space, cc=0.0)
        with pytest.raises(ValueError):
            VivaldiNode(space, ce=1.5)

    def test_rejects_nonpositive_rtt(self):
        node = VivaldiNode(EuclideanSpace(2))
        with pytest.raises(ValueError, match="RTT"):
            node.update(np.zeros(2), 1.0, 0.0)

    def test_error_decreases_with_consistent_measurements(self):
        space = EuclideanSpace(2)
        rng = np.random.default_rng(0)
        node = VivaldiNode(space, rng=rng)
        anchor = np.array([30.0, 0.0])
        for _ in range(100):
            node.update(anchor, 0.2, 30.0)
        assert node.error < 0.5
        assert node.updates == 100

    def test_converges_to_correct_distance(self):
        space = EuclideanSpace(2)
        rng = np.random.default_rng(1)
        node = VivaldiNode(space, rng=rng)
        anchor = np.array([10.0, 10.0])
        for _ in range(300):
            node.update(anchor, 0.05, 25.0)
        assert node.predicted_rtt(anchor) == pytest.approx(25.0, rel=0.05)

    def test_height_stays_nonnegative(self):
        space = EuclideanSpace(2, use_height=True)
        rng = np.random.default_rng(2)
        node = VivaldiNode(space, rng=rng)
        for i in range(50):
            anchor = space.random_point(rng, 20)
            node.update(anchor, 0.5, 10.0 + i % 7)
            assert node.coords[-1] >= 0


class TestRNPNode:
    def test_parameter_validation(self):
        space = EuclideanSpace(2)
        with pytest.raises(ValueError, match="window"):
            RNPNode(space, window=1)
        with pytest.raises(ValueError, match="interval"):
            RNPNode(space, refit_interval=0)
        with pytest.raises(ValueError, match="half life"):
            RNPNode(space, recency_half_life=0)

    def test_rejects_nonpositive_rtt(self):
        node = RNPNode(EuclideanSpace(2))
        with pytest.raises(ValueError, match="RTT"):
            node.update(np.zeros(2), 1.0, -5.0)

    def test_update_counts(self):
        space = EuclideanSpace(2)
        node = RNPNode(space, rng=np.random.default_rng(0))
        for _ in range(10):
            node.update(np.array([10.0, 0.0]), 0.5, 12.0)
        assert node.updates == 10

    def test_refit_fits_anchors(self):
        # Three fixed anchors with consistent RTTs: RNP should position
        # the node so predictions are accurate.
        space = EuclideanSpace(2)
        rng = np.random.default_rng(3)
        node = RNPNode(space, refit_interval=4, rng=rng)
        anchors = [np.array([100.0, 0.0]), np.array([0.0, 100.0]),
                   np.array([-100.0, 0.0])]
        true_pos = np.array([20.0, 10.0])
        for i in range(200):
            a = anchors[i % 3]
            rtt = float(np.linalg.norm(true_pos - a))
            node.update(a, 0.1, rtt)
        for a in anchors:
            true_rtt = float(np.linalg.norm(true_pos - a))
            assert node.predicted_rtt(a) == pytest.approx(true_rtt, rel=0.1)


class TestGNP:
    def test_landmark_embedding_accuracy_on_embeddable_matrix(self):
        matrix = grid_matrix(side=3, spacing=30.0)
        space = EuclideanSpace(2)
        coords = embed_landmarks(matrix.rtt, space, np.random.default_rng(0))
        pred = space.pairwise_distances(coords)
        iu = np.triu_indices(matrix.n, 1)
        rel = np.abs(pred[iu] - matrix.rtt[iu]) / matrix.rtt[iu]
        assert np.median(rel) < 0.15

    def test_requires_enough_landmarks(self):
        space = EuclideanSpace(5)
        with pytest.raises(ValueError, match="landmarks"):
            embed_landmarks(np.zeros((3, 3)), space)

    def test_place_with_landmarks_positions_node(self):
        space = EuclideanSpace(2)
        landmarks = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0]])
        true = np.array([30.0, 40.0])
        rtts = np.linalg.norm(landmarks - true, axis=1)
        placed = place_with_landmarks(landmarks, rtts, space,
                                      np.random.default_rng(0))
        assert np.linalg.norm(placed - true) < 10.0

    def test_place_rejects_mismatched_inputs(self):
        space = EuclideanSpace(2)
        with pytest.raises(ValueError, match="per landmark"):
            place_with_landmarks(np.zeros((3, 2)), np.zeros(2), space)

    def test_gnp_embed_full_matrix(self):
        matrix = grid_matrix(side=4, spacing=25.0)
        space = EuclideanSpace(2)
        coords = gnp_embed(matrix.rtt, space, n_landmarks=6,
                           rng=np.random.default_rng(1))
        assert coords.shape == (matrix.n, 2)
        err = median_absolute_error(matrix, coords, space)
        assert err < 10.0


class TestClassicalMDS:
    def test_perfect_recovery_of_euclidean_matrix(self):
        matrix = grid_matrix(side=4, spacing=10.0)
        coords = classical_mds(matrix.rtt, dim=2)
        space = EuclideanSpace(2)
        assert stress(matrix, coords, space) < 1e-6

    def test_dim_bound(self):
        with pytest.raises(ValueError, match="dim"):
            classical_mds(np.zeros((3, 3)), dim=3)


class TestEmbedMatrix:
    @pytest.mark.parametrize("system", ["vivaldi", "rnp"])
    def test_decentralized_systems_reach_reasonable_accuracy(self, system):
        matrix = small_matrix(n=40, seed=2)
        result = embed_matrix(matrix, system=system, rounds=80,
                              rng=np.random.default_rng(0))
        rel = relative_errors(matrix, result.coords, result.space)
        assert np.median(rel) < 0.35
        assert result.system == system
        assert result.coords.shape == (40, result.space.vector_size)

    def test_rnp_beats_vivaldi(self):
        matrix = small_matrix(n=40, seed=4)
        errs = {}
        for system in ("vivaldi", "rnp"):
            result = embed_matrix(matrix, system=system, rounds=60,
                                  rng=np.random.default_rng(7))
            errs[system] = median_absolute_error(matrix, result.coords,
                                                 result.space)
        assert errs["rnp"] <= errs["vivaldi"] * 1.05

    def test_mds_embedding(self):
        matrix = small_matrix(n=20, seed=2)
        result = embed_matrix(matrix, system="mds")
        assert result.system == "mds"
        assert result.coords.shape == (20, 3)

    def test_mds_rejects_height_space(self):
        matrix = small_matrix(n=10, seed=2)
        with pytest.raises(ValueError, match="height"):
            embed_matrix(matrix, system="mds",
                         space=EuclideanSpace(2, use_height=True))

    def test_unknown_system_rejected(self):
        matrix = small_matrix(n=10, seed=2)
        with pytest.raises(ValueError, match="unknown"):
            embed_matrix(matrix, system="astrology")

    def test_stability_tracked_for_decentralized_systems(self):
        matrix = small_matrix(n=25, seed=5)
        result = embed_matrix(matrix, system="vivaldi", rounds=60,
                              rng=np.random.default_rng(0))
        assert result.stability_ms_per_round is not None
        assert result.stability_ms_per_round >= 0.0

    def test_stability_none_for_batch_systems(self):
        matrix = small_matrix(n=15, seed=5)
        assert embed_matrix(matrix, system="mds").stability_ms_per_round is None

    def test_rnp_at_least_as_stable_as_vivaldi(self):
        matrix = small_matrix(n=30, seed=6)
        stab = {}
        for system in ("vivaldi", "rnp"):
            result = embed_matrix(matrix, system=system, rounds=120,
                                  rng=np.random.default_rng(2))
            stab[system] = result.stability_ms_per_round
        assert stab["rnp"] <= stab["vivaldi"] * 1.10

    def test_predicted_matrix_shape(self):
        matrix = small_matrix(n=12, seed=2)
        result = embed_matrix(matrix, system="vivaldi", rounds=10,
                              rng=np.random.default_rng(0))
        pred = result.predicted_matrix()
        assert pred.shape == (12, 12)
        assert np.all(np.diag(pred) == 0)
