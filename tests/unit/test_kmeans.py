"""Unit tests for repro.clustering.kmeans."""

import numpy as np
import pytest

from repro.clustering import KMeansResult, kmeans_pp_init, weighted_kmeans


def three_blobs(rng, n_per=30, spread=0.5):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate([
        c + rng.normal(0, spread, size=(n_per, 2)) for c in centers
    ])
    return points, centers


class TestInit:
    def test_returns_k_centers(self):
        rng = np.random.default_rng(0)
        points, _ = three_blobs(rng)
        centers = kmeans_pp_init(points, 3, rng)
        assert centers.shape == (3, 2)

    def test_rejects_bad_k(self):
        rng = np.random.default_rng(0)
        points = np.zeros((5, 2))
        with pytest.raises(ValueError, match="k must be"):
            kmeans_pp_init(points, 0, rng)
        with pytest.raises(ValueError, match="k must be"):
            kmeans_pp_init(points, 6, rng)

    def test_rejects_bad_weights(self):
        rng = np.random.default_rng(0)
        points = np.zeros((4, 2))
        with pytest.raises(ValueError, match="weights"):
            kmeans_pp_init(points, 2, rng, weights=np.array([1.0, -1.0, 1.0, 1.0]))
        with pytest.raises(ValueError, match="weights"):
            kmeans_pp_init(points, 2, rng, weights=np.zeros(4))

    def test_duplicate_points_handled(self):
        rng = np.random.default_rng(0)
        points = np.zeros((10, 2))
        centers = kmeans_pp_init(points, 3, rng)
        assert centers.shape == (3, 2)
        assert np.all(centers == 0)

    def test_heavy_point_usually_seeds_first(self):
        rng = np.random.default_rng(0)
        points = np.array([[0.0, 0.0], [100.0, 100.0]])
        weights = np.array([1e-9, 1.0])
        hits = 0
        for _ in range(20):
            centers = kmeans_pp_init(points, 1, rng, weights)
            if np.allclose(centers[0], [100.0, 100.0]):
                hits += 1
        assert hits >= 19


class TestWeightedKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(1)
        points, true_centers = three_blobs(rng)
        result = weighted_kmeans(points, 3, rng=rng)
        # Each true center should have a recovered centroid within 1.0.
        for c in true_centers:
            dists = np.linalg.norm(result.centroids - c, axis=1)
            assert dists.min() < 1.0

    def test_unit_weights_equivalent_to_none(self):
        rng_points = np.random.default_rng(2)
        points, _ = three_blobs(rng_points)
        r1 = weighted_kmeans(points, 3, rng=np.random.default_rng(5))
        r2 = weighted_kmeans(points, 3, weights=np.ones(len(points)),
                             rng=np.random.default_rng(5))
        assert np.allclose(r1.centroids, r2.centroids)
        assert r1.inertia == pytest.approx(r2.inertia)

    def test_weights_pull_centroid(self):
        # Two points, one cluster: centroid is the weighted mean.
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        weights = np.array([1.0, 3.0])
        result = weighted_kmeans(points, 1, weights=weights,
                                 rng=np.random.default_rng(0))
        assert result.centroids[0, 0] == pytest.approx(7.5)

    def test_k_equal_n_returns_points(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        result = weighted_kmeans(points, 2, rng=np.random.default_rng(0))
        assert result.inertia == 0.0
        assert sorted(result.labels.tolist()) == [0, 1]

    def test_k_greater_than_n_degenerates(self):
        points = np.array([[1.0, 2.0]])
        result = weighted_kmeans(points, 5, rng=np.random.default_rng(0))
        assert result.centroids.shape == (1, 2)
        assert result.inertia == 0.0

    def test_labels_consistent_with_centroids(self):
        rng = np.random.default_rng(3)
        points, _ = three_blobs(rng)
        result = weighted_kmeans(points, 3, rng=rng)
        d = np.linalg.norm(points[:, None] - result.centroids[None], axis=-1)
        assert np.array_equal(result.labels, np.argmin(d, axis=1))

    def test_inertia_nonincreasing_in_k(self):
        rng = np.random.default_rng(4)
        points, _ = three_blobs(rng)
        inertias = [
            weighted_kmeans(points, k, rng=np.random.default_rng(0), n_init=6).inertia
            for k in (1, 2, 3, 5)
        ]
        for a, b in zip(inertias, inertias[1:]):
            assert b <= a + 1e-6

    def test_zero_weight_points_ignored_for_centroids(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]])
        weights = np.array([1.0, 1.0, 0.0])
        result = weighted_kmeans(points, 1, weights=weights,
                                 rng=np.random.default_rng(0))
        assert result.centroids[0, 0] == pytest.approx(0.5)

    def test_input_validation(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError, match="k must be positive"):
            weighted_kmeans(points, 0)
        with pytest.raises(ValueError, match="weights"):
            weighted_kmeans(points, 2, weights=np.ones(2))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_kmeans(points, 2, weights=np.array([1.0, -2.0, 1.0]))
        with pytest.raises(ValueError, match="positive"):
            weighted_kmeans(points, 2, weights=np.zeros(3))

    def test_cluster_weights_sum(self):
        rng = np.random.default_rng(5)
        points, _ = three_blobs(rng, n_per=10)
        w = rng.uniform(0.5, 2.0, size=len(points))
        result = weighted_kmeans(points, 3, weights=w, rng=rng)
        assert result.cluster_weights(w).sum() == pytest.approx(w.sum())
        assert result.cluster_weights().sum() == pytest.approx(len(points))

    def test_result_k_property(self):
        result = KMeansResult(np.zeros((4, 2)), np.zeros(8, dtype=int), 0.0, 1)
        assert result.k == 4

    def test_deterministic_given_rng(self):
        rng_points = np.random.default_rng(6)
        points, _ = three_blobs(rng_points)
        r1 = weighted_kmeans(points, 3, rng=np.random.default_rng(9))
        r2 = weighted_kmeans(points, 3, rng=np.random.default_rng(9))
        assert np.allclose(r1.centroids, r2.centroids)
