"""Unit tests for repro.coords.space."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace


class TestBasics:
    def test_vector_size_without_height(self):
        assert EuclideanSpace(dim=3).vector_size == 3

    def test_vector_size_with_height(self):
        assert EuclideanSpace(dim=3, use_height=True).vector_size == 4

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            EuclideanSpace(dim=0)

    def test_origin_is_zero(self):
        assert np.all(EuclideanSpace(dim=2).origin() == 0)

    def test_random_point_height_nonnegative(self):
        space = EuclideanSpace(dim=2, use_height=True)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.random_point(rng)[-1] >= 0

    def test_validate_rejects_wrong_shape(self):
        space = EuclideanSpace(dim=3)
        with pytest.raises(ValueError, match="size 3"):
            space.validate(np.zeros(4))

    def test_validate_rejects_negative_height(self):
        space = EuclideanSpace(dim=2, use_height=True)
        with pytest.raises(ValueError, match="height"):
            space.validate(np.array([0.0, 0.0, -1.0]))

    def test_repr_mentions_height(self):
        assert "+h" in repr(EuclideanSpace(dim=2, use_height=True))


class TestDistance:
    def test_euclidean_distance(self):
        space = EuclideanSpace(dim=2)
        assert space.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_height_adds_both_heights(self):
        space = EuclideanSpace(dim=2, use_height=True)
        a = np.array([0.0, 0.0, 2.0])
        b = np.array([3.0, 4.0, 1.0])
        assert space.distance(a, b) == pytest.approx(5.0 + 3.0)

    def test_distance_symmetry(self):
        space = EuclideanSpace(dim=3, use_height=True)
        rng = np.random.default_rng(1)
        a = space.random_point(rng, 10)
        b = space.random_point(rng, 10)
        assert space.distance(a, b) == pytest.approx(space.distance(b, a))

    def test_pairwise_matches_scalar(self):
        space = EuclideanSpace(dim=3, use_height=True)
        rng = np.random.default_rng(2)
        pts = np.stack([space.random_point(rng, 10) for _ in range(6)])
        d = space.pairwise_distances(pts)
        assert np.all(np.diag(d) == 0)
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert d[i, j] == pytest.approx(space.distance(pts[i], pts[j]))

    def test_cross_distances_matches_scalar(self):
        space = EuclideanSpace(dim=2)
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0]])
        d = space.cross_distances(a, b)
        assert d.shape == (2, 1)
        assert d[0, 0] == pytest.approx(5.0)


class TestDirections:
    def test_unit_direction_is_unit(self):
        space = EuclideanSpace(dim=3)
        d = space.unit_direction(np.array([1.0, 0, 0]), np.array([0.0, 0, 0]))
        assert np.linalg.norm(d) == pytest.approx(1.0)
        assert d[0] == pytest.approx(1.0)

    def test_coincident_points_get_random_direction(self):
        space = EuclideanSpace(dim=3)
        p = np.zeros(3)
        d = space.unit_direction(p, p, rng=np.random.default_rng(0))
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_height_direction_pushes_up(self):
        space = EuclideanSpace(dim=2, use_height=True)
        a = np.array([1.0, 0.0, 0.5])
        b = np.array([0.0, 0.0, 0.2])
        d = space.unit_direction(a, b)
        assert d[-1] == 1.0
        assert np.linalg.norm(d[:-1]) == pytest.approx(1.0)

    def test_clamp_fixes_negative_height(self):
        space = EuclideanSpace(dim=2, use_height=True)
        p = space.clamp(np.array([1.0, 2.0, -3.0]))
        assert p[-1] == 0.0
        # Planar part untouched.
        assert p[0] == 1.0 and p[1] == 2.0
