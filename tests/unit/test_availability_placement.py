"""Unit tests for the availability-aware placement layer.

Covers the greedy λ-refinement (including the λ = 0 bit-identity
contract), the ``bound_transfers`` burst cap, the strategy wrapper,
the controller/cost-model knobs, and the candidate-position index map
that replaced the O(n) ``candidates.index`` lookups.
"""

import numpy as np
import pytest

from repro.core import ControllerConfig, MigrationCostModel
from repro.coords import EuclideanSpace, embed_matrix
from repro.net.domains import FailureDomains
from repro.net.planetlab import small_matrix
from repro.placement import (
    AvailabilityAwarePlacement,
    GreedyPlacement,
    PlacementProblem,
    average_access_delay,
    bound_transfers,
    refine_for_availability,
)
from repro.sim import Simulator
from repro.store import ReplicatedStore


# Three DCs of two positions each, rack == DC, one region.
TREE = FailureDomains.contiguous(6, regions=1, dcs_per_region=3,
                                 racks_per_dc=1, p_rack=0.1, p_node=0.02)


def flat_delay(positions):
    return 0.0


class TestRefineForAvailability:
    def test_lambda_zero_returns_input_unchanged(self):
        sites = [3, 0, 5]

        def exploding_delay(positions):  # pragma: no cover
            raise AssertionError("lambda=0 must not evaluate anything")

        refined = refine_for_availability(sites, exploding_delay, TREE, 0.0)
        assert refined == sites
        assert refine_for_availability([], flat_delay, TREE, 5.0) == []

    def test_pure_risk_spreads_across_racks(self):
        # Positions 0 and 1 share a rack; with delay flat the refinement
        # must end rack-disjoint.
        refined = refine_for_availability([0, 1], flat_delay, TREE, 1.0)
        assert TREE.rack_of[refined[0]] != TREE.rack_of[refined[1]]

    def test_lambda_trades_delay_for_risk(self):
        # Leaving the {0, 1} rack costs 10 ms of predicted delay.
        def delay_of(positions):
            return sum(0.0 if p in (0, 1) else 10.0 for p in positions)

        same_rack_risk = TREE.cofailure_risk([0, 1])
        split_risk = TREE.cofailure_risk([0, 2])
        # Below the break-even λ the packed placement survives; above
        # it the refinement pays the 10 ms to split the rack.
        break_even = 10.0 / (same_rack_risk - split_risk)
        assert refine_for_availability(
            [0, 1], delay_of, TREE, 0.5 * break_even) == [0, 1]
        refined = refine_for_availability(
            [0, 1], delay_of, TREE, 2.0 * break_even)
        assert TREE.rack_of[refined[0]] != TREE.rack_of[refined[1]]

    def test_eligible_restricts_pool(self):
        refined = refine_for_availability([0, 1], flat_delay, TREE, 1.0,
                                          eligible=[0, 1])
        assert sorted(refined) == [0, 1]
        refined = refine_for_availability([0, 1], flat_delay, TREE, 1.0,
                                          eligible=[0, 1, 2])
        assert sorted(TREE.rack_of[p] for p in refined) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError, match="distinct"):
            refine_for_availability([0, 0], flat_delay, TREE, 1.0)
        with pytest.raises(ValueError, match="outside"):
            refine_for_availability([0, 99], flat_delay, TREE, 1.0)


class TestBoundTransfers:
    def test_no_limit_is_passthrough(self):
        assert bound_transfers([0, 1], [4, 5], None, flat_delay) == [4, 5]

    def test_limit_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            bound_transfers([0], [1], 0, flat_delay)

    def test_within_limit_untouched(self):
        assert bound_transfers([0, 1, 2], [0, 1, 5], 1,
                               flat_delay) == [0, 1, 5]

    def test_trims_to_limit_by_objective(self):
        # Proposal replaces all three sites; only one new site may land
        # per epoch.  Objective prefers low position ids, so the trim
        # must keep the new site 3 (= lowest objective when paired with
        # incumbents 0 and 1 back in).
        def objective(positions):
            return float(sum(positions))

        trimmed = bound_transfers([0, 1, 2], [3, 4, 5], 1, objective)
        assert sorted(trimmed) == [0, 1, 3]

    def test_growth_beyond_droppable_incumbents(self):
        # Growing 1 -> 3 replicas with limit 1: one extra site can be
        # swapped back to the incumbent, the rest must stay (the cap
        # yields to growth).
        def objective(positions):
            return float(sum(positions))

        trimmed = bound_transfers([0], [3, 4, 5], 1, objective)
        assert 0 in trimmed and len(trimmed) == 3
        assert len(set(trimmed) - {0}) == 2

    def test_deterministic_tie_break(self):
        first = bound_transfers([0, 1], [2, 3], 1, flat_delay)
        second = bound_transfers([0, 1], [2, 3], 1, flat_delay)
        assert first == second


@pytest.fixture(scope="module")
def problem():
    matrix = small_matrix(n=30, seed=3)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(dim=3)).coords
    candidates = tuple(range(6))
    clients = tuple(range(6, 30))
    return PlacementProblem(matrix, candidates, clients, k=2,
                            coords=coords)


class TestAvailabilityAwarePlacement:
    def test_lambda_zero_is_base_verbatim(self, problem):
        base = GreedyPlacement()
        wrapped = AvailabilityAwarePlacement(base, TREE, 0.0)
        rng = np.random.default_rng(5)
        expected = base.place(problem, np.random.default_rng(5))
        assert wrapped.place(problem, rng) == expected

    def test_refinement_never_worsens_combined_objective(self, problem):
        base = GreedyPlacement()
        lam = 500.0
        wrapped = AvailabilityAwarePlacement(base, TREE, lam)
        base_sites = base.place(problem, np.random.default_rng(5))
        refined = wrapped.place(problem, np.random.default_rng(5))
        position_of = {node: p for p, node in enumerate(problem.candidates)}

        def combined(sites):
            return (average_access_delay(problem.matrix, problem.clients,
                                         sites)
                    + lam * TREE.cofailure_risk(
                        [position_of[s] for s in sites]))

        assert combined(refined) <= combined(base_sites) + 1e-9

    def test_validation(self, problem):
        with pytest.raises(ValueError, match="non-negative"):
            AvailabilityAwarePlacement(GreedyPlacement(), TREE, -1.0)
        small_tree = FailureDomains.contiguous(3, 1, 1, 3)
        wrapped = AvailabilityAwarePlacement(GreedyPlacement(),
                                             small_tree, 1.0)
        with pytest.raises(ValueError, match="candidates"):
            wrapped.place(problem, np.random.default_rng(0))

    def test_name_mentions_lambda(self):
        wrapped = AvailabilityAwarePlacement(GreedyPlacement(), TREE, 2.5)
        assert "lam=2.5" in wrapped.name


class TestControllerKnobs:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="availability lambda"):
            ControllerConfig(availability_lambda=-1.0)
        with pytest.raises(ValueError, match="max_epoch_moves"):
            ControllerConfig(max_epoch_moves=0)

    def test_cost_model_transfers_of_move(self):
        model = MigrationCostModel(dollars_per_gb=0.02, object_size_gb=2.0)
        assert model.transfers_of_move((0, 1, 2), (0, 1, 2)) == 0
        assert model.transfers_of_move((0, 1, 2), (0, 3, 4)) == 2
        assert model.cost_of_move((0, 1, 2), (0, 3, 4)) == \
            pytest.approx(2 * 0.02 * 2.0)


class TestPositionIndexMap:
    """The prebuilt candidate-position map must agree with the O(n)
    ``candidates.index`` lookups it replaced, for any candidate set."""

    @pytest.mark.parametrize("candidates", [
        (0, 1, 2, 3, 4),
        (7, 3, 11, 0, 19, 5),
        (4,),
    ])
    def test_map_matches_list_index(self, candidates):
        matrix = small_matrix(n=20, seed=0)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        store = ReplicatedStore(Simulator(seed=0), matrix, candidates,
                                coords)
        assert store._position_of == {
            node: list(candidates).index(node) for node in candidates}

    def test_store_rejects_mismatched_domains(self):
        matrix = small_matrix(n=20, seed=0)
        coords = embed_matrix(matrix, system="mds",
                              space=EuclideanSpace(3)).coords
        with pytest.raises(ValueError, match="candidate"):
            ReplicatedStore(Simulator(seed=0), matrix, (0, 1, 2), coords,
                            domains=FailureDomains.contiguous(5, 1, 1, 1))
