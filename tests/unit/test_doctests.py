"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis.stats
import repro.clustering.kmeans
import repro.clustering.stream
import repro.core.costs
import repro.core.migration
import repro.net.latency
import repro.runner.cache
import repro.runner.jobs

MODULES = [
    repro.analysis.stats,
    repro.clustering.kmeans,
    repro.clustering.stream,
    repro.core.costs,
    repro.core.migration,
    repro.net.latency,
    repro.runner.cache,
    repro.runner.jobs,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"


def test_doctests_actually_found():
    # Guard against silently losing all examples in a refactor.
    total = sum(doctest.testmod(m).attempted for m in MODULES)
    assert total >= 8
