"""Unit tests for the discrete-event simulator substrate."""

import math

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import EventQueue, Message, Network, Node, PeriodicProcess, Simulator


def tiny_matrix():
    rtt = np.array([
        [0.0, 20.0, 80.0],
        [20.0, 0.0, 60.0],
        [80.0, 60.0, 0.0],
    ])
    return LatencyMatrix(rtt)


class Recorder(Node):
    """Test node that records every delivery with its arrival time."""

    def __init__(self, network, node_id):
        super().__init__(network, node_id)
        self.received = []

    def handle_message(self, message):
        self.received.append((self.sim.now, message))


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(5.0, fired.append, (2,))
        q.push(1.0, fired.append, (1,))
        q.push(9.0, fired.append, (3,))
        while q:
            q.pop().fire()
        assert fired == [1, 2, 3]

    def test_fifo_for_equal_times(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, fired.append, (i,))
        while q:
            q.pop().fire()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, fired.append, (1,))
        event.cancel()
        q.pop().fire()
        assert fired == []

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().push(-1.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert len(q) == 0

    def test_cancellation_tracked_as_tombstones(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(10)]
        events[3].cancel()
        events[7].cancel()
        events[7].cancel()  # idempotent: counted once
        assert q.tombstones == 2
        q.pop()  # live event, tombstone count unchanged
        assert q.tombstones == 2
        q.compact()
        assert q.tombstones == 0
        assert len(q) == 7

    def test_cancelling_many_timers_shrinks_the_heap(self):
        # The retry/timeout machinery cancels most of the timers it
        # arms; tombstones must not accumulate for the rest of the run.
        q = EventQueue()
        keep = [q.push(float(10_000 + i), lambda: None) for i in range(40)]
        timers = [q.push(float(i), lambda: None) for i in range(5_000)]
        assert len(q) == 5_040
        for timer in timers:
            timer.cancel()
        # Compaction triggers whenever tombstones outnumber live events,
        # so the heap must have collapsed to within a constant factor of
        # the 40 survivors — not stayed at ~5k entries.
        assert len(q) <= 2 * len(keep) + 1
        assert q.tombstones <= len(keep) + 1
        fired = []
        while q:
            event = q.pop()
            if not event.cancelled:
                fired.append(event.time)
                event.fire()
        assert fired == sorted(e.time for e in keep)

    def test_compaction_preserves_order_and_barriers(self):
        q = EventQueue()
        q.enable_barrier_tracking()
        live = [q.push(float(i), lambda: None) for i in range(0, 200, 2)]
        doomed = [q.push(float(i), lambda: None) for i in range(1, 200, 2)]
        for event in doomed:
            event.cancel()
        q.compact()
        assert q.tombstones == 0
        assert q.next_barrier_time() == live[0].time
        popped = [q.pop().time for _ in range(len(q))]
        assert popped == sorted(e.time for e in live)

    def test_barrier_time_skips_inert_events(self):
        q = EventQueue()
        q.enable_barrier_tracking()
        q.push(1.0, lambda: None, inert=True)
        barrier = q.push(5.0, lambda: None)
        q.push(9.0, lambda: None, inert=True)
        assert q.next_barrier_time() == 5.0
        barrier.cancel()
        assert q.next_barrier_time() == math.inf

    def test_barrier_time_conservative_without_tracking(self):
        q = EventQueue()
        q.push(1.0, lambda: None, inert=True)
        assert q.next_barrier_time() == 1.0
        assert EventQueue().next_barrier_time() == math.inf

    def test_enable_barrier_tracking_adopts_queued_events(self):
        q = EventQueue()
        q.push(2.0, lambda: None, inert=True)
        q.push(7.0, lambda: None)
        q.enable_barrier_tracking()
        q.enable_barrier_tracking()  # idempotent
        assert q.next_barrier_time() == 7.0

    def test_popped_barrier_discarded_lazily(self):
        q = EventQueue()
        q.enable_barrier_tracking()
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None, inert=True)
        q.push(6.0, lambda: None)
        q.pop().fire()
        assert q.next_barrier_time() == 6.0


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(10.0, lambda: times.append(sim.now))
        sim.schedule(25.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [10.0, 25.0]
        assert sim.events_processed == 2

    def test_run_until_stops_and_sets_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, 1)
        sim.schedule(100.0, fired.append, 2)
        sim.run_until(50.0)
        assert fired == [1]
        assert sim.now == 50.0
        sim.run_until(200.0)
        assert fired == [1, 2]

    def test_run_until_rejects_backwards(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError, match="backwards"):
            sim.run_until(5.0)

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_rejects_past(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.schedule(5.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 5.0, 10.0, 15.0]

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_named_rng_streams_are_stable(self):
        a = Simulator(seed=7).rng("workload").integers(0, 1000, size=5)
        b = Simulator(seed=7).rng("workload").integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_rng_streams_independent_of_request_order(self):
        s1 = Simulator(seed=7)
        s1.rng("other")
        x1 = s1.rng("workload").integers(0, 1000, size=5)
        s2 = Simulator(seed=7)
        x2 = s2.rng("workload").integers(0, 1000, size=5)
        assert np.array_equal(x1, x2)

    def test_different_streams_differ(self):
        sim = Simulator(seed=7)
        a = sim.rng("a").integers(0, 10 ** 9)
        b = sim.rng("b").integers(0, 10 ** 9)
        assert a != b

    def test_rng_streams_stable_across_processes(self):
        # Stream derivation must not involve Python's randomized hash():
        # the same seed has to reproduce the same simulation in any
        # process (regression test for a PYTHONHASHSEED dependence).
        import json
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        script = (
            "import json, sys\n"
            "from repro.sim import Simulator\n"
            "sim = Simulator(seed=7)\n"
            "print(json.dumps([int(sim.rng('workload').integers(0, 10**9))"
            " for _ in range(3)]))\n"
        )
        # Start from the parent environment (only PYTHONHASHSEED varies)
        # and make sure the child can import repro even when the parent
        # got it via sys.path rather than PYTHONPATH.
        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        base_env = dict(os.environ)
        python_path = base_env.get("PYTHONPATH", "")
        if src_dir not in python_path.split(os.pathsep):
            base_env["PYTHONPATH"] = (
                src_dir + (os.pathsep + python_path if python_path else ""))
        outputs = []
        for hash_seed in ("1", "99"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                env={**base_env, "PYTHONHASHSEED": hash_seed},
                capture_output=True, text=True, check=True)
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1]


class TestNetwork:
    def test_message_arrives_after_one_way_delay(self):
        sim = Simulator()
        net = Network(sim, tiny_matrix())
        n0 = Recorder(net, 0)
        n1 = Recorder(net, 1)
        n0.send(1, "ping", payload="hello", size_bytes=100)
        sim.run()
        assert len(n1.received) == 1
        arrival, msg = n1.received[0]
        assert arrival == 10.0  # RTT 20 / 2
        assert msg.payload == "hello"
        assert msg.sender == 0 and msg.recipient == 1

    def test_traffic_accounting(self):
        sim = Simulator()
        net = Network(sim, tiny_matrix())
        n0 = Recorder(net, 0)
        n2 = Recorder(net, 2)
        n0.send(2, "data", size_bytes=500)
        n2.send(0, "ack", size_bytes=50)
        sim.run()
        assert net.stats.bytes_sent == 550
        assert net.stats.bytes_received == 550
        assert net.per_node[0].bytes_sent == 500
        assert net.per_node[0].bytes_received == 50
        assert net.per_kind_bytes == {"data": 500, "ack": 50}

    def test_duplicate_registration_rejected(self):
        net = Network(Simulator(), tiny_matrix())
        Recorder(net, 0)
        with pytest.raises(ValueError, match="already registered"):
            Recorder(net, 0)

    def test_out_of_range_id_rejected(self):
        net = Network(Simulator(), tiny_matrix())
        with pytest.raises(ValueError, match="outside matrix"):
            Recorder(net, 3)

    def test_unknown_recipient_rejected(self):
        net = Network(Simulator(), tiny_matrix())
        n0 = Recorder(net, 0)
        with pytest.raises(KeyError, match="unknown recipient"):
            n0.send(1, "ping")

    def test_base_node_handler_abstract(self):
        net = Network(Simulator(), tiny_matrix())
        node = Node(net, 0)
        with pytest.raises(NotImplementedError):
            node.handle_message(Message(0, 0, "x"))


class TestPeriodicProcess:
    def test_strict_period(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_after_override(self):
        sim = Simulator()
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), start_after=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        times = []
        proc = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(25.0)
        proc.stop()
        assert not proc.running
        sim.run_until(100.0)
        assert times == [10.0, 20.0]

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        proc = None

        def cb():
            ticks.append(sim.now)
            if len(ticks) == 2:
                proc.stop()

        proc = PeriodicProcess(sim, 5.0, cb)
        sim.run_until(100.0)
        assert len(ticks) == 2

    def test_jitter_varies_intervals_within_bounds(self):
        sim = Simulator(seed=1)
        times = []
        PeriodicProcess(sim, 10.0, lambda: times.append(sim.now),
                        jitter=0.3, rng=sim.rng("jitter"))
        sim.run_until(1000.0)
        gaps = np.diff([0.0] + times)
        assert np.all(gaps >= 7.0 - 1e-9)
        assert np.all(gaps <= 13.0 + 1e-9)
        assert np.std(gaps) > 0

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="period"):
            PeriodicProcess(sim, 0.0, lambda: None)
        with pytest.raises(ValueError, match="jitter"):
            PeriodicProcess(sim, 1.0, lambda: None, jitter=1.5)
        with pytest.raises(ValueError, match="rng"):
            PeriodicProcess(sim, 1.0, lambda: None, jitter=0.5)
