"""Unit tests for repro.runner: jobs, cache, executor, sweep specs."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.analysis.experiment import EvaluationSetting, Table2Row
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement
from repro.placement.random_placement import RandomPlacement
from repro.runner import (
    MISS,
    PlacementRunSpec,
    ResultCache,
    SweepSpec,
    Table2Spec,
    as_job_strategy,
    build_strategy,
    cache_key,
    execute,
    load_sweep_spec,
    seed_sequence,
    strategy_spec,
)


class TestSeedSequence:
    def test_matches_default_rng_tuple_seeding(self):
        # The legacy loops seed with np.random.default_rng((seed, run));
        # seed_sequence must build the identical stream.
        for seed, run in [(0, 0), (7, 3), (123, 29)]:
            a = np.random.default_rng(seed_sequence(seed, run))
            b = np.random.default_rng((seed, run))
            assert (a.integers(0, 1 << 30, 8) == b.integers(0, 1 << 30, 8)).all()

    def test_distinct_keys_give_distinct_streams(self):
        draws = {
            key: np.random.default_rng(seed_sequence(*key)).integers(0, 1 << 30)
            for key in [(0, 0), (0, 1), (1, 0), (0, 0, 5)]
        }
        assert len(set(draws.values())) == len(draws)

    def test_accepts_numpy_integers(self):
        a = seed_sequence(np.int64(5), np.int32(2))
        b = seed_sequence(5, 2)
        assert a.entropy == b.entropy


class TestStrategySpecs:
    def test_spec_is_canonical(self):
        assert strategy_spec("online", micro_clusters=4) == \
            ("online", (("micro_clusters", 4),))
        # Param order never matters.
        assert strategy_spec("online", migration_rounds=2, micro_clusters=4) \
            == strategy_spec("online", micro_clusters=4, migration_rounds=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy kind"):
            strategy_spec("quantum")

    def test_roundtrip_through_declarative_form(self):
        original = OnlineClusteringPlacement(micro_clusters=7,
                                             migration_rounds=3)
        spec = as_job_strategy(original)
        assert spec[0] == "online"
        rebuilt = build_strategy(spec)
        assert isinstance(rebuilt, OnlineClusteringPlacement)
        assert rebuilt.micro_clusters == 7
        assert rebuilt.migration_rounds == 3

    def test_all_default_strategies_convert(self):
        from repro.analysis.experiment import default_strategies
        for strategy in default_strategies(micro_clusters=5):
            spec = as_job_strategy(strategy)
            assert isinstance(spec, tuple), strategy
            assert type(build_strategy(spec)) is type(strategy)

    def test_unknown_strategy_passes_through(self):
        class Custom(RandomPlacement):
            name = "custom"

        custom = Custom()
        assert as_job_strategy(custom) is custom
        assert build_strategy(custom) is custom

    def test_subclass_not_mistaken_for_registered_kind(self):
        class Tweaked(OfflineKMeansPlacement):
            name = "tweaked"

        assert as_job_strategy(Tweaked()) is not None
        assert not isinstance(as_job_strategy(Tweaked()), tuple)


class TestCacheKey:
    def test_stable_across_processes_and_param_order(self):
        spec = Table2Spec(n_accesses=100, k=3, m=10)
        assert cache_key(spec) == cache_key(Table2Spec(n_accesses=100, k=3,
                                                       m=10))

    def test_sensitive_to_every_config_field(self):
        base = Table2Spec(n_accesses=100, k=3, m=10, dim=3, seed=0)
        variants = [
            Table2Spec(n_accesses=101, k=3, m=10, dim=3, seed=0),
            Table2Spec(n_accesses=100, k=4, m=10, dim=3, seed=0),
            Table2Spec(n_accesses=100, k=3, m=11, dim=3, seed=0),
            Table2Spec(n_accesses=100, k=3, m=10, dim=2, seed=0),
            Table2Spec(n_accesses=100, k=3, m=10, dim=3, seed=1),
        ]
        keys = {cache_key(s) for s in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_sensitive_to_code_salt(self):
        spec = Table2Spec(n_accesses=100, k=3, m=10)
        assert cache_key(spec, salt="v1") != cache_key(spec, salt="v2")

    def test_placement_spec_key_covers_strategy_and_world(self):
        def spec(**overrides):
            payload = dict(sweep="s", series="online clustering", x=1.0,
                           run_index=0, n_dc=5, k=2,
                           strategy=strategy_spec("online", micro_clusters=4),
                           seed=0, world_key="abc")
            payload.update(overrides)
            return PlacementRunSpec(**payload)

        base = cache_key(spec())
        assert cache_key(spec(strategy=strategy_spec(
            "online", micro_clusters=5))) != base
        assert cache_key(spec(world_key="def")) != base
        assert cache_key(spec(run_index=1)) != base
        assert cache_key(spec(candidate_mode="uniform")) != base


class TestResultCache:
    def test_roundtrip_float_and_table2_row(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = Table2Spec(n_accesses=10, k=2, m=3)
        assert cache.get(spec) is MISS
        cache.put(spec, 12.5)
        assert cache.get(spec) == 12.5

        row = Table2Row(n_accesses=10, k=2, m=4, online_bytes=100,
                        offline_bytes=200, online_seconds=0.1,
                        offline_seconds=0.2, online_ingest_seconds=0.05,
                        online_bytes_analytic=90,
                        offline_bytes_analytic=210)
        row_spec = Table2Spec(n_accesses=10, k=2, m=4)
        cache.put(row_spec, row)
        assert cache.get(row_spec) == row
        assert len(cache) == 2

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = Table2Spec(n_accesses=10, k=2, m=3)
        key = cache.put(spec, 1.5)
        path = os.path.join(str(tmp_path), key[:2], key + ".json")

        with open(path, "w") as handle:
            handle.write("{ torn json")
        assert cache.get(spec) is MISS

        with open(path, "w") as handle:
            json.dump({"schema": "other/v9", "result": 1.5}, handle)
        assert cache.get(spec) is MISS

    def test_no_temp_file_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(Table2Spec(n_accesses=10, k=2, m=3), 1.5)
        leftovers = [f for _r, _d, files in os.walk(str(tmp_path))
                     for f in files if f.endswith(".tmp")]
        assert leftovers == []

    def test_uncacheable_result_type_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(TypeError, match="cannot cache"):
            cache.put(Table2Spec(n_accesses=10, k=2, m=3), object())


class TestExecute:
    def _specs(self, n=4):
        return [Table2Spec(n_accesses=50 + 10 * i, k=2, m=3, seed=5)
                for i in range(n)]

    def test_serial_returns_results_in_spec_order(self):
        specs = self._specs()
        rows = execute(specs, jobs=1)
        assert [r.n_accesses for r in rows] == [s.n_accesses for s in specs]

    def test_validation(self):
        with pytest.raises(ValueError, match="requires a cache_dir"):
            execute([], resume=True)
        with pytest.raises(ValueError, match="jobs must be"):
            execute([], jobs=0)
        with pytest.raises(ValueError, match="retries"):
            execute([], retries=-1)

    def test_cache_written_even_without_resume(self, tmp_path):
        specs = self._specs(2)
        execute(specs, jobs=1, cache_dir=str(tmp_path))
        assert len(ResultCache(str(tmp_path))) == 2

    def test_resume_skips_cached_jobs(self, tmp_path):
        specs = self._specs(3)
        first = execute(specs, jobs=1, cache_dir=str(tmp_path))
        with obs.observe() as (registry, _):
            second = execute(specs, jobs=1, cache_dir=str(tmp_path),
                             resume=True)
        assert second == first
        assert registry.counter("runner.cache_hits").value == 3
        assert registry.counter("runner.jobs_completed").value == 0

    def test_partial_resume_runs_only_misses(self, tmp_path):
        specs = self._specs(4)
        execute(specs[:2], jobs=1, cache_dir=str(tmp_path))
        with obs.observe() as (registry, _):
            execute(specs, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert registry.counter("runner.cache_hits").value == 2
        assert registry.counter("runner.cache_misses").value == 2
        assert registry.counter("runner.jobs_completed").value == 2

    def test_metrics_instrumented(self):
        specs = self._specs(3)
        with obs.observe() as (registry, _):
            execute(specs, jobs=1)
        assert registry.counter("runner.jobs").value == 3
        assert registry.counter("runner.jobs_completed").value == 3
        assert registry.timer("runner.sweep").calls == 1
        assert registry.timer("runner.job").calls == 3


class TestSweepSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepSpec(kind="figure9", setting=EvaluationSetting(), params={})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            SweepSpec(kind="figure1", setting=EvaluationSetting(),
                      params={"bogus": 1})

    def test_load_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "sweep.toml"
        toml_path.write_text(
            'kind = "figure2"\n'
            "[setting]\nn_nodes = 40\nn_runs = 2\nseed = 3\n"
            "[params]\nreplica_counts = [1, 2]\nn_dc = 6\n")
        json_path = tmp_path / "sweep.json"
        json_path.write_text(json.dumps({
            "kind": "figure2",
            "setting": {"n_nodes": 40, "n_runs": 2, "seed": 3},
            "params": {"replica_counts": [1, 2], "n_dc": 6},
        }))
        assert load_sweep_spec(str(toml_path)) == load_sweep_spec(
            str(json_path))

    def test_load_rejects_unknown_setting_field(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"kind": "figure1",
                                    "setting": {"n_planets": 9}}))
        with pytest.raises(ValueError, match="unknown setting fields"):
            load_sweep_spec(str(path))

    def test_load_rejects_unsupported_extension(self, tmp_path):
        path = tmp_path / "sweep.yaml"
        path.write_text("kind: figure1\n")
        with pytest.raises(ValueError, match="unsupported sweep spec"):
            load_sweep_spec(str(path))

    def test_run_sweep_tiny_figure(self, tmp_path):
        from repro.analysis.experiment import run_figure2
        from repro.runner import run_sweep

        setting = EvaluationSetting(n_nodes=30, n_runs=2, seed=4)
        spec = SweepSpec(kind="figure2", setting=setting,
                         params={"replica_counts": (1, 2), "n_dc": 6,
                                 "micro_clusters": 4})
        result = run_sweep(spec)
        direct = run_figure2(setting, replica_counts=(1, 2), n_dc=6,
                             micro_clusters=4)
        assert result.series == direct.series


class TestPutMany:
    def _specs(self, n):
        return [Table2Spec(n_accesses=50 + 10 * i, k=2, m=3, seed=5)
                for i in range(n)]

    def test_batch_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = self._specs(5)
        keys = cache.put_many((s, float(i)) for i, s in enumerate(specs))
        assert keys == [cache_key(s) for s in specs]
        assert [cache.get(s) for s in specs] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(cache) == 5

    def test_empty_batch_is_a_noop(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.put_many([]) == []
        assert len(cache) == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put_many([(s, 1.0) for s in self._specs(4)])
        leftovers = [f for _r, _d, files in os.walk(str(tmp_path))
                     for f in files if f.endswith(".tmp")]
        assert leftovers == []

    def test_matches_put_entries_byte_for_byte(self, tmp_path):
        spec = Table2Spec(n_accesses=70, k=2, m=3, seed=5)
        a = ResultCache(str(tmp_path / "a"))
        b = ResultCache(str(tmp_path / "b"))
        key = a.put(spec, 2.5)
        assert b.put_many([(spec, 2.5)]) == [key]
        path = os.path.join(key[:2], key + ".json")
        with open(os.path.join(a.directory, path), "rb") as fa, \
                open(os.path.join(b.directory, path), "rb") as fb:
            assert fa.read() == fb.read()


class TestWorldMemo:
    class _FakeSetting:
        """Hashable stand-in for EvaluationSetting with a cheap build()."""

        def __init__(self, tag):
            self.tag = tag
            self.builds = 0

        def __hash__(self):
            return hash(self.tag)

        def __eq__(self, other):
            return isinstance(other, type(self)) and self.tag == other.tag

        def build(self):
            self.builds += 1
            return ("world", self.tag)

    def test_memoizes_repeat_lookups(self):
        from repro.runner.workers import WorldMemo
        memo = WorldMemo(cap=4)
        setting = self._FakeSetting("a")
        assert memo.get_or_build(setting) == ("world", "a")
        assert memo.get_or_build(setting) == ("world", "a")
        assert setting.builds == 1

    def test_eviction_is_bounded_and_lru_ordered(self):
        from repro.runner.workers import WorldMemo
        memo = WorldMemo(cap=3)
        settings = [self._FakeSetting(i) for i in range(5)]
        for setting in settings:              # 5 distinct > cap 3
            memo.get_or_build(setting)
        assert len(memo) == 3
        assert settings[0] not in memo and settings[1] not in memo
        assert all(s in memo for s in settings[2:])

        # A hit refreshes recency: touching the oldest survivor keeps it
        # through the next eviction.
        memo.get_or_build(settings[2])
        memo.get_or_build(self._FakeSetting("fresh"))
        assert settings[2] in memo and settings[3] not in memo

    def test_build_seconds_accumulates_only_on_builds(self):
        from repro.runner.workers import WorldMemo
        memo = WorldMemo(cap=2)
        setting = self._FakeSetting("a")
        memo.get_or_build(setting)
        after_build = memo.build_seconds
        assert after_build > 0.0
        memo.get_or_build(setting)
        assert memo.build_seconds == after_build

    def test_rejects_cap_below_one(self):
        from repro.runner.workers import WorldMemo
        with pytest.raises(ValueError, match="cap"):
            WorldMemo(cap=0)

    def test_worker_module_memo_is_bounded(self):
        from repro.runner.workers import WORLD_MEMO_CAP, WorldMemo, world_memo
        assert isinstance(world_memo, WorldMemo)
        assert world_memo.cap == WORLD_MEMO_CAP


class TestChunkedExecute:
    def _specs(self, n=6):
        return [Table2Spec(n_accesses=50 + 10 * i, k=2, m=3, seed=5)
                for i in range(n)]

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            execute([], chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            execute([], chunk_size=-3)

    def test_explicit_chunk_size_drives_chunk_count(self):
        def stable(rows):   # strip the wall-clock fields Table2Row carries
            return [(r.n_accesses, r.online_bytes, r.offline_bytes)
                    for r in rows]

        specs = self._specs(6)
        serial = execute(specs, jobs=1)
        with obs.observe() as (registry, _):
            rows = execute(specs, jobs=2, chunk_size=2)
        assert stable(rows) == stable(serial)
        assert registry.counter("runner.chunks").value == 3
        assert registry.counter("runner.jobs_completed").value == 6

    def test_auto_tuning_records_gauges(self):
        specs = self._specs(8)
        with obs.observe() as (registry, _):
            execute(specs, jobs=2)
        assert registry.gauge("runner.chunk_size").value >= 1
        assert registry.gauge("runner.dispatch_overhead").value >= 0.0
        assert registry.counter("runner.chunks").value >= 2

    def test_meta_out_records_provenance(self, tmp_path):
        specs = self._specs(4)
        meta = []
        execute(specs, jobs=2, chunk_size=2, cache_dir=str(tmp_path),
                meta_out=meta)
        assert [row["index"] for row in meta] == [0, 1, 2, 3]
        assert {row["source"] for row in meta} == {"worker"}
        assert all("chunk" in row and "worker" in row and "engine" in row
                   for row in meta)

        resumed_meta = []
        execute(specs, jobs=2, cache_dir=str(tmp_path), resume=True,
                meta_out=resumed_meta)
        assert {row["source"] for row in resumed_meta} == {"cache"}

    def test_meta_out_serial_source(self):
        meta = []
        execute(self._specs(2), jobs=1, meta_out=meta)
        assert [row["source"] for row in meta] == ["serial", "serial"]
