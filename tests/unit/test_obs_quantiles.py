"""Histogram quantile edge cases, pinned to exact outputs.

``Histogram.approx_quantile`` is bucket-interpolated: exact at bucket
edges, linear inside a bucket, lower-clamped to the observed minimum
and upper-clamped (overflow bucket) to the observed maximum.  These
tests pin the exact arithmetic on the degenerate inputs a sweep report
actually produces — empty histograms, a single sample, and p999 asked
of far fewer than 1000 samples.
"""

import pytest

from repro.obs import Histogram


class TestEmptyHistogram:
    def test_every_quantile_is_zero(self):
        hist = Histogram("h", bounds=(10.0, 100.0))
        for q in (0.0, 0.5, 0.99, 0.999, 1.0):
            assert hist.approx_quantile(q) == 0.0

    def test_snapshot_quantiles_are_zero(self):
        snap = Histogram("h", bounds=(10.0,)).snapshot()
        assert (snap["p50"], snap["p99"], snap["p999"]) == (0.0, 0.0, 0.0)

    def test_quantile_validation(self):
        hist = Histogram("h", bounds=(10.0,))
        with pytest.raises(ValueError, match="quantile"):
            hist.approx_quantile(-0.1)
        with pytest.raises(ValueError, match="quantile"):
            hist.approx_quantile(1.1)


class TestSingleSample:
    def test_interpolates_from_sample_to_bucket_bound(self):
        """One sample strictly inside a bucket: the estimate walks
        linearly from the sample (the observed min) to the bucket's
        upper bound as q goes 0 -> 1."""
        hist = Histogram("h", bounds=(10.0, 100.0))
        hist.observe(5.0)
        assert hist.approx_quantile(0.0) == 5.0
        assert hist.approx_quantile(0.5) == 7.5
        assert hist.approx_quantile(0.99) == pytest.approx(9.95)
        assert hist.approx_quantile(0.999) == pytest.approx(9.995)
        assert hist.approx_quantile(1.0) == 10.0
        snap = hist.snapshot()
        assert snap["p50"] == 7.5
        assert snap["p99"] == pytest.approx(9.95)
        assert snap["p999"] == pytest.approx(9.995)

    def test_sample_on_a_bucket_edge_is_exact(self):
        hist = Histogram("h", bounds=(10.0, 100.0))
        hist.observe(10.0)
        for q in (0.0, 0.5, 0.999, 1.0):
            assert hist.approx_quantile(q) == 10.0


class TestTailOfFewSamples:
    def test_p999_on_ten_identical_samples(self):
        """p999 of 10 samples of 1.5 in bucket (1, 2]: the target count
        9.99 lands in that bucket at fraction 0.999, interpolated from
        the observed min 1.5 to the bound 2.0 -> exactly 1.9995."""
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
        hist.observe_many([1.5] * 10)
        assert hist.approx_quantile(0.999) == pytest.approx(1.9995)
        assert hist.snapshot()["p999"] == pytest.approx(1.9995)

    def test_overflow_bucket_clamps_to_observed_max(self):
        """Two samples straddling the last bound: the tail quantile
        interpolates inside the overflow bucket from the bound to the
        observed max, never past it."""
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(5.0)
        hist.observe(15.0)
        assert hist.approx_quantile(0.5) == 10.0
        assert hist.approx_quantile(0.99) == pytest.approx(14.9)
        assert hist.approx_quantile(0.999) == pytest.approx(14.99)
        assert hist.approx_quantile(1.0) == 15.0
        snap = hist.snapshot()
        assert snap["p50"] == 10.0
        assert snap["p99"] == pytest.approx(14.9)
        assert snap["p999"] == pytest.approx(14.99)
