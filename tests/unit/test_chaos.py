"""Unit tests for the chaos layer: link faults, failover, retry/rollback.

Covers the fault-tolerance changes bottom-up: the network's link
primitives, the failure injector's deterministic same-instant ordering
(the insertion-order bug fix), the retry policy, the controller's
coordinator election / lease fencing / degraded epochs, the store's
summary and migration retry machinery, and the declarative scenario
parser.
"""

import json

import numpy as np
import pytest

from repro.chaos import ChaosScenario, FaultSpec, load_scenario
from repro.chaos.scenario import _parse_scenario
from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.core.controller import ReplicationController
from repro.core.migration import RetryPolicy
from repro.net.planetlab import small_matrix
from repro.sim import FailureInjector, Network, Simulator
from repro.sim.node import Message, Node
from repro.store import ReplicatedStore


class Recorder(Node):
    def __init__(self, network, node_id):
        super().__init__(network, node_id)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def build_net(n=6, seed=0):
    matrix = small_matrix(n=n, seed=seed)
    sim = Simulator(seed=seed)
    net = Network(sim, matrix)
    nodes = [Recorder(net, i) for i in range(n)]
    return sim, net, nodes


def build_store(seed=0, n=20, n_candidates=5, retry_policy=None, **kwargs):
    matrix = small_matrix(n=n, seed=seed)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, tuple(range(n_candidates)), coords,
                            selection="oracle", retry_policy=retry_policy,
                            **kwargs)
    return sim, store


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout_ms=0)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_ms=100.0, backoff_factor=2.0,
                             max_backoff_ms=350.0, jitter=0.0)
        assert policy.backoff_ms(1) == 100.0
        assert policy.backoff_ms(2) == 200.0
        assert policy.backoff_ms(3) == 350.0  # capped, not 400
        with pytest.raises(ValueError, match="attempt"):
            policy.backoff_ms(0)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_ms=100.0, jitter=0.25)
        draws = [policy.backoff_ms(1, rng=np.random.default_rng(s))
                 for s in range(20)]
        assert all(75.0 <= d <= 125.0 for d in draws)
        assert len(set(draws)) > 1  # jitter actually applied
        again = policy.backoff_ms(1, rng=np.random.default_rng(3))
        assert again == policy.backoff_ms(1, rng=np.random.default_rng(3))
        # Without an rng the backoff is the deterministic midpoint.
        assert policy.backoff_ms(1) == 100.0


# ----------------------------------------------------------------------
# Network link primitives
# ----------------------------------------------------------------------
class TestLinkState:
    def test_blocked_link_drops_directed(self):
        sim, net, nodes = build_net()
        net.set_link_down(0, 1, symmetric=False)
        nodes[0].send(1, "ping")
        nodes[1].send(0, "ping")
        sim.run_until(1_000.0)
        assert nodes[1].received == []      # 0 -> 1 cut
        assert len(nodes[0].received) == 1  # 1 -> 0 still up
        assert net.messages_dropped == 1

    def test_symmetric_cut_and_restore(self):
        sim, net, nodes = build_net()
        net.set_link_down(0, 1)
        assert not net.can_reach(0, 1) and not net.can_reach(1, 0)
        net.set_link_up(0, 1)
        assert net.can_reach(0, 1) and net.can_reach(1, 0)
        nodes[0].send(1, "ping")
        sim.run_until(1_000.0)
        assert len(nodes[1].received) == 1

    def test_cut_mid_flight_drops_delivery(self):
        sim, net, nodes = build_net()
        nodes[0].send(1, "ping")
        net.set_link_down(0, 1)  # after send, before delivery
        sim.run_until(1_000.0)
        assert nodes[1].received == []
        assert net.messages_dropped == 1

    def test_loss_probability_validated(self):
        _, net, _ = build_net()
        with pytest.raises(ValueError, match="probability"):
            net.set_link_loss(0, 1, 1.5)

    def test_lossy_link_drops_fraction(self):
        sim, net, nodes = build_net()
        net.set_link_loss(0, 1, 0.5)
        for _ in range(300):
            nodes[0].send(1, "ping")
        sim.run_until(10_000.0)
        assert 80 < len(nodes[1].received) < 220
        # Asymmetric: the reverse direction is untouched.
        for _ in range(50):
            nodes[1].send(0, "ping")
        sim.run_until(20_000.0)
        assert len(nodes[0].received) == 50
        net.clear_link_loss(0, 1)
        before = len(nodes[1].received)
        for _ in range(50):
            nodes[0].send(1, "ping")
        sim.run_until(30_000.0)
        assert len(nodes[1].received) == before + 50

    def test_can_reach_includes_node_liveness(self):
        _, net, _ = build_net()
        net.set_down(1)
        assert not net.can_reach(0, 1)
        net.set_up(1)
        assert net.can_reach(0, 1)


# ----------------------------------------------------------------------
# FailureInjector: deterministic ordering, partitions, flaky links
# ----------------------------------------------------------------------
class TestInjectorDeterminism:
    def test_same_instant_outcome_independent_of_insertion_order(self):
        # The fixed bug: recover+crash scheduled at the same sim-time
        # used to resolve by insertion order.  Now repairs apply first,
        # so the node always ends DOWN, whichever call came first.
        for first in ("crash", "recover"):
            sim, net, _ = build_net()
            injector = FailureInjector(net)
            injector.crash_at(10.0, 0)   # node is down before t=50
            if first == "crash":
                injector.crash_at(50.0, 0)
                injector.recover_at(50.0, 0)
            else:
                injector.recover_at(50.0, 0)
                injector.crash_at(50.0, 0)
            sim.run_until(100.0)
            assert not net.is_up(0), f"insertion order {first!r} leaked"
            kinds = [e.kind for e in injector.timeline if e.time == 50.0]
            assert kinds == ["recover", "crash"]

    def test_heal_before_partition_at_same_instant(self):
        sim, net, _ = build_net()
        injector = FailureInjector(net)
        injector.partition_at(10.0, [0, 1])
        # At t=50 the old partition heals and a new one forms — in that
        # order, regardless of scheduling order.  Had the partition
        # applied first, the heal of [0, 1] would erase its cut of the
        # (0, 3) pair.
        injector.partition_at(50.0, [0, 2])
        injector.heal_at(50.0, [0, 1])
        sim.run_until(100.0)
        assert net.can_reach(0, 2)       # together in the new group
        assert not net.can_reach(0, 1)   # cut by the new partition
        assert not net.can_reach(0, 3)   # proof the heal ran first


class TestPartitions:
    def test_partition_cuts_both_directions_between_groups(self):
        sim, net, nodes = build_net()
        injector = FailureInjector(net)
        injector.partition_now([0, 1], [2, 3])
        for a, b in [(0, 2), (2, 0), (1, 3), (3, 1)]:
            assert not net.can_reach(a, b)
        # Within a group traffic still flows.
        assert net.can_reach(0, 1) and net.can_reach(2, 3)
        # Unlisted nodes are untouched when both groups are explicit.
        assert net.can_reach(0, 4) and net.can_reach(4, 2)
        assert len(injector.partitions()) == 1

    def test_group_b_defaults_to_all_other_nodes(self):
        sim, net, _ = build_net()
        injector = FailureInjector(net)
        injector.partition_now([0])
        assert all(not net.can_reach(0, b) for b in range(1, 6))
        injector.heal_now([0])
        assert all(net.can_reach(0, b) for b in range(1, 6))

    def test_overlapping_groups_rejected(self):
        _, net, _ = build_net()
        injector = FailureInjector(net)
        with pytest.raises(ValueError, match="disjoint"):
            injector.partition_now([0, 1], [1, 2])

    def test_flaky_link_scheduled_and_fixed(self):
        sim, net, nodes = build_net()
        injector = FailureInjector(net)
        injector.flaky_link_at(10.0, 0, 1, 1.0)  # total loss
        injector.fix_link_at(500.0, 0, 1)
        sim.run_until(20.0)
        nodes[0].send(1, "ping")
        sim.run_until(400.0)
        assert nodes[1].received == []
        sim.run_until(600.0)
        nodes[0].send(1, "ping")
        sim.run_until(1_000.0)
        assert len(nodes[1].received) == 1
        kinds = [e.kind for e in injector.timeline]
        assert kinds == ["link-loss", "link-fix"]


# ----------------------------------------------------------------------
# Controller: election, leases, degraded epochs
# ----------------------------------------------------------------------
def make_controller(n_dc=6, k=2, sites=(0, 1), **config):
    rng = np.random.default_rng(5)
    coords = rng.normal(size=(n_dc, 2)) * 50.0
    return ReplicationController(
        coords, sites, ControllerConfig(k=k, max_micro_clusters=5, **config))


def feed(controller, site, center, n=30, spread=1.0, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        controller.record_access(
            site, np.asarray(center) + rng.normal(size=2) * spread)


class TestElection:
    def test_first_election_sets_lease_without_failover(self):
        c = make_controller()
        assert c.elect_coordinator([0, 1]) == (0, 1)
        assert c.failovers == 0
        # Re-electing the incumbent does not advance the lease.
        assert c.elect_coordinator([0, 1]) == (0, 1)

    def test_failover_advances_lease_and_counts(self):
        c = make_controller()
        c.elect_coordinator([0])
        assert c.elect_coordinator([3, 0]) == (3, 2)
        assert c.failovers == 1
        # Fail back: another failover, another lease term.
        assert c.elect_coordinator([0, 3]) == (0, 3)
        assert c.failovers == 2

    def test_empty_ranking_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_controller().elect_coordinator([])


class TestLeaseFencing:
    def test_stale_lease_epoch_is_rejected_without_side_effects(self):
        c = make_controller()
        c.elect_coordinator([0])
        feed(c, 0, [40.0, 40.0])
        c.elect_coordinator([1, 0])   # failover: lease now 2
        before = (c.epoch, c.sites)
        report = c.run_epoch(np.random.default_rng(0), lease=1)
        assert "stale" in report.verdict.reason
        assert not report.migrated
        # The rejection is flagged: its epoch number repeats the last
        # completed epoch's (the counter never advanced), so ``rejected``
        # is what tells the two reports apart.
        assert report.rejected
        assert (c.epoch, c.sites) == before
        # The current lease holder still runs fine.
        report = c.run_epoch(np.random.default_rng(0), lease=2)
        assert "stale" not in report.verdict.reason
        assert not report.rejected


class TestDegradedEpochs:
    def test_unreachable_site_summaries_are_discarded(self):
        c = make_controller()
        feed(c, 0, [40.0, 40.0])
        feed(c, 1, [-40.0, -40.0])
        report = c.run_epoch(np.random.default_rng(0), reachable=[0])
        assert report.degraded
        assert report.reachable_sites == (0,)
        assert report.stale_summaries_dropped == 1
        # Site 1's summary was reset, not deferred: a follow-up epoch
        # with full visibility sees nothing from it.
        follow_up = c.run_epoch(np.random.default_rng(0))
        assert follow_up.accesses == 0

    def test_stale_drop_counts_sites_not_summary_objects(self):
        # Write-aware mode keeps two summary streams per site; a site
        # with both read and write data still counts once when dropped.
        c = make_controller(write_aware=True)
        feed(c, 0, [40.0, 40.0])
        feed(c, 1, [-40.0, -40.0])
        rng = np.random.default_rng(7)
        for _ in range(5):
            c.record_access(1, np.asarray([-40.0, -40.0])
                            + rng.normal(size=2), kind="write")
        report = c.run_epoch(np.random.default_rng(0), reachable=[0])
        assert report.stale_summaries_dropped == 1

    def test_no_reachable_sites_is_a_noop_epoch(self):
        c = make_controller()
        feed(c, 0, [40.0, 40.0])
        report = c.run_epoch(np.random.default_rng(0), reachable=[])
        assert report.verdict.reason == "no reachable summaries this epoch"
        assert report.proposed_sites == report.previous_sites

    def test_insufficient_eligible_candidates_blocks_migration(self):
        c = make_controller(k=2)
        feed(c, 0, [40.0, 40.0])
        report = c.run_epoch(np.random.default_rng(0), eligible=[3])
        assert not report.migrated
        assert "reachable candidates" in report.verdict.reason
        assert c.sites == report.previous_sites

    def test_migration_never_targets_ineligible_candidate(self):
        c = make_controller(n_dc=8, k=2)
        for _ in range(3):
            feed(c, c.sites[0], [60.0, 60.0])
            feed(c, c.sites[1], [-60.0, -60.0])
            eligible = [0, 1, 2, 3]
            report = c.run_epoch(np.random.default_rng(1),
                                 eligible=eligible)
            assert set(report.proposed_sites) <= set(eligible)
            assert set(c.sites) <= set(eligible)

    def test_eligible_positions_validated(self):
        c = make_controller(n_dc=4)
        feed(c, 0, [40.0, 40.0])
        with pytest.raises(ValueError, match="outside candidates"):
            c.run_epoch(np.random.default_rng(0), eligible=[99])


# ----------------------------------------------------------------------
# Store: coordinator failover + retry machinery
# ----------------------------------------------------------------------
class TestStoreFailover:
    def test_healthy_coordinator_is_first_candidate(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[1, 2])
        assert store.current_coordinator("obj") == 0

    def test_dead_coordinator_fails_over_to_replica_holder(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[1, 3])
        store.network.set_down(0)
        assert store.current_coordinator("obj") == 1
        store.network.set_down(1)
        assert store.current_coordinator("obj") == 3
        store.network.set_up(0)
        assert store.current_coordinator("obj") == 0

    def test_partitioned_coordinator_is_skipped(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[1, 3])
        # Node 0 is up but unreachable from every replica holder.
        FailureInjector(store.network).partition_now([0])
        assert store.current_coordinator("obj") == 1

    def test_epoch_under_failover_records_new_coordinator(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[1, 3],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        store.network.set_down(0)
        report = store.run_epoch("obj")
        controller = store.controller("obj")
        assert report.coordinator == store.candidates.index(1)
        assert controller.coordinator == store.candidates.index(1)

    def test_unreachable_candidates_are_ineligible(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[0, 1],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        FailureInjector(store.network).partition_now([3, 4])
        coords = store.planar_coords()
        store.controller("obj").record_access(0, coords[10])
        report = store.run_epoch("obj")
        assert report.degraded
        assert set(report.proposed_sites) <= {0, 1, 2}


class TestSummaryRetry:
    def test_delivered_summary_clears_pending_without_retry(self):
        sim, store = build_store(retry_policy=RetryPolicy(timeout_ms=500.0))
        store.create_object("obj", initial_sites=[1, 2],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        coords = store.planar_coords()
        store.controller("obj").record_access(1, coords[10])
        store.run_epoch("obj")
        sim.run_until(5_000.0)
        assert store.summary_retries == 0
        assert store.summaries_lost == 0
        assert not store._units["obj"].pending_summaries

    def test_lost_summary_retries_then_gives_up(self):
        # A fully lossy link (as opposed to a cut one, which excludes
        # the site from ``reachable`` before anything ships): the
        # summary is sent, times out, retries, and is finally counted
        # as lost.
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=3,
                             base_backoff_ms=100.0, jitter=0.0)
        sim, store = build_store(retry_policy=policy)
        store.create_object("obj", initial_sites=[1, 2],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        store.network.set_link_loss(1, 0, 1.0)
        coords = store.planar_coords()
        store.controller("obj").record_access(1, coords[10])
        store.run_epoch("obj")
        sim.run_until(60_000.0)
        assert store.summary_retries == policy.max_attempts - 1
        assert store.summaries_lost == 1
        assert not store._units["obj"].pending_summaries

    def test_stale_epoch_copy_does_not_ack_current_shipment(self):
        # Epoch 1's summary is still in flight when epoch 2 supersedes
        # it; epoch 2's copy is lost at send.  The late epoch-1 copy
        # carries an older shipment id, so it must not cancel epoch 2's
        # pending entry — the loss stays observable.
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=3,
                             base_backoff_ms=100.0, jitter=0.0)
        sim, store = build_store(retry_policy=policy)
        store.create_object("obj", initial_sites=[1, 2],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        coords = store.planar_coords()
        store.controller("obj").record_access(1, coords[10])
        store.run_epoch("obj")                   # epoch 1: copy in flight
        store.network.set_link_loss(1, 0, 1.0)   # epoch 2 loses every copy
        store.controller("obj").record_access(1, coords[10])
        store.run_epoch("obj")
        sim.run_until(60_000.0)
        assert store.summaries_lost == 1
        assert store.summary_retries == policy.max_attempts - 1
        assert not store._units["obj"].pending_summaries

    def test_summary_traffic_charge_matches_report_under_partition(self):
        # Only the reachable holders ship, so the per-shipper charge
        # divides by the shippers, not the full previous replica set.
        sim, store = build_store()
        store.create_object("obj", initial_sites=[1, 2],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        coords = store.planar_coords()
        store.controller("obj").record_access(1, coords[10])
        store.controller("obj").record_access(2, coords[11])
        FailureInjector(store.network).partition_now([2])
        shipped = []
        original = store._ship_summary
        store._ship_summary = (
            lambda unit, site, coordinator, size_bytes:
            (shipped.append((site, size_bytes)),
             original(unit, site, coordinator, size_bytes))[-1])
        report = store.run_epoch("obj")
        assert report.summary_bytes > 1
        assert shipped == [(1, report.summary_bytes)]

    def test_flaky_summary_link_eventually_delivers(self):
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=6,
                             base_backoff_ms=50.0, jitter=0.25)
        sim, store = build_store(retry_policy=policy)
        store.create_object("obj", initial_sites=[1, 2],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        store.network.set_link_loss(1, 0, 0.7)
        coords = store.planar_coords()
        lost = 0
        for trial in range(8):
            store.controller("obj").record_access(1, coords[10])
            store.run_epoch("obj")
            sim.run_until(sim.now + 60_000.0)
            lost += store.summaries_lost
        # With 6 attempts at 70% loss, essentially every epoch's summary
        # lands eventually; retries must have been consumed doing it.
        assert store.summary_retries > 0
        assert lost <= 2


class TestMigrationRetry:
    def _migrating_store(self, policy):
        sim, store = build_store(retry_policy=policy)
        store.create_object("obj", initial_sites=[0, 1],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        return sim, store

    def test_blocked_transfer_retries_and_rolls_back(self):
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=3,
                             base_backoff_ms=100.0, jitter=0.0)
        sim, store = self._migrating_store(policy)
        unit = store._units["obj"]
        # Cut every path into node 4, then force a migration onto it.
        for source in store.candidates:
            if source != 4:
                store.network.set_link_down(source, 4, symmetric=False)
        unit.controller.on_migrate((0, 1), (0, 4))
        sim.run_until(120_000.0)
        assert store.migration_retries == policy.max_attempts - 1
        assert store.migrations_abandoned == 1
        assert store.migration_rollbacks == 1
        # Degree preserved: the rollback kept an old site instead.
        assert unit.installed == {0, 1}
        assert unit.target is None and not unit.awaiting
        assert not unit.pending_transfers
        # The controller was re-synced to reality.
        assert set(unit.controller.sites) == {
            store.candidates.index(0), store.candidates.index(1)}

    def test_transfer_succeeds_after_transient_cut(self):
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=5,
                             base_backoff_ms=200.0, jitter=0.0)
        sim, store = self._migrating_store(policy)
        unit = store._units["obj"]
        for source in store.candidates:
            if source != 4:
                store.network.set_link_down(source, 4, symmetric=False)
        unit.controller.on_migrate((0, 1), (0, 4))
        # Heal before the budget runs out: a later retry gets through.
        sim.schedule_at(900.0, lambda: [
            store.network.set_link_up(source, 4, symmetric=False)
            for source in store.candidates])
        sim.run_until(120_000.0)
        assert store.migration_retries >= 1
        assert store.migrations_abandoned == 0
        assert unit.installed == {0, 4}

    def test_duplicate_delivery_after_finalize_is_harmless(self):
        # Delivery slower than the timeout: the original and the retry
        # both arrive.  The first finalizes the migration; the straggler
        # must not re-finalize (it used to trip the finalize assertion).
        sim, store = build_store()
        store.create_object("obj", initial_sites=[0, 1],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        unit = store._units["obj"]
        lat = store.network.matrix.one_way
        source = min((0, 1), key=lambda s: store.network.matrix.latency(s, 4))
        delay = lat(source, 4)
        assert delay > 1.0  # sanity: the timings below rely on it
        store.retry_policy = RetryPolicy(
            timeout_ms=0.4 * delay, max_attempts=3,
            base_backoff_ms=0.25 * delay, jitter=0.0)
        unit.controller.on_migrate((0, 1), (0, 4))
        sim.run_until(60_000.0)
        assert store.migration_retries == 1
        assert store.migrations_abandoned == 0
        assert unit.installed == {0, 4}
        assert unit.target is None and not unit.pending_transfers
        assert store.servers[4].holds_unit(unit)

    def test_late_copy_after_rollback_does_not_resurrect_replica(self):
        # The attempt budget runs out (and the migration rolls back)
        # while the copies are still in flight; when they land, the
        # abandoned target must stay empty instead of becoming an
        # untracked replica (or re-finalizing a settled migration).
        policy = RetryPolicy(timeout_ms=1.0, max_attempts=2,
                             base_backoff_ms=1.0, jitter=0.0)
        sim, store = build_store(retry_policy=policy)
        store.create_object("obj", initial_sites=[0, 1],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        unit = store._units["obj"]
        unit.controller.on_migrate((0, 1), (0, 4))
        sim.run_until(60_000.0)
        assert store.migrations_abandoned == 1
        assert store.migration_rollbacks == 1
        assert unit.installed == {0, 1}
        assert unit.target is None and not unit.awaiting
        assert not store.servers[4].replicas

    def test_no_retry_policy_preserves_fire_and_forget(self):
        sim, store = build_store()
        store.create_object("obj", initial_sites=[0, 1],
                            controller_config=ControllerConfig(
                                k=2, max_micro_clusters=5))
        unit = store._units["obj"]
        for source in store.candidates:
            if source != 4:
                store.network.set_link_down(source, 4, symmetric=False)
        unit.controller.on_migrate((0, 1), (0, 4))
        sim.run_until(60_000.0)
        # Legacy behaviour: the transfer is simply lost, no counters.
        assert store.migration_retries == 0
        assert store.migrations_abandoned == 0
        assert unit.awaiting == {4}


# ----------------------------------------------------------------------
# Scenario parsing
# ----------------------------------------------------------------------
class TestScenarioParsing:
    def test_bundled_examples_parse(self):
        import os
        base = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "chaos")
        for name in ("smoke", "single_dc_outage", "coordinator_crash",
                     "partition_60_40"):
            scenario = load_scenario(os.path.join(base, f"{name}.toml"))
            assert scenario.faults, name

    def test_json_round_trip(self, tmp_path):
        payload = {
            "name": "t", "seed": 3, "runs": 1,
            "world": {"n_nodes": 30, "n_dc": 6},
            "object": {"k": 2},
            "faults": [{"kind": "crash", "at": 1_000.0, "node": 1}],
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload))
        scenario = load_scenario(str(path))
        assert scenario.n_dc == 6 and scenario.k == 2
        assert scenario.faults[0] == FaultSpec(kind="crash", at=1_000.0,
                                               node=1)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown \\[world\\] fields"):
            _parse_scenario({"world": {"bogus": 1}}, "test")
        with pytest.raises(ValueError, match="top-level"):
            _parse_scenario({"bogus": 1}, "test")
        with pytest.raises(ValueError, match="does not accept"):
            _parse_scenario(
                {"faults": [{"kind": "crash", "at": 1.0, "node": 0,
                             "loss": 0.5}]}, "test")

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", at=0.0)
        with pytest.raises(ValueError, match="needs a 'node'"):
            FaultSpec(kind="crash", at=0.0)
        with pytest.raises(ValueError, match="'until'"):
            FaultSpec(kind="crash", at=10.0, node=0, until=5.0)
        with pytest.raises(ValueError, match="group_a"):
            FaultSpec(kind="partition", at=0.0)
        with pytest.raises(ValueError, match="loss"):
            FaultSpec(kind="flaky-link", at=0.0, a=0, b=1)

    def test_scenario_cross_validation(self):
        with pytest.raises(ValueError, match="candidate position"):
            ChaosScenario(n_dc=4, faults=(
                FaultSpec(kind="crash", at=1_000.0, node=9),))
        with pytest.raises(ValueError, match="beyond the"):
            ChaosScenario(duration_ms=1_000.0, settle_ms=0.0, faults=(
                FaultSpec(kind="crash", at=5_000.0, node=0),))

    def test_unsupported_extension_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("name: nope")
        with pytest.raises(ValueError, match="unsupported"):
            load_scenario(str(path))
