"""Unit tests for repro.core.macro (Algorithm 1)."""

import numpy as np
import pytest

from repro.clustering import ClusterFeature
from repro.core import estimate_average_delay, macro_cluster, place_replicas


def cf(point, count=1, weight=None):
    cluster = ClusterFeature.from_point(np.asarray(point, dtype=float),
                                        weight=weight if weight is not None else 1.0)
    for _ in range(count - 1):
        cluster.absorb(np.asarray(point, dtype=float),
                       weight=weight if weight is not None else 1.0)
    return cluster


class TestMacroCluster:
    def test_three_populations_recovered(self):
        micros = [
            cf([0.0, 0.0], count=10), cf([1.0, 0.0], count=10),
            cf([100.0, 0.0], count=10), cf([101.0, 0.0], count=10),
            cf([0.0, 100.0], count=10), cf([0.0, 101.0], count=10),
        ]
        macros = macro_cluster(micros, 3, np.random.default_rng(0))
        assert len(macros) == 3
        centroids = sorted(tuple(np.round(m.centroid, 0)) for m in macros)
        assert centroids == [(0.0, 0.0), (0.0, 100.0), (100.0, 0.0)]
        assert all(m.count == 20 for m in macros)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="micro-clusters"):
            macro_cluster([], 3)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="positive"):
            macro_cluster([cf([0, 0])], 0)

    def test_count_weighting_pulls_centroid(self):
        micros = [cf([0.0, 0.0], count=9), cf([10.0, 0.0], count=1)]
        macros = macro_cluster(micros, 1, np.random.default_rng(0))
        assert macros[0].centroid[0] == pytest.approx(1.0)
        assert macros[0].count == 10

    def test_bytes_weighting_mode(self):
        micros = [cf([0.0, 0.0], weight=9.0), cf([10.0, 0.0], weight=1.0)]
        macros = macro_cluster(micros, 1, np.random.default_rng(0),
                               use_bytes_weight=True)
        assert macros[0].centroid[0] == pytest.approx(1.0)

    def test_zero_weights_fall_back_to_uniform(self):
        micros = [cf([0.0, 0.0], weight=0.0), cf([10.0, 0.0], weight=0.0)]
        macros = macro_cluster(micros, 1, np.random.default_rng(0),
                               use_bytes_weight=True)
        assert macros[0].centroid[0] == pytest.approx(5.0)


class TestPlaceReplicas:
    def setup_method(self):
        self.dc_coords = np.array([
            [0.0, 0.0], [100.0, 0.0], [0.0, 100.0], [50.0, 50.0], [200.0, 200.0],
        ])

    def test_each_population_gets_nearest_dc(self):
        micros = [
            cf([2.0, 1.0], count=50),
            cf([98.0, 1.0], count=50),
            cf([1.0, 99.0], count=50),
        ]
        decision = place_replicas(micros, 3, self.dc_coords,
                                  np.random.default_rng(0))
        assert sorted(decision.data_centers) == [0, 1, 2]
        assert len(decision.macro_clusters) == 3

    def test_sites_are_distinct_under_contention(self):
        # Two heavy populations both closest to DC 0.
        micros = [cf([1.0, 0.0], count=100), cf([0.0, 1.0], count=50)]
        decision = place_replicas(micros, 2, self.dc_coords,
                                  np.random.default_rng(0))
        assert len(set(decision.data_centers)) == 2
        assert 0 in decision.data_centers

    def test_heaviest_macro_wins_contended_site(self):
        micros = [cf([1.0, 0.0], count=100), cf([0.0, 1.0], count=50)]
        decision = place_replicas(micros, 2, self.dc_coords,
                                  np.random.default_rng(0))
        # The count-100 macro-cluster is processed first and takes DC 0.
        first_macro = decision.macro_clusters[0]
        assert first_macro.count == 100
        assert decision.data_centers[0] == 0

    def test_k_capped_by_candidates(self):
        micros = [cf([0.0, 0.0], count=10)]
        dc = np.array([[0.0, 0.0], [10.0, 10.0]])
        decision = place_replicas(micros, 5, dc, np.random.default_rng(0))
        assert len(decision.data_centers) == 2

    def test_padding_when_fewer_macros_than_k(self):
        # One point population, k=3: placement must still return 3 sites.
        micros = [cf([0.0, 0.0], count=10)]
        decision = place_replicas(micros, 3, self.dc_coords,
                                  np.random.default_rng(0))
        assert len(decision.data_centers) == 3
        assert len(set(decision.data_centers)) == 3
        assert decision.data_centers[0] == 0  # nearest to the population

    def test_rejects_no_candidates(self):
        with pytest.raises(ValueError, match="candidate"):
            place_replicas([cf([0, 0])], 1, np.empty((0, 2)))

    def test_predicted_delay_weighted_mean(self):
        micros = [cf([0.0, 0.0], count=3), cf([100.0, 0.0], count=1)]
        dc = np.array([[0.0, 0.0]])
        decision = place_replicas(micros, 1, dc, np.random.default_rng(0))
        # 3 accesses at distance 0, 1 access at distance 100.
        assert decision.predicted_delay == pytest.approx(25.0)


class TestEstimateAverageDelay:
    def test_nearest_replica_rule(self):
        micros = [cf([0.0, 0.0], count=1), cf([100.0, 0.0], count=1)]
        replicas = np.array([[0.0, 0.0], [100.0, 0.0]])
        assert estimate_average_delay(micros, replicas) == pytest.approx(0.0)

    def test_count_weighting(self):
        micros = [cf([0.0, 0.0], count=1), cf([10.0, 0.0], count=3)]
        replicas = np.array([[0.0, 0.0]])
        assert estimate_average_delay(micros, replicas) == pytest.approx(7.5)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError, match="micro-clusters"):
            estimate_average_delay([], np.zeros((1, 2)))
        with pytest.raises(ValueError, match="replica"):
            estimate_average_delay([cf([0, 0])], np.empty((0, 2)))

    def test_fractional_counts_from_decay_supported(self):
        # After exponential decay, counts become fractional; the
        # weighted mean must still be exact.
        a = ClusterFeature(0.5, 0.5, np.array([0.0, 0.0]), np.zeros(2))
        b = ClusterFeature(1.5, 1.5, np.array([15.0, 0.0]), np.array([150.0, 0.0]))
        replicas = np.array([[0.0, 0.0]])
        # b's centroid is 15/1.5 = 10; weights 0.5 and 1.5.
        value = estimate_average_delay([a, b], replicas)
        assert value == pytest.approx((0.5 * 0.0 + 1.5 * 10.0) / 2.0)
