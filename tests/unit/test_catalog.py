"""Unit tests for the sharded catalog and its migration budget."""

import numpy as np
import pytest

from repro.catalog import (
    MigrationBudget,
    PlacementGroups,
    ShardedCatalog,
    keyspace,
)
from repro.coords import EuclideanSpace, embed_matrix
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore


def build_store(seed=0, n=20, n_dc=5):
    matrix = small_matrix(n=n, seed=seed)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, tuple(range(n_dc)), coords,
                            selection="oracle")
    return sim, store


class TestMigrationBudget:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            MigrationBudget(-1, 1000.0)
        with pytest.raises(ValueError, match="window"):
            MigrationBudget(5, 0.0)

    def test_charge_and_window_roll(self):
        budget = MigrationBudget(5, window_ms=1000.0)
        assert budget.remaining(100.0) == 5
        budget.charge(100.0, 3)
        assert budget.remaining(900.0) == 2
        budget.charge(900.0, 4)            # overdraw clamps at zero
        assert budget.remaining(950.0) == 0
        # A new window refills the pool; the grand total keeps counting.
        assert budget.remaining(1_100.0) == 5
        assert budget.total_granted == 7


class TestShardedCatalogConstruction:
    def test_basic_sharding(self):
        _, store = build_store()
        catalog = ShardedCatalog(store, keyspace(40), n_shards=4, k=2)
        assert catalog.n_keys == 40
        assert catalog.n_groups == 40
        assert catalog.n_shards == 4
        assert sorted(catalog.keys()) == list(keyspace(40))
        assert sum(s.n_keys for s in catalog.shards) == 40
        for key in keyspace(40):
            shard = catalog.shard_of_key(key)
            assert key in catalog.shards[shard].unit_keys

    def test_groups_fold_keys_into_units(self):
        _, store = build_store()
        keys = keyspace(20)
        catalog = ShardedCatalog(store, keys, n_shards=2,
                                 groups=PlacementGroups.chunked(keys, 5),
                                 k=2)
        assert catalog.n_groups == 4
        assert len(store.unit_keys()) == 4
        # All members of a group live on the same shard as their unit.
        for key in keys:
            unit = catalog.groups.group_of(key)
            assert catalog.shard_of_key(key) == \
                catalog.ring.shard_of(unit)

    def test_home_coordinators_assigned_round_robin(self):
        _, store = build_store(n_dc=3)
        catalog = ShardedCatalog(store, keyspace(12), n_shards=5, k=2)
        homes = [catalog.shard_coordinator(s) for s in range(5)]
        assert homes == [store.candidates[s % 3] for s in range(5)]
        # Every unit's elected coordinator starts at its shard's home.
        for shard in catalog.shards:
            for unit in shard.unit_keys:
                assert store.current_coordinator(unit) == shard.home

    def test_validation(self):
        _, store = build_store()
        with pytest.raises(ValueError, match="at least one key"):
            ShardedCatalog(store, [])
        with pytest.raises(ValueError, match="distinct"):
            ShardedCatalog(store, ["a", "a"])
        with pytest.raises(ValueError, match="stagger"):
            ShardedCatalog(store, ["a"], epoch_stagger=1.5)
        with pytest.raises(ValueError, match="epoch period"):
            ShardedCatalog(store, ["a"], max_epoch_moves=4)
        with pytest.raises(ValueError, match="partition"):
            ShardedCatalog(store, ["a", "b"],
                           groups=PlacementGroups.singletons(["a"]))

    def test_adopt_epoch_process_refuses_double_clock(self):
        _, store = build_store()
        store.create_object("obj", k=2, epoch_period_ms=1_000.0)
        with pytest.raises(ValueError, match="epoch clock"):
            store.adopt_epoch_process("obj", object())

    def test_invalid_home_coordinator_rejected(self):
        _, store = build_store()
        with pytest.raises(ValueError, match="home coordinator"):
            store.create_object("obj", k=2, home_coordinator=999)


class TestCatalogEpochs:
    def test_epochs_fire_and_stats_accumulate(self):
        sim, store = build_store()
        catalog = ShardedCatalog(store, keyspace(8), n_shards=2, k=2,
                                 epoch_period_ms=1_000.0,
                                 epoch_stagger=1.0)
        sim.run_until(5_500.0)
        stats = catalog.shard_stats()
        assert sum(row["epochs"] for row in stats) > 0
        assert {row["shard"] for row in stats} == {0, 1}
        for row in stats:
            assert set(row) == {"shard", "home", "groups", "keys",
                                "epochs", "moves", "failovers"}

    def test_stop_halts_epoch_clocks(self):
        sim, store = build_store()
        catalog = ShardedCatalog(store, keyspace(4), k=2,
                                 epoch_period_ms=1_000.0)
        sim.run_until(2_500.0)
        before = sum(s.epochs for s in catalog.shards)
        assert before > 0
        catalog.stop()
        sim.run_until(9_500.0)
        assert sum(s.epochs for s in catalog.shards) == before

    def test_zero_budget_blocks_all_moves(self):
        sim, store = build_store()
        catalog = ShardedCatalog(store, keyspace(12), n_shards=3, k=2,
                                 epoch_period_ms=1_000.0,
                                 epoch_stagger=1.0,
                                 max_epoch_moves=0)
        # Drive some traffic so controllers would otherwise migrate.
        from repro.workloads import AccessWorkload, ClientPopulation
        clients = [c for c in range(store.network.matrix.n)
                   if c not in store.candidates]
        AccessWorkload(store, ClientPopulation.uniform(clients),
                       list(catalog.keys()), rate_per_second=200.0)
        sim.run_until(10_000.0)
        assert sum(s.epochs for s in catalog.shards) > 0
        assert sum(s.moves for s in catalog.shards) == 0
        assert catalog.budget.total_granted == 0

    def test_budget_caps_moves_per_window(self):
        sim, store = build_store()
        limit = 2
        catalog = ShardedCatalog(store, keyspace(12), n_shards=3, k=2,
                                 epoch_period_ms=1_000.0,
                                 epoch_stagger=1.0,
                                 max_epoch_moves=limit)
        from repro.workloads import AccessWorkload, ClientPopulation
        clients = [c for c in range(store.network.matrix.n)
                   if c not in store.candidates]
        AccessWorkload(store, ClientPopulation.uniform(clients),
                       list(catalog.keys()), rate_per_second=200.0)
        horizon = 10_000.0
        sim.run_until(horizon)
        windows = int(horizon / 1_000.0) + 1
        assert catalog.budget.total_granted <= limit * windows
