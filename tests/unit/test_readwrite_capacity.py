"""Unit tests for read/write-aware placement and capacity constraints."""

import numpy as np
import pytest

from repro.clustering import ClusterFeature
from repro.core import estimate_rw_cost, place_replicas, place_replicas_rw


def cf(point, count=1):
    cluster = ClusterFeature.from_point(np.asarray(point, dtype=float))
    for _ in range(count - 1):
        cluster.absorb(np.asarray(point, dtype=float))
    return cluster


LINE_DCS = np.array([[float(x), 0.0] for x in (0, 25, 50, 75, 100)])


class TestEstimateRWCost:
    def test_read_only_matches_plain_estimator(self):
        from repro.core import estimate_average_delay
        reads = [cf([10.0, 0.0], count=4), cf([90.0, 0.0], count=2)]
        replicas = np.array([[0.0, 0.0], [100.0, 0.0]])
        combined, read_mean, write_mean = estimate_rw_cost(reads, [], replicas)
        assert combined == pytest.approx(
            estimate_average_delay(reads, replicas))
        assert write_mean == 0.0
        assert read_mean == pytest.approx(combined)

    def test_write_cost_includes_propagation(self):
        writes = [cf([0.0, 0.0], count=1)]
        replicas = np.array([[10.0, 0.0], [110.0, 0.0]])
        combined, _, write_mean = estimate_rw_cost([], writes, replicas)
        # Writer -> nearest replica (10) + mean fan-out (100).
        assert write_mean == pytest.approx(110.0)
        assert combined == pytest.approx(110.0)

    def test_single_replica_has_no_propagation(self):
        writes = [cf([0.0, 0.0], count=1)]
        replicas = np.array([[10.0, 0.0]])
        _, _, write_mean = estimate_rw_cost([], writes, replicas)
        assert write_mean == pytest.approx(10.0)

    def test_counts_weight_the_combination(self):
        reads = [cf([0.0, 0.0], count=3)]   # read cost 10 each
        writes = [cf([0.0, 0.0], count=1)]  # write cost 10 (single replica)
        replicas = np.array([[10.0, 0.0]])
        combined, read_mean, write_mean = estimate_rw_cost(reads, writes,
                                                           replicas)
        assert combined == pytest.approx(10.0)
        assert read_mean == pytest.approx(10.0)
        assert write_mean == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="micro-clusters"):
            estimate_rw_cost([], [], np.zeros((1, 2)))
        with pytest.raises(ValueError, match="replica"):
            estimate_rw_cost([cf([0, 0])], [], np.empty((0, 2)))


class TestPlaceReplicasRW:
    def test_read_only_spreads_replicas(self):
        reads = [cf([0.0, 0.0], count=10), cf([100.0, 0.0], count=10)]
        decision = place_replicas_rw(reads, [], 2, LINE_DCS,
                                     np.random.default_rng(0))
        assert sorted(decision.data_centers) == [0, 4]

    def test_write_heavy_pulls_replicas_together(self):
        # Same reader geography, but massive write traffic from the
        # center: propagation cost punishes the spread placement.
        reads = [cf([0.0, 0.0], count=2), cf([100.0, 0.0], count=2)]
        writes = [cf([50.0, 0.0], count=50)]
        decision = place_replicas_rw(reads, writes, 2, LINE_DCS,
                                     np.random.default_rng(0))
        chosen = sorted(decision.data_centers)
        spread = LINE_DCS[chosen[1], 0] - LINE_DCS[chosen[0], 0]
        assert spread <= 50.0  # strictly tighter than the read-only [0, 100]
        # And the write cost estimate reflects the compact layout.
        assert decision.predicted_write_delay < 60.0

    def test_more_writes_never_widen_the_placement(self):
        reads = [cf([0.0, 0.0], count=5), cf([100.0, 0.0], count=5)]
        spreads = []
        for write_count in (1, 20, 200):
            writes = [cf([50.0, 0.0], count=write_count)]
            decision = place_replicas_rw(reads, writes, 2, LINE_DCS,
                                         np.random.default_rng(0))
            chosen = sorted(decision.data_centers)
            spreads.append(LINE_DCS[chosen[1], 0] - LINE_DCS[chosen[0], 0])
        assert spreads[0] >= spreads[1] >= spreads[2]

    def test_write_only_population_supported(self):
        writes = [cf([50.0, 0.0], count=10)]
        decision = place_replicas_rw([], writes, 1, LINE_DCS,
                                     np.random.default_rng(0))
        assert decision.data_centers == (2,)  # the DC at x=50

    def test_distinct_sites_and_k_cap(self):
        reads = [cf([0.0, 0.0], count=10)]
        decision = place_replicas_rw(reads, [], 9, LINE_DCS,
                                     np.random.default_rng(0))
        assert len(decision.data_centers) == 5
        assert len(set(decision.data_centers)) == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="candidate"):
            place_replicas_rw([cf([0, 0])], [], 1, np.empty((0, 2)))


class TestCapacityConstraints:
    def test_validation(self):
        reads = [cf([0.0, 0.0], count=10)]
        with pytest.raises(ValueError, match="capacities"):
            place_replicas(reads, 1, LINE_DCS,
                           dc_capacities=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            place_replicas(reads, 1, LINE_DCS,
                           dc_capacities=np.zeros(5))

    def test_overloaded_nearest_is_skipped(self):
        # Two equal populations both closest to DC 2 (x=50); capacity 12
        # fits only one of them, so the second goes elsewhere.
        micros = [cf([45.0, 0.0], count=10), cf([55.0, 0.0], count=10)]
        capacities = np.array([100.0, 100.0, 12.0, 100.0, 100.0])
        decision = place_replicas(micros, 2, LINE_DCS,
                                  np.random.default_rng(0),
                                  dc_capacities=capacities,
                                  refine_swaps=False)
        chosen = set(decision.data_centers)
        assert len(chosen) == 2
        # The overloaded site takes at most one population.
        assert chosen != {2}

    def test_unconstrained_behaviour_unchanged(self):
        micros = [cf([2.0, 0.0], count=10), cf([98.0, 0.0], count=10)]
        unconstrained = place_replicas(micros, 2, LINE_DCS,
                                       np.random.default_rng(0))
        roomy = place_replicas(micros, 2, LINE_DCS,
                               np.random.default_rng(0),
                               dc_capacities=np.full(5, 1e9))
        assert sorted(unconstrained.data_centers) == sorted(roomy.data_centers)

    def test_refinement_respects_capacity(self):
        # All demand near x=50; capacity there is tiny, so refinement
        # must not concentrate both replicas around it.
        rng = np.random.default_rng(1)
        micros = [cf([50.0 + float(rng.normal(0, 3)), 0.0], count=5)
                  for _ in range(8)]
        capacities = np.array([100.0, 15.0, 15.0, 15.0, 100.0])
        decision = place_replicas(micros, 2, LINE_DCS,
                                  np.random.default_rng(0),
                                  dc_capacities=capacities)
        # Total demand is 40; sites 1..3 can hold only 15 each, so at
        # least one big site (0 or 4) must be chosen.
        assert set(decision.data_centers) & {0, 4}

    def test_fallback_when_nothing_fits(self):
        # One population larger than every capacity: the roomiest
        # candidate absorbs the overload rather than failing.
        micros = [cf([50.0, 0.0], count=1000)]
        capacities = np.array([10.0, 10.0, 30.0, 10.0, 10.0])
        decision = place_replicas(micros, 1, LINE_DCS,
                                  np.random.default_rng(0),
                                  dc_capacities=capacities,
                                  refine_swaps=False)
        assert decision.data_centers == (2,)
