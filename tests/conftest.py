"""Shared test configuration.

Makes ``python -m pytest`` work from the repository root without the
``PYTHONPATH=src`` incantation by prepending ``src/`` to ``sys.path``
(the documented tier-1 command keeps working — the explicit PYTHONPATH
entry is then simply redundant).
"""

import os
import sys

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src"))
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
