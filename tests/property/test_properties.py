"""Property-based tests (hypothesis) for core data structures/invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.clustering import ClusterFeature, OnlineClusterer, weighted_kmeans
from repro.coords import EuclideanSpace
from repro.core import MigrationCostModel, MigrationPolicy, estimate_average_delay
from repro.net import LatencyMatrix
from repro.placement.base import average_access_delay
from repro.sim import EventQueue

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_coord = st.floats(min_value=-1e4, max_value=1e4,
                         allow_nan=False, allow_infinity=False)
point2 = st.tuples(finite_coord, finite_coord).map(
    lambda t: np.array(t, dtype=float))
points2 = st.lists(point2, min_size=1, max_size=40)
weights = st.floats(min_value=0.0, max_value=1e3,
                    allow_nan=False, allow_infinity=False)


def rtt_matrix(draw, n):
    vals = draw(st.lists(
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
        min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2))
    return LatencyMatrix.from_condensed(vals)


matrix_strategy = st.integers(min_value=3, max_value=12).flatmap(
    lambda n: st.builds(
        LatencyMatrix.from_condensed,
        st.lists(st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
                 min_size=n * (n - 1) // 2, max_size=n * (n - 1) // 2)))


# ----------------------------------------------------------------------
# ClusterFeature
# ----------------------------------------------------------------------
class TestClusterFeatureProperties:
    @given(points2)
    @settings(max_examples=60, deadline=None)
    def test_centroid_is_exact_mean(self, pts):
        cf = ClusterFeature.from_point(pts[0])
        for p in pts[1:]:
            cf.absorb(p)
        assert np.allclose(cf.centroid, np.mean(pts, axis=0), atol=1e-6)

    @given(points2)
    @settings(max_examples=60, deadline=None)
    def test_deviation_matches_numpy(self, pts):
        cf = ClusterFeature.from_point(pts[0])
        for p in pts[1:]:
            cf.absorb(p)
        arr = np.stack(pts)
        expected = float(np.sqrt(np.sum(arr.var(axis=0))))
        # The CF-vector recovers the deviation via E[X^2] - E[X]^2 (the
        # paper's footnote-1 identity), which loses precision by
        # cancellation when the deviation is tiny relative to the
        # magnitude of the coordinates — so the tolerance must scale
        # with that magnitude, not just with the expected deviation.
        magnitude = float(np.sqrt(np.mean(arr ** 2))) or 1.0
        tolerance = 1e-4 * max(expected, magnitude) + 1e-6
        assert abs(cf.deviation - expected) <= tolerance

    @given(points2, points2)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_equivalent_to_union(self, a_pts, b_pts):
        a = ClusterFeature.from_point(a_pts[0])
        for p in a_pts[1:]:
            a.absorb(p)
        b = ClusterFeature.from_point(b_pts[0])
        for p in b_pts[1:]:
            b.absorb(p)
        a.merge(b)
        union = ClusterFeature.from_point(a_pts[0])
        for p in a_pts[1:] + b_pts:
            union.absorb(p)
        assert a.count == union.count
        assert np.allclose(a.linear_sum, union.linear_sum)
        assert np.allclose(a.square_sum, union.square_sum)

    @given(points2)
    @settings(max_examples=60, deadline=None)
    def test_deviation_never_negative(self, pts):
        cf = ClusterFeature.from_point(pts[0])
        for p in pts[1:]:
            cf.absorb(p)
        assert cf.deviation >= 0.0


# ----------------------------------------------------------------------
# OnlineClusterer
# ----------------------------------------------------------------------
class TestOnlineClustererProperties:
    @given(points2, st.integers(min_value=1, max_value=8),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_budget_and_conservation(self, pts, m, floor):
        clusterer = OnlineClusterer(m, radius_floor=floor)
        for p in pts:
            clusterer.add(p)
        assert len(clusterer) <= m
        assert clusterer.total_count == len(pts)
        # Total linear sum is conserved exactly.
        total = sum((c.linear_sum for c in clusterer),
                    start=np.zeros(2))
        assert np.allclose(total, np.sum(np.stack(pts), axis=0), atol=1e-6)

    @given(points2, st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_centroid_cache_consistent(self, pts, m):
        clusterer = OnlineClusterer(m, radius_floor=1.0)
        for p in pts:
            clusterer.add(p)
        cache = clusterer._centroid_cache
        assert cache is not None
        assert cache.shape == (len(clusterer), 2)
        for row, cluster in zip(cache, clusterer.clusters):
            assert np.allclose(row, cluster.centroid, atol=1e-9)


# ----------------------------------------------------------------------
# Weighted k-means
# ----------------------------------------------------------------------
class TestKMeansProperties:
    @given(points2, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_labels_valid_and_inertia_nonnegative(self, pts, k):
        arr = np.stack(pts)
        result = weighted_kmeans(arr, k, rng=np.random.default_rng(0))
        assert result.inertia >= 0.0
        assert result.labels.shape == (len(pts),)
        assert result.labels.min() >= 0
        assert result.labels.max() < result.k

    @given(points2)
    @settings(max_examples=40, deadline=None)
    def test_k1_centroid_is_weighted_mean(self, pts):
        arr = np.stack(pts)
        w = np.arange(1.0, len(pts) + 1.0)
        result = weighted_kmeans(arr, 1, weights=w,
                                 rng=np.random.default_rng(0))
        expected = np.average(arr, axis=0, weights=w)
        assert np.allclose(result.centroids[0], expected, atol=1e-6)


# ----------------------------------------------------------------------
# Coordinate spaces
# ----------------------------------------------------------------------
class TestSpaceProperties:
    @given(point2, point2)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetry_and_identity(self, a, b):
        space = EuclideanSpace(2)
        assert space.distance(a, b) == space.distance(b, a)
        assert space.distance(a, a) == 0.0

    @given(point2, point2, point2)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        space = EuclideanSpace(2)
        assert (space.distance(a, c)
                <= space.distance(a, b) + space.distance(b, c) + 1e-6)

    @given(point2, point2,
           st.floats(min_value=0, max_value=100, allow_nan=False),
           st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_height_distance_exceeds_planar(self, a, b, ha, hb):
        planar = EuclideanSpace(2)
        heighted = EuclideanSpace(2, use_height=True)
        pa = np.append(a, ha)
        pb = np.append(b, hb)
        assert (heighted.distance(pa, pb)
                >= planar.distance(a, b) - 1e-9)


# ----------------------------------------------------------------------
# Placement / delays
# ----------------------------------------------------------------------
class TestDelayProperties:
    @given(matrix_strategy, st.data())
    @settings(max_examples=40, deadline=None)
    def test_more_sites_never_increase_delay(self, matrix, data):
        n = matrix.n
        sites = data.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                   max_size=n, unique=True))
        clients = list(range(n))
        full = average_access_delay(matrix, clients, sites)
        sub = average_access_delay(matrix, clients, sites[:1])
        assert full <= sub + 1e-9

    @given(matrix_strategy)
    @settings(max_examples=40, deadline=None)
    def test_delay_bounded_by_matrix_extremes(self, matrix):
        clients = list(range(matrix.n))
        delay = average_access_delay(matrix, clients, [0])
        assert 0.0 <= delay <= matrix.rtt.max() + 1e-9


# ----------------------------------------------------------------------
# Migration policy
# ----------------------------------------------------------------------
class TestMigrationProperties:
    @given(st.floats(min_value=0, max_value=1e4, allow_nan=False),
           st.floats(min_value=0, max_value=1e4, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_never_migrates_to_worse_placement(self, current, proposed):
        policy = MigrationPolicy(min_relative_gain=0.0,
                                 min_absolute_gain_ms=0.0)
        verdict = policy.decide(current, proposed, MigrationCostModel(),
                                (0,), (1,))
        if verdict.migrate:
            assert proposed <= current

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=5, unique=True),
           st.lists(st.integers(0, 20), min_size=1, max_size=5, unique=True))
    @settings(max_examples=80, deadline=None)
    def test_cost_monotone_in_new_sites(self, old, new):
        model = MigrationCostModel(dollars_per_gb=0.1, object_size_gb=1.0)
        cost = model.cost_of_move(old, new)
        assert cost == len(set(new) - set(old)) * 0.1
        assert cost >= 0


# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------
class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_pops_in_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(times)


# ----------------------------------------------------------------------
# estimate_average_delay
# ----------------------------------------------------------------------
class TestEstimateProperties:
    @given(points2, points2)
    @settings(max_examples=40, deadline=None)
    def test_estimate_bounded_by_extremes(self, user_pts, replica_pts):
        micros = [ClusterFeature.from_point(p) for p in user_pts]
        replicas = np.stack(replica_pts)
        est = estimate_average_delay(micros, replicas)
        per_user = [
            min(np.linalg.norm(u - r) for r in replica_pts)
            for u in user_pts
        ]
        assert min(per_user) - 1e-6 <= est <= max(per_user) + 1e-6
