"""Property-based tests (hypothesis) for the co-failure model.

The invariants certified here are the ones the availability objective
leans on:

* joint pair-outage probability is monotone in shared-ancestor depth;
* a domain-disjoint placement never scores higher risk than any other
  placement of the same size (spreading is always weakly safer);
* the risk functional and expected survivors are exactly permutation
  invariant (bitwise — summation order is canonical);
* the exact all-replicas-down probability agrees with the intuition
  that co-located placements die together more often.
"""

from hypothesis import given, settings, strategies as st

from repro.net.domains import FailureDomains

prob = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)


@st.composite
def trees(draw, min_regions=1):
    regions = draw(st.integers(min_value=min_regions, max_value=3))
    dcs_per_region = draw(st.integers(min_value=1, max_value=3))
    racks_per_dc = draw(st.integers(min_value=1, max_value=3))
    n_racks = regions * dcs_per_region * racks_per_dc
    n = draw(st.integers(min_value=n_racks, max_value=2 * n_racks + 4))
    return FailureDomains.contiguous(
        n, regions, dcs_per_region, racks_per_dc,
        p_region=draw(prob), p_dc=draw(prob), p_rack=draw(prob),
        p_node=draw(prob))


@st.composite
def tree_and_placement(draw, min_regions=1, min_size=2):
    domains = draw(trees(min_regions=min_regions))
    size = draw(st.integers(min_value=min(min_size, domains.n),
                            max_value=min(domains.n, 5)))
    sites = draw(st.permutations(range(domains.n)).map(
        lambda p: list(p[:size])))
    return domains, sites


class TestPairMonotonicity:
    @given(trees())
    @settings(max_examples=80, deadline=None)
    def test_p_pair_down_monotone_in_shared_depth(self, domains):
        # Enumerate every pair: deeper shared ancestry may never make
        # the joint outage less likely.
        pairs = [(a, b) for a in range(domains.n)
                 for b in range(a + 1, domains.n)]
        by_depth = sorted(pairs,
                          key=lambda p: domains.shared_depth(*p))
        for (a1, b1), (a2, b2) in zip(by_depth, by_depth[1:]):
            assert (domains.p_pair_down(a1, b1)
                    <= domains.p_pair_down(a2, b2) + 1e-12)

    @given(trees())
    @settings(max_examples=80, deadline=None)
    def test_pair_down_bounded_by_marginals(self, domains):
        for a in range(domains.n):
            for b in range(a + 1, domains.n):
                joint = domains.p_pair_down(a, b)
                marginal = domains.p_down(a)
                # Joint outage can never beat a single marginal, and
                # positive correlation keeps it at or above independence.
                assert joint <= marginal + 1e-12
                assert joint >= marginal * marginal - 1e-12


class TestRiskFunctional:
    @given(tree_and_placement(min_regions=2))
    @settings(max_examples=80, deadline=None)
    def test_disjoint_never_riskier(self, tp):
        domains, sites = tp
        # A placement with every site in a distinct region, if one
        # exists of the same size, is the safest possible.
        regions = sorted(set(domains.region_of.tolist()))
        if len(regions) < len(sites):
            return
        disjoint = [int(domains.members("region", r)[0])
                    for r in regions[:len(sites)]]
        assert (domains.cofailure_risk(disjoint)
                <= domains.cofailure_risk(sites) + 1e-12)

    @given(tree_and_placement(), st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_risk_exactly_permutation_invariant(self, tp, rnd):
        domains, sites = tp
        shuffled = list(sites)
        rnd.shuffle(shuffled)
        # Bitwise equality, not approx: summation order is canonical.
        assert (domains.cofailure_risk(shuffled)
                == domains.cofailure_risk(sites))

    @given(tree_and_placement(), st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_survivors_exactly_permutation_invariant(self, tp, rnd):
        domains, sites = tp
        shuffled = list(sites)
        rnd.shuffle(shuffled)
        assert (domains.expected_survivors(shuffled)
                == domains.expected_survivors(sites))

    @given(tree_and_placement())
    @settings(max_examples=80, deadline=None)
    def test_risk_and_survivors_in_range(self, tp):
        domains, sites = tp
        risk = domains.cofailure_risk(sites)
        assert 0.0 <= risk <= 1.0
        survivors = domains.expected_survivors(sites)
        assert 0.0 <= survivors <= len(sites)


class TestAllDown:
    @given(trees())
    @settings(max_examples=80, deadline=None)
    def test_colocated_at_least_as_deadly_as_spread(self, domains):
        racks = sorted(set(domains.rack_of.tolist()))
        rack_members = domains.members("rack", racks[0])
        if len(rack_members) < 2 or len(racks) < 2:
            return
        packed = list(rack_members[:2])
        spread = [rack_members[0], domains.members("rack", racks[1])[0]]
        assert (domains.prob_all_down(packed)
                >= domains.prob_all_down(spread) - 1e-12)

    @given(tree_and_placement(min_size=1))
    @settings(max_examples=80, deadline=None)
    def test_all_down_bounded_by_single_site(self, tp):
        domains, sites = tp
        value = domains.prob_all_down(sites)
        assert 0.0 <= value <= 1.0
        # Losing every site is at most as likely as losing any one.
        assert value <= domains.p_down(sites[0]) + 1e-12
