"""Property-based tests (hypothesis) for queueing and replica selection.

The invariants pinned here are the ones the differential suite cannot
reach by replaying seeds:

* the FIFO queue's Lindley recursion is monotone in arrival rate —
  compressing every interarrival gap never shrinks any request's wait;
* admission is work-conserving: every offered request is counted as
  exactly one of accepted or rejected, and the bounded queue never
  holds more than its capacity;
* selection strategies are permutation-invariant — the ranking is a
  function of the replica *set* (plus the strategy's own state), never
  of the order the store happens to enumerate it in;
* an EWMA latency tracker always lies within the closed hull of its
  samples (every update is a convex combination).
"""

from hypothesis import given, settings, strategies as st

from repro.store.queueing import DeterministicService, ServerQueue
from repro.store.selection import (
    C3Selection,
    EwmaTracker,
    LeastPendingSelection,
    NearestSelection,
    make_strategy,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
service_times = st.lists(
    st.floats(min_value=0.0, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)
gaps = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)
latencies = st.lists(
    st.floats(min_value=0.01, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=50)


def _waits(arrivals, services):
    """Per-request waiting times through a fresh ServerQueue."""
    queue = ServerQueue()
    waits = []
    for arrival, service in zip(arrivals, services):
        finish = queue.admit(arrival, service)
        waits.append(finish - service - arrival)
    return waits


class _StubStore:
    """Just enough store for strategy.rank(): per-site distance keys."""

    def __init__(self, distances):
        self._distances = distances

    def _distance_keys(self, client, sites):
        return [self._distances[s] for s in sites]


# ----------------------------------------------------------------------
# Queue delay is monotone in arrival rate
# ----------------------------------------------------------------------
@settings(max_examples=80)
@given(gaps=gaps, services=service_times,
       factor=st.floats(min_value=1.0, max_value=20.0, allow_nan=False))
def test_queue_delay_monotone_in_arrival_rate(gaps, services, factor):
    """Compressing every interarrival gap never reduces any wait.

    Dividing all arrival epochs by ``factor >= 1`` multiplies the rate
    by ``factor``; by the Lindley recursion each waiting time is
    non-decreasing under pointwise-shrinking gaps, so the queueing tail
    can only grow with load.
    """
    n = min(len(gaps), len(services))
    arrivals = []
    t = 0.0
    for gap in gaps[:n]:
        t += gap
        arrivals.append(t)
    slow = _waits(arrivals, services[:n])
    fast = _waits([a / factor for a in arrivals], services[:n])
    for wait_slow, wait_fast in zip(slow, fast):
        assert wait_fast >= wait_slow - 1e-9


@settings(max_examples=80)
@given(gaps=gaps, services=service_times)
def test_waits_are_nonnegative_and_fifo(gaps, services):
    """Waits are never negative and departures never reorder."""
    n = min(len(gaps), len(services))
    arrivals, t = [], 0.0
    for gap in gaps[:n]:
        t += gap
        arrivals.append(t)
    queue = ServerQueue()
    last_finish = 0.0
    for arrival, service in zip(arrivals, services[:n]):
        finish = queue.admit(arrival, service)
        assert finish >= arrival + service - 1e-12
        assert finish >= last_finish - 1e-12
        last_finish = finish


# ----------------------------------------------------------------------
# Work conservation under bounded admission
# ----------------------------------------------------------------------
@settings(max_examples=80)
@given(gaps=gaps, services=service_times,
       capacity=st.integers(min_value=1, max_value=4))
def test_work_conservation_offered_splits_exactly(gaps, services, capacity):
    """offered == accepted + rejected, and depth never exceeds capacity."""
    n = min(len(gaps), len(services))
    arrivals, t = [], 0.0
    for gap in gaps[:n]:
        t += gap
        arrivals.append(t)
    queue = ServerQueue()
    for arrival, service in zip(arrivals, services[:n]):
        assert queue.depth(arrival) <= capacity
        queue.admit(arrival, service, capacity)
        assert queue.depth(arrival) <= capacity
    assert queue.offered == n
    assert queue.offered == queue.accepted + queue.rejected


# ----------------------------------------------------------------------
# Selection permutation invariance
# ----------------------------------------------------------------------
site_sets = st.lists(st.integers(min_value=0, max_value=30),
                     min_size=1, max_size=8, unique=True)


@settings(max_examples=80)
@given(sites=site_sets, data=st.data(),
       name=st.sampled_from(["nearest", "least-pending", "c3"]))
def test_rank_is_permutation_invariant(sites, data, name):
    """Ranking depends on the replica set, not its enumeration order.

    Equal-RTT replicas are the sharpest case: every criterion ties and
    only the deterministic site-id tie-break remains, so any order
    sensitivity would surface immediately.
    """
    equal_rtt = data.draw(st.booleans())
    if equal_rtt:
        distances = {s: 25.0 for s in sites}
    else:
        distances = {
            s: data.draw(st.floats(min_value=0.1, max_value=1e3,
                                   allow_nan=False))
            for s in sites
        }
    strategy = make_strategy(name)
    # Feed the strategy an arbitrary history so stateful strategies
    # (pending counts, EWMA trackers) are exercised mid-flight too.
    for s in sites:
        for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
            strategy.note_issued(0, s)
        if data.draw(st.booleans()):
            strategy.note_reply(0, s, data.draw(
                st.floats(min_value=0.1, max_value=500.0, allow_nan=False)))
    store = _StubStore(distances)
    baseline = strategy.rank(0, sorted(sites), store)
    permuted = data.draw(st.permutations(sites))
    assert strategy.rank(0, list(permuted), store) == baseline
    assert sorted(baseline) == sorted(sites)


def test_equal_rtt_relabeling_maps_rankings():
    """Relabeling equal-RTT replicas relabels the ranking identically."""
    sites = [3, 7, 11]
    relabel = {3: 20, 7: 21, 11: 22}
    store = _StubStore({s: 10.0 for s in list(relabel) + list(relabel.values())})
    for name in ("nearest", "least-pending", "c3"):
        strategy = make_strategy(name)
        original = strategy.rank(0, sites, store)
        mapped = strategy.rank(0, [relabel[s] for s in sites], store)
        assert mapped == [relabel[s] for s in original]


def test_least_pending_prefers_idle_replica():
    """The one directional fact permutations cannot check."""
    store = _StubStore({1: 10.0, 2: 50.0})
    strategy = LeastPendingSelection()
    assert strategy.rank(0, [1, 2], store) == [1, 2]
    strategy.note_issued(0, 1)
    assert strategy.rank(0, [1, 2], store) == [2, 1]
    strategy.note_reply(0, 1, 12.0)
    assert strategy.rank(0, [1, 2], store) == [1, 2]


# ----------------------------------------------------------------------
# EWMA bounds
# ----------------------------------------------------------------------
@settings(max_examples=100)
@given(samples=latencies,
       alpha=st.floats(min_value=0.0, max_value=0.999, allow_nan=False))
def test_ewma_bounded_by_observed_extremes(samples, alpha):
    tracker = EwmaTracker(alpha)
    for i, sample in enumerate(samples, start=1):
        value = tracker.update(sample)
        window = samples[:i]
        assert min(window) - 1e-9 <= value <= max(window) + 1e-9
        assert tracker.samples == i


@settings(max_examples=60)
@given(samples=latencies)
def test_c3_tracker_state_is_per_pair(samples):
    """Replies to one (client, server) pair never leak into another."""
    strategy = C3Selection()
    for sample in samples:
        strategy.note_issued(0, 1)
        strategy.note_reply(0, 1, sample)
    assert strategy.tracker(0, 1) is not None
    assert strategy.tracker(0, 2) is None
    assert strategy.tracker(1, 1) is None
    value = strategy.tracker(0, 1).value
    assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


def test_nearest_is_stateless():
    """Lifecycle notifications are free for the bitwise-preserved path."""
    strategy = NearestSelection()
    store = _StubStore({1: 5.0, 2: 3.0})
    before = strategy.rank(0, [1, 2], store)
    strategy.note_issued(0, 2)
    strategy.note_reply(0, 2, 99.0)
    strategy.note_failure(0, [1, 2])
    assert strategy.rank(0, [1, 2], store) == before == [2, 1]
