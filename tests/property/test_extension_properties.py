"""Property-based tests for the extension modules (rw, capacity, replay)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.clustering import ClusterFeature
from repro.core import estimate_rw_cost, place_replicas, place_replicas_rw
from repro.net.bandwidth import LatencyCorrelatedBandwidth, UniformBandwidth

finite_coord = st.floats(min_value=-1e3, max_value=1e3,
                         allow_nan=False, allow_infinity=False)
point2 = st.tuples(finite_coord, finite_coord).map(
    lambda t: np.array(t, dtype=float))
cluster_list = st.lists(
    st.tuples(point2, st.integers(min_value=1, max_value=50)),
    min_size=1, max_size=10,
).map(lambda specs: [_cf(p, c) for p, c in specs])


def _cf(point, count):
    cluster = ClusterFeature.from_point(point)
    for _ in range(count - 1):
        cluster.absorb(point)
    return cluster


dc_array = st.lists(point2, min_size=2, max_size=8, unique_by=lambda p: tuple(p)
                    ).map(np.stack)


class TestRWCostProperties:
    @given(cluster_list, dc_array)
    @settings(max_examples=50, deadline=None)
    def test_read_only_combined_equals_read_mean(self, reads, dcs):
        combined, read_mean, write_mean = estimate_rw_cost(reads, [], dcs)
        assert combined == read_mean
        assert write_mean == 0.0
        assert combined >= 0.0

    @given(cluster_list, cluster_list, dc_array)
    @settings(max_examples=50, deadline=None)
    def test_combined_between_components(self, reads, writes, dcs):
        combined, read_mean, write_mean = estimate_rw_cost(reads, writes, dcs)
        lo, hi = sorted((read_mean, write_mean))
        assert lo - 1e-9 <= combined <= hi + 1e-9

    @given(cluster_list, cluster_list, dc_array)
    @settings(max_examples=50, deadline=None)
    def test_write_cost_at_least_read_cost_of_writers(self, reads, writes, dcs):
        # A write pays its nearest-replica distance plus fan-out, so the
        # write mean is >= what those clients would pay as readers.
        _, _, write_mean = estimate_rw_cost([], writes, dcs)
        read_view, _, _ = estimate_rw_cost(writes, [], dcs)
        assert write_mean >= read_view - 1e-9


class TestRWPlacementProperties:
    @given(cluster_list, cluster_list, dc_array,
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_contract(self, reads, writes, dcs, k):
        decision = place_replicas_rw(reads, writes, k, dcs,
                                     np.random.default_rng(0))
        sites = decision.data_centers
        assert len(sites) == min(k, dcs.shape[0])
        assert len(set(sites)) == len(sites)
        assert all(0 <= s < dcs.shape[0] for s in sites)
        assert decision.predicted_cost >= 0.0

    @given(cluster_list, dc_array, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_read_only_rw_matches_plain_estimate(self, reads, dcs, k):
        rw = place_replicas_rw(reads, [], k, dcs, np.random.default_rng(0))
        plain = place_replicas(reads, k, dcs, np.random.default_rng(0))
        # Both optimize the same objective for read-only workloads; the
        # achieved estimates must agree (site sets may differ on ties).
        assert abs(rw.predicted_cost - plain.predicted_delay) <= \
            1e-6 * max(plain.predicted_delay, 1.0)


class TestCapacityProperties:
    @given(cluster_list, dc_array, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_huge_capacity_never_changes_the_placement(self, clusters, dcs, k):
        free = place_replicas(clusters, k, dcs, np.random.default_rng(0))
        capped = place_replicas(clusters, k, dcs, np.random.default_rng(0),
                                dc_capacities=np.full(dcs.shape[0], 1e12))
        assert sorted(free.data_centers) == sorted(capped.data_centers)

    @given(cluster_list, dc_array, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_capacity_placement_contract(self, clusters, dcs, k):
        caps = np.full(dcs.shape[0], 5.0)  # usually insufficient
        decision = place_replicas(clusters, k, dcs,
                                  np.random.default_rng(0),
                                  dc_capacities=caps)
        sites = decision.data_centers
        assert len(set(sites)) == len(sites) == min(k, dcs.shape[0])


class TestBandwidthProperties:
    @given(st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
           st.integers(min_value=0, max_value=10 ** 10))
    @settings(max_examples=60, deadline=None)
    def test_uniform_linear_in_size(self, rtt, size):
        model = UniformBandwidth(mbps=100.0)
        assert model.transfer_ms(rtt, 2 * size) == \
            2 * model.transfer_ms(rtt, size)

    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_correlated_bandwidth_monotone_in_rtt(self, r1, r2):
        model = LatencyCorrelatedBandwidth()
        lo, hi = sorted((r1, r2))
        assert model.bandwidth_mbps(lo) >= model.bandwidth_mbps(hi)
        assert model.bandwidth_mbps(hi) >= model.floor_mbps - 1e-12
