"""Hypothesis property tests for the micro-cluster CF kernel algebra.

The CF vector (count, weight, linear_sum, square_sum) is an additive
summary: merging must commute and associate, splitting must conserve
what the paper's coordinator sums over, and recovered variance must
never go negative however the floating point falls.  These invariants
gate the batched :mod:`repro.kernels.cf` kernels.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import kernels
from repro.clustering.stream import ClusterFeature
from repro.kernels import cf as cfk

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coord = st.floats(min_value=-1e3, max_value=1e3,
                  allow_nan=False, allow_infinity=False)
point2 = st.tuples(coord, coord).map(lambda t: np.array(t, dtype=float))
weight = st.floats(min_value=1e-3, max_value=1e3,
                   allow_nan=False, allow_infinity=False)


@st.composite
def cluster_features(draw, min_points=1, max_points=6):
    """A ClusterFeature built from a short stream of weighted points."""
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    cf = ClusterFeature.from_point(draw(point2), weight=draw(weight))
    for _ in range(n - 1):
        cf.absorb(draw(point2), weight=draw(weight))
    return cf


def as_rows(*cfs):
    """Stack ClusterFeatures into the kernel's SoA arrays."""
    return (np.array([c.count for c in cfs], dtype=float),
            np.array([c.weight for c in cfs], dtype=float),
            np.stack([c.linear_sum for c in cfs]),
            np.stack([c.square_sum for c in cfs]))


def assert_cf_close(a, b):
    np.testing.assert_allclose(a.count, b.count, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(a.weight, b.weight, rtol=1e-12, atol=1e-9)
    np.testing.assert_allclose(a.linear_sum, b.linear_sum,
                               rtol=1e-12, atol=1e-6)
    np.testing.assert_allclose(a.square_sum, b.square_sum,
                               rtol=1e-12, atol=1e-6)


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------
@given(cluster_features(), cluster_features())
def test_merge_commutes(a, b):
    ab = a.copy()
    ab.merge(b)
    ba = b.copy()
    ba.merge(a)
    assert_cf_close(ab, ba)


@given(cluster_features(), cluster_features(), cluster_features())
def test_merge_associates(a, b, c):
    left = a.copy()
    left.merge(b)
    left.merge(c)
    bc = b.copy()
    bc.merge(c)
    right = a.copy()
    right.merge(bc)
    assert_cf_close(left, right)


@given(cluster_features(), cluster_features())
def test_merge_rows_matches_object_merge(a, b):
    counts, weights, linear, square = as_rows(a, b)
    counts, weights, linear, square = cfk.merge_rows(
        counts, weights, linear, square, keep=0, drop=1)
    merged = a.copy()
    merged.merge(b)
    assert counts.shape == (1,)
    np.testing.assert_allclose(counts[0], merged.count, rtol=1e-12)
    np.testing.assert_allclose(weights[0], merged.weight, rtol=1e-12)
    np.testing.assert_allclose(linear[0], merged.linear_sum, rtol=1e-12)
    np.testing.assert_allclose(square[0], merged.square_sum, rtol=1e-12)


# ----------------------------------------------------------------------
# Split conservation
# ----------------------------------------------------------------------
@given(cluster_features(min_points=2))
def test_absorb_then_split_conserves_mass(cf):
    first, second = cf.split()
    # Count and weight are conserved *exactly*: counts split integrally
    # and the proportional weight split keeps w1 within [w/2, w], so the
    # subtraction w - w1 is exact by Sterbenz's lemma.  The linear sum's
    # second half is also computed by subtraction, but the halves sit
    # ±sigma from the mean and can cancel, so re-adding them only
    # round-trips to within one ulp.
    assert first.count + second.count == cf.count
    assert first.weight + second.weight == cf.weight
    total = first.linear_sum + second.linear_sum
    scale = np.maximum.reduce([np.abs(cf.linear_sum),
                               np.abs(first.linear_sum),
                               np.abs(second.linear_sum)])
    assert np.all(np.abs(total - cf.linear_sum)
                  <= 4 * np.finfo(float).eps * scale)
    assert np.all(first.square_sum >= 0.0)
    assert np.all(second.square_sum >= 0.0)
    assert first.count >= second.count >= 0


@given(cluster_features(min_points=2))
def test_split_halves_recover_valid_deviation(cf):
    for half in cf.split():
        if half.count > 0:
            assert np.isfinite(half.deviation)
            assert half.deviation >= 0.0


# ----------------------------------------------------------------------
# Variance clamping
# ----------------------------------------------------------------------
@given(cluster_features())
def test_recovered_variance_never_negative(cf):
    dev = cfk.deviations(*[np.atleast_1d(x) for x in
                           (cf.count,)],
                         cf.linear_sum[None, :], cf.square_sum[None, :])
    assert dev.shape == (1,)
    assert np.isfinite(dev[0])
    assert dev[0] >= 0.0


@given(st.lists(st.tuples(point2, weight), min_size=1, max_size=20))
def test_deviation_backends_agree(stream):
    cf = ClusterFeature.from_point(stream[0][0], weight=stream[0][1])
    for p, w in stream[1:]:
        cf.absorb(p, weight=w)
    args = (np.atleast_1d(cf.count), cf.linear_sum[None, :],
            cf.square_sum[None, :])
    np.testing.assert_array_equal(cfk.deviations(*args, backend="numpy"),
                                  cfk.deviations(*args, backend="python"))


# ----------------------------------------------------------------------
# Batched stream maintenance: backend equivalence as a property
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=40)
@given(st.lists(st.tuples(point2, weight), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=6))
def test_absorb_stream_backend_equivalence(stream, budget):
    points = np.stack([p for p, _ in stream])
    weights = np.array([w for _, w in stream])
    outs = {}
    for backend in kernels.BACKENDS:
        outs[backend] = cfk.absorb_stream(
            np.zeros(0), np.zeros(0), np.zeros((0, 2)), np.zeros((0, 2)),
            points=points, point_weights=weights,
            radius_floor=5.0, max_clusters=budget, backend=backend)
    for a, b in zip(outs["numpy"][:4], outs["python"][:4]):
        np.testing.assert_array_equal(a, b)
    assert outs["numpy"][4] == outs["python"][4]
    assert outs["numpy"][0].shape[0] <= budget
