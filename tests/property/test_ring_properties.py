"""Property tests (hypothesis) for consistent-hash ring stability.

The satellite acceptance property: growing a ring from ``n`` to
``n + 1`` shards remaps at most about ``keys / n`` keys, and a key
never moves between two pre-existing shards — remapped keys land on
the new shard only.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import HashRing, keyspace

ring_sizes = st.integers(min_value=1, max_value=12)
key_strategy = st.text(min_size=1, max_size=30)


class TestGrowthStability:
    @settings(max_examples=200, deadline=None)
    @given(n=ring_sizes, keys=st.lists(key_strategy, max_size=50))
    def test_remaps_go_to_the_new_shard_only(self, n, keys):
        old, new = HashRing(n), HashRing(n + 1)
        for key in keys:
            before, after = old.shard_of(key), new.shard_of(key)
            assert after in (before, n), (
                f"{key!r} moved {before} -> {after} on growth "
                f"{n} -> {n + 1}: shards {before} and {after} both "
                f"pre-existed, so neither should gain the key")

    @settings(max_examples=20, deadline=None)
    @given(n=ring_sizes)
    def test_remap_volume_is_bounded(self, n):
        # Expected fraction moved is 1/(n+1); with 64 vnodes the spread
        # is a few percent relative, so triple the expectation is a
        # safe, non-flaky ceiling over a fixed dense keyspace.
        keys = keyspace(4_096)
        old, new = HashRing(n), HashRing(n + 1)
        moved = sum(1 for key in keys
                    if old.shard_of(key) != new.shard_of(key))
        assert moved <= 3 * len(keys) / (n + 1)

    @settings(max_examples=50, deadline=None)
    @given(n=ring_sizes, key=key_strategy)
    def test_assignment_is_pure(self, n, key):
        # shard_of is a pure function of (ring geometry, key): rebuilt
        # rings agree, and vnode count changes keep results in range.
        assert HashRing(n).shard_of(key) == HashRing(n).shard_of(key)
        assert 0 <= HashRing(n, vnodes=8).shard_of(key) < n
