"""Property-based tests (hypothesis) for the observability instruments.

The histogram is designed around the same algebra as a micro-cluster CF
vector: merging is component-wise addition, so it must be associative
and commutative, and the scalar statistics must stay consistent with
the buckets under arbitrary observation streams.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import Counter, Histogram, MetricsRegistry, PhaseTimer

# Sample values spanning underflow, every default bucket, and overflow.
sample = st.floats(min_value=0.0, max_value=1e7,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(sample, max_size=200)

# Strictly increasing bucket bounds.
bounds_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    min_size=1, max_size=12, unique=True).map(lambda b: tuple(sorted(b)))


def _hist(values, bounds):
    h = Histogram("h", bounds=bounds)
    h.observe_many(values)
    return h


def _assert_equal(a: Histogram, b: Histogram) -> None:
    assert a.bucket_counts == b.bucket_counts
    assert a.count == b.count
    assert abs(a.total - b.total) <= 1e-6 * max(1.0, abs(a.total))
    assert a.min == b.min and a.max == b.max


@given(bounds_strategy, samples, samples)
@settings(max_examples=60)
def test_histogram_merge_commutative(bounds, xs, ys):
    ab = _hist(xs, bounds)
    ab.merge(_hist(ys, bounds))
    ba = _hist(ys, bounds)
    ba.merge(_hist(xs, bounds))
    _assert_equal(ab, ba)


@given(bounds_strategy, samples, samples, samples)
@settings(max_examples=60)
def test_histogram_merge_associative(bounds, xs, ys, zs):
    # (x + y) + z
    left = _hist(xs, bounds)
    left.merge(_hist(ys, bounds))
    left.merge(_hist(zs, bounds))
    # x + (y + z)
    inner = _hist(ys, bounds)
    inner.merge(_hist(zs, bounds))
    right = _hist(xs, bounds)
    right.merge(inner)
    _assert_equal(left, right)


@given(bounds_strategy, samples, samples)
@settings(max_examples=60)
def test_histogram_merge_equals_pooled_stream(bounds, xs, ys):
    # Merging two histograms is exactly observing the concatenation:
    # the lossless-pooling claim the CF-style design rests on.
    merged = _hist(xs, bounds)
    merged.merge(_hist(ys, bounds))
    pooled = _hist(xs + ys, bounds)
    _assert_equal(merged, pooled)


@given(bounds_strategy, samples)
@settings(max_examples=60)
def test_histogram_count_equals_bucket_sum(bounds, xs):
    h = _hist(xs, bounds)
    assert h.count == sum(h.bucket_counts) == len(xs)


@given(bounds_strategy, samples)
@settings(max_examples=60)
def test_histogram_observe_many_matches_observe(bounds, xs):
    many = _hist(xs, bounds)
    one = Histogram("h", bounds=bounds)
    for x in xs:
        one.observe(x)
    _assert_equal(many, one)


@given(bounds_strategy, samples)
@settings(max_examples=60)
def test_histogram_every_sample_lands_in_exactly_one_bucket(bounds, xs):
    h = _hist(xs, bounds)
    # Cumulative bucket counts must match the "le" definition exactly.
    cumulative = 0
    for bound, n in zip(h.bounds, h.bucket_counts):
        cumulative += n
        assert cumulative == sum(1 for x in xs if x <= bound)
    assert cumulative + h.bucket_counts[-1] == len(xs)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                max_size=50),
       st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                max_size=50))
@settings(max_examples=50)
def test_counter_merge_commutative(xs, ys):
    a, b = Counter("c"), Counter("c")
    for x in xs:
        a.inc(x)
    for y in ys:
        b.inc(y)
    a_then_b = Counter("c")
    a_then_b.merge(a)
    a_then_b.merge(b)
    b_then_a = Counter("c")
    b_then_a.merge(b)
    b_then_a.merge(a)
    assert abs(a_then_b.value - b_then_a.value) <= 1e-6


@given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                max_size=30))
@settings(max_examples=50)
def test_phase_timer_merge_matches_pooled_records(durations):
    half = len(durations) // 2
    a, b, pooled = PhaseTimer("t"), PhaseTimer("t"), PhaseTimer("t")
    for d in durations[:half]:
        a.record(d)
    for d in durations[half:]:
        b.record(d)
    for d in durations:
        pooled.record(d)
    a.merge(b)
    assert a.calls == pooled.calls == len(durations)
    assert abs(a.total_seconds - pooled.total_seconds) <= 1e-9
    assert a.max_seconds == pooled.max_seconds


@given(bounds_strategy, samples, samples)
@settings(max_examples=40)
def test_registry_merge_pools_histograms_losslessly(bounds, xs, ys):
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", bounds=bounds).observe_many(xs)
    a.counter("n").inc(len(xs))
    b.histogram("h", bounds=bounds).observe_many(ys)
    b.counter("n").inc(len(ys))
    a.merge(b)
    assert a.counter("n").value == len(xs) + len(ys)
    _assert_equal(a.histogram("h", bounds=bounds), _hist(xs + ys, bounds))
