"""Property-based tests (hypothesis) for the fault-tolerance layer.

Each example generates a random failure schedule — crashes, partitions,
flaky links, at random times with random durations — runs the full live
stack under it, and checks the invariants the chaos harness relies on:

* the replica count stays within bounds throughout the run and returns
  to ``k`` once every fault has healed;
* no placement epoch ever migrates the object onto a candidate the
  coordinator could not reach at decision time;
* the retry/abandon counters are consistent with the recorded trace
  (every abandoned transfer burned its full retry budget, every
  rollback left a trace span, and so on).

The worlds are deliberately tiny (24 nodes, 6 candidate DCs) so each
example runs in well under a second.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

import numpy as np

from repro import obs
from repro.core import ControllerConfig, MigrationPolicy
from repro.core.migration import RetryPolicy
from repro.net.planetlab import small_matrix
from repro.sim import FailureInjector, Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

N_NODES = 24
N_DC = 6
K = 3
DURATION_MS = 24_000.0
HEAL_BY_MS = 16_000.0    # every fault is over by here
EPOCH_MS = 5_000.0
RETRY = RetryPolicy(timeout_ms=800.0, max_attempts=3,
                    base_backoff_ms=200.0, jitter=0.25)

positions = st.integers(min_value=0, max_value=N_DC - 1)
start_times = st.floats(min_value=1_000.0, max_value=10_000.0)
durations = st.floats(min_value=1_000.0, max_value=6_000.0)


@st.composite
def fault_schedules(draw):
    """A list of (kind, at, until, params) tuples.

    At most two crash faults with distinct victims, so with ``K = 3``
    at least one replica holder stays alive at all times.
    """
    faults = []
    victims = draw(st.lists(positions, max_size=2, unique=True))
    for victim in victims:
        at = draw(start_times)
        until = min(at + draw(durations), HEAL_BY_MS)
        faults.append(("crash", at, until, victim))
    if draw(st.booleans()):
        group = draw(st.lists(positions, min_size=1, max_size=3,
                              unique=True))
        at = draw(start_times)
        until = min(at + draw(durations), HEAL_BY_MS)
        faults.append(("partition", at, until, tuple(sorted(group))))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        a, b = draw(st.lists(positions, min_size=2, max_size=2,
                             unique=True))
        loss = draw(st.floats(min_value=0.3, max_value=1.0))
        at = draw(start_times)
        until = min(at + draw(durations), HEAL_BY_MS)
        faults.append(("flaky", at, until, (a, b, loss)))
    return faults


def run_under_schedule(faults, seed=0):
    """Run the live stack under a schedule; return probes and counters."""
    matrix = small_matrix(n=N_NODES, seed=seed)
    rng = np.random.default_rng(seed)
    planar = rng.normal(size=(N_NODES, 3)) * 40.0
    candidates = tuple(range(N_DC))
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle", read_timeout_ms=500.0,
                            auto_repair=True, repair_period_ms=1_500.0,
                            retry_policy=RETRY)
    store.create_object(
        "obj", k=K,
        controller_config=ControllerConfig(k=K, max_micro_clusters=6),
        policy=MigrationPolicy(min_relative_gain=0.0,
                               min_absolute_gain_ms=0.1),
        epoch_period_ms=EPOCH_MS)
    clients = [n for n in range(N_NODES) if n not in candidates]
    AccessWorkload(store, ClientPopulation.uniform(clients), ["obj"],
                   rate_per_second=40.0)

    injector = FailureInjector(store.network)
    for kind, at, until, params in faults:
        if kind == "crash":
            node = candidates[params]
            injector.crash_at(at, node)
            injector.recover_at(until, node)
        elif kind == "partition":
            group = tuple(candidates[p] for p in params)
            injector.partition_at(at, group)
            injector.heal_at(until, group)
        else:
            a, b, loss = params
            injector.flaky_link_at(at, candidates[a], candidates[b], loss)
            injector.fix_link_at(until, candidates[a], candidates[b])

    unit = store._units["obj"]

    # Spy on every epoch: snapshot which candidates the coordinator can
    # exchange traffic with *at decision time*, before state moves on.
    epochs = []
    orig_run_epoch = store.run_epoch

    def spying_run_epoch(unit_key):
        coordinator = store.current_coordinator(unit_key)
        exchangeable = {
            p for p, site in enumerate(store.candidates)
            if store.network.can_reach(coordinator, site)
            and store.network.can_reach(site, coordinator)}
        report = orig_run_epoch(unit_key)
        epochs.append((sim.now, report, exchangeable))
        return report

    store.run_epoch = spying_run_epoch

    # Probe replica-set invariants once per simulated second.
    probes = []

    def probe():
        probes.append((sim.now, frozenset(unit.installed),
                       frozenset(unit.awaiting)))
        if sim.now < DURATION_MS - 1.0:
            sim.schedule(1_000.0, probe)

    sim.schedule(1_000.0, probe)

    with obs.observe() as (_registry, tracer):
        sim.run_until(DURATION_MS)
        spans = list(tracer)
    return store, unit, probes, epochs, spans


@given(fault_schedules())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_replica_count_stays_in_bounds(faults):
    store, unit, probes, _epochs, _spans = run_under_schedule(faults)
    candidates = set(store.candidates)
    for time, installed, awaiting in probes:
        # Floor: the schedule can kill at most 2 of the 3 holders.
        assert len(installed) >= 1, (time, faults)
        # Ceiling: old + new sites during a migration, never more.
        assert len(installed) <= 2 * K, (time, faults)
        assert installed <= candidates
        assert awaiting <= candidates
        assert not (installed & awaiting), (time, faults)
    # Every fault healed by HEAL_BY_MS; repair and epochs then restore
    # full replication degree.
    assert len(unit.installed) >= K, faults
    # The controller's view agrees with the store's reality.
    assert set(unit.controller.sites) == {
        store.candidates.index(s) for s in unit.installed}


@given(fault_schedules())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_migration_targets_unreachable_candidate(faults):
    _store, _unit, _probes, epochs, _spans = run_under_schedule(faults)
    assert epochs, "epoch loop never ran"
    for time, report, exchangeable in epochs:
        if report.migrated:
            assert set(report.proposed_sites) <= exchangeable, (
                time, report.proposed_sites, sorted(exchangeable), faults)
        if report.degraded:
            assert report.reachable_sites is not None


@given(fault_schedules())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_retry_counters_consistent_with_trace(faults):
    store, unit, _probes, epochs, spans = run_under_schedule(faults)

    starts = [s for s in spans if s.kind == obs.MIGRATION_START]
    finishes = [s for s in spans if s.kind == obs.MIGRATION_FINISH]
    rollbacks = [s for s in finishes if s.attrs.get("rolled_back")]

    # Every rollback is traced, and vice versa.
    assert store.migration_rollbacks == len(rollbacks), faults
    # A migration can finish at most once per start.
    assert len(finishes) <= len(starts), faults
    # An abandoned target burned its whole retry budget first.
    assert store.migration_retries >= (
        store.migrations_abandoned * (RETRY.max_attempts - 1)), faults
    # Same for summaries declared lost.
    assert store.summary_retries >= (
        store.summaries_lost * (RETRY.max_attempts - 1)), faults
    # Rollbacks imply abandoned transfers.
    assert store.migration_rollbacks <= store.migrations_abandoned, faults
    # Stale-lease rejections and degraded epochs are visible in reports.
    degraded = sum(1 for _, r, _ in epochs if r.degraded)
    assert degraded <= len(epochs)
    # No pending machinery leaks past the end of the run once every
    # fault has healed and the backoff budgets have drained.
    assert not unit.pending_transfers or unit.target is not None
    # Counters never go negative (they are plain ints, but a rollback
    # bug could double-decrement a set size into one of these).
    for counter in (store.migration_retries, store.migrations_abandoned,
                    store.migration_rollbacks, store.summary_retries,
                    store.summaries_lost, store.repairs):
        assert counter >= 0


def test_identical_schedule_is_bit_deterministic():
    faults = [("crash", 3_000.0, 9_000.0, 1),
              ("partition", 5_000.0, 12_000.0, (0, 2)),
              ("flaky", 4_000.0, 14_000.0, (3, 4, 0.8))]
    runs = []
    for _ in range(2):
        store, unit, probes, epochs, _spans = run_under_schedule(faults)
        runs.append((
            tuple(probes),
            tuple((t, r.proposed_sites, r.migrated) for t, r, _ in epochs),
            tuple(sorted(unit.installed)),
            store.migration_retries, store.migrations_abandoned,
            store.summary_retries, store.summaries_lost,
            len(store.log.records),
        ))
    assert runs[0] == runs[1]
