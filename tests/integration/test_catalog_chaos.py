"""Acceptance tests for catalog mode in the chaos harness.

The bundled ``shard_failover`` scenario drives a 200-key catalog in
20-key groups across 4 shards on the batched engine, then crashes two
shards' coordinators mid-run.  Acceptance: the run completes with
per-shard failovers recorded, the workload survives, and the final
latency recovers to near the failure-free baseline.
"""

import dataclasses
import os

import pytest

from repro.chaos import load_scenario, run_chaos
from repro.chaos.scenario import ChaosScenario, FaultSpec

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "chaos")


def bundled(name, **overrides):
    scenario = load_scenario(os.path.join(EXAMPLES, f"{name}.toml"))
    return dataclasses.replace(scenario, **overrides) if overrides \
        else scenario


class TestShardFailoverAcceptance:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_chaos(bundled("shard_failover", runs=1))

    def test_scenario_declares_catalog_mode(self):
        scenario = bundled("shard_failover")
        assert scenario.n_keys == 200
        assert scenario.n_shards == 4
        assert scenario.keys_per_group == 20
        assert scenario.engine == "batched"
        assert {f.kind for f in scenario.faults} == \
            {"crash-shard-coordinator"}

    def test_shard_coordinators_fail_over(self, summary):
        faulty = summary["faulty"]
        assert faulty["crashes"] == 2
        assert faulty["failovers"] > 0
        # Epochs kept firing across the catalog while shards were down.
        assert faulty["epochs"] > 0
        assert summary["baseline"]["failovers"] == 0

    def test_workload_survives(self, summary):
        faulty = summary["faulty"]
        assert faulty["reads_issued"] > 0
        assert faulty["completion_rate"] > 0.9

    def test_final_latency_recovers(self, summary):
        assert summary["latency_ratio"] <= 1.15


class TestCatalogScenarioValidation:
    def test_shard_fault_requires_catalog_section(self):
        with pytest.raises(ValueError, match="n_keys"):
            ChaosScenario(
                name="bad", faults=(
                    FaultSpec(kind="crash-shard-coordinator",
                              at=1_000.0, shard=0),))

    def test_shard_fault_index_bounded(self):
        with pytest.raises(ValueError, match="shard"):
            ChaosScenario(
                name="bad", n_keys=10, n_shards=2, faults=(
                    FaultSpec(kind="crash-shard-coordinator",
                              at=1_000.0, shard=5),))

    def test_shard_fault_needs_shard_field(self):
        with pytest.raises(ValueError, match="shard"):
            FaultSpec(kind="crash-shard-coordinator", at=1_000.0)
