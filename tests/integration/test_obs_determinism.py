"""Observability must never perturb the simulation (regression tests).

The core contract of :mod:`repro.obs`: instrumentation only *reads*
simulator state — it never draws from an RNG stream, schedules an
event, or reorders work.  These tests run the same seeded scenario with
metrics+tracing on and off and demand bit-identical behaviour: the same
access log, the same placement decisions, the same migrations, and the
same "golden" RNG draws afterwards (any hidden RNG consumption by the
instrumentation would shift the stream state).
"""

import numpy as np

from repro import obs
from repro.core import ControllerConfig, MigrationPolicy
from repro.coords import embed_matrix
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.placement import PlacementProblem
from repro.placement.online import OnlineClusteringPlacement
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation


def _build_world(seed=11, n=40):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=n), seed=seed)
    result = embed_matrix(matrix, system="mds",
                          rng=np.random.default_rng(seed + 1))
    planar = result.coords[:, :result.space.dim]
    return matrix, planar


def _run_store_scenario(matrix, planar):
    """One small end-to-end run; returns every observable decision."""
    sim = Simulator(seed=11)
    candidates = tuple(range(8))
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle")
    store.create_object(
        "obj", k=2,
        controller_config=ControllerConfig(k=2, max_micro_clusters=8,
                                           radius_floor=5.0),
        policy=MigrationPolicy(min_relative_gain=0.02,
                               min_absolute_gain_ms=0.5),
        epoch_period_ms=5_000.0,
    )
    population = ClientPopulation.uniform(tuple(range(8, matrix.n)))
    AccessWorkload(store, population, ["obj"], rate_per_second=120.0,
                   write_fraction=0.1)
    sim.run_until(30_000.0)

    access_log = tuple(
        (r.time, r.client, r.server, r.key, r.delay_ms, r.kind, r.version)
        for r in store.log.records)
    sites = store.installed_sites("obj")
    migrations = tuple(
        (r.epoch, r.previous_sites, r.proposed_sites, r.migrated)
        for r in store.epoch_reports("obj"))
    # Golden draws: consuming from the streams the run used exposes any
    # extra RNG pulls the instrumentation might have made.
    golden = tuple(
        int(sim.rng(stream).integers(0, 10 ** 9))
        for stream in ("workload", "placement") for _ in range(3))
    return access_log, sites, migrations, golden, sim.events_processed


class TestStoreDeterminism:
    def test_identical_run_with_obs_on_and_off(self):
        matrix, planar = _build_world()

        assert obs.get_registry() is obs.NULL_REGISTRY  # baseline: off
        baseline = _run_store_scenario(matrix, planar)

        with obs.observe() as (registry, tracer):
            instrumented = _run_store_scenario(matrix, planar)

        assert instrumented == baseline

        # The run was actually observed, not silently on the null path —
        # and the metrics agree with the ground-truth log.
        access_log = baseline[0]
        assert registry.counter("accesses.served").value == len(access_log)
        assert registry.histogram("access.delay_ms").count == len(access_log)
        assert registry.counter("store.epochs").value == \
            len(baseline[2])
        served = tracer.kind_counts().get(obs.ACCESS_SERVED, 0)
        assert served == len(access_log)

    def test_repeated_instrumented_runs_identical(self):
        # Determinism within the instrumented mode itself: tracing twice
        # gives the same event sequence (ring buffer reads back equal).
        matrix, planar = _build_world()
        runs = []
        for _ in range(2):
            with obs.observe() as (registry, tracer):
                result = _run_store_scenario(matrix, planar)
            spans = tuple((s.kind, s.time) for s in tracer.spans())
            runs.append((result, spans, registry.snapshot()["counters"]))
        assert runs[0] == runs[1]


class TestPlacementDeterminism:
    def test_online_placement_identical_with_obs_on_and_off(self):
        matrix, planar = _build_world(seed=3)
        candidates = tuple(range(10))
        clients = tuple(range(10, matrix.n))
        problem = PlacementProblem(matrix, candidates, clients, 3,
                                   coords=planar)
        strategy = OnlineClusteringPlacement()

        baseline = strategy.place(problem, np.random.default_rng(7))
        with obs.observe() as (registry, _):
            instrumented = strategy.place(problem, np.random.default_rng(7))

        assert instrumented == baseline
        assert registry.timer("placement.online.place").calls == 1
