"""Integration: the complete live stack vs the batch methodology.

The figure experiments use a batch shortcut (embed once, place, score).
The deployed system runs everything live: gossip maintains coordinates
as simulator traffic, the store routes by those coordinates, servers
summarize accesses, and the controller migrates.  This test runs both
on the same world and checks the live system lands in the same quality
regime the batch experiments promise.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates
from repro.analysis.experiment import run_comparison, default_strategies
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.placement import average_access_delay
from repro.sim import CoordinateGossip, Network, Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation


@pytest.fixture(scope="module")
def world():
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=70), seed=23)
    return matrix, topology


def test_live_stack_matches_batch_quality(world):
    matrix, _ = world
    candidates, clients = draw_candidates(matrix, 12,
                                          np.random.default_rng(24))

    # --- live: gossip coordinates + store + controller epochs --------
    sim = Simulator(seed=23)
    gossip_net = Network(sim, matrix)
    gossip = CoordinateGossip(gossip_net, system="rnp", period=300.0)
    sim.run_until(45_000.0)  # coordinate warm-up

    store = ReplicatedStore(sim, matrix, candidates, gossip,
                            selection="coords")
    store.create_object(
        "obj", k=3,
        controller_config=ControllerConfig(k=3, max_micro_clusters=10),
        policy=MigrationPolicy(min_relative_gain=0.02,
                               min_absolute_gain_ms=0.5),
        epoch_period_ms=15_000.0,
    )
    AccessWorkload(store, ClientPopulation.uniform(clients), ["obj"],
                   rate_per_second=150.0)
    sim.run_until(165_000.0)

    live_tail = np.mean([r.delay_ms for r in store.log.records
                         if r.kind == "read" and r.time > 135_000.0])

    # --- batch: the strategies scored directly on true RTTs ----------
    batch = run_comparison(matrix, gossip.planar_coords(),
                           default_strategies(10), n_dc=12, k=3,
                           n_runs=6, seed=23)
    random_mean = float(np.mean(batch["random"]))
    optimal_mean = float(np.mean(batch["optimal"]))

    # The live system (imperfect live coordinates, migration windows,
    # coordinate-predicted routing) must still land far closer to the
    # optimal regime than to random placement.
    assert live_tail < random_mean * 0.75
    assert live_tail < optimal_mean * 2.0

    # And its final placement, scored exactly like the figures, beats
    # the random baseline outright.
    final_sites = store.installed_sites("obj")
    placed = average_access_delay(matrix, clients, final_sites)
    assert placed < random_mean


def test_live_routing_penalty_is_bounded(world):
    matrix, _ = world
    candidates, clients = draw_candidates(matrix, 12,
                                          np.random.default_rng(25))
    sim = Simulator(seed=29)
    gossip_net = Network(sim, matrix)
    gossip = CoordinateGossip(gossip_net, system="rnp", period=300.0)
    sim.run_until(45_000.0)
    store = ReplicatedStore(sim, matrix, candidates, gossip,
                            selection="coords")
    store.create_object("obj", k=3,
                        controller_config=ControllerConfig(
                            k=3, max_micro_clusters=10))
    AccessWorkload(store, ClientPopulation.uniform(clients), ["obj"],
                   rate_per_second=100.0)
    sim.run_until(90_000.0)

    records = [r for r in store.log.records if r.kind == "read"]
    assert len(records) > 2000
    sites = store.installed_sites("obj")
    oracle = np.array([
        min(matrix.latency(r.client, s) for s in sites) for r in records
    ])
    measured = np.array([r.delay_ms for r in records])
    # Coordinate-predicted replica selection costs a bounded premium
    # over oracle routing to the same replica set.
    assert measured.mean() <= oracle.mean() * 1.4
