"""Integration: bandwidth-limited transfers and byte-weighted placement."""

import numpy as np
import pytest

from repro.coords import EuclideanSpace, embed_matrix
from repro.core import ControllerConfig, MigrationPolicy
from repro.net import UniformBandwidth
from repro.net.planetlab import small_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore


def build(bandwidth=None, size_gb=1.0):
    matrix = small_matrix(n=20, seed=9)
    coords = embed_matrix(matrix, system="mds",
                          space=EuclideanSpace(3)).coords
    sim = Simulator(seed=9)
    store = ReplicatedStore(sim, matrix, tuple(range(5)), coords,
                            selection="oracle", bandwidth=bandwidth)
    store.create_object(
        "obj", size_gb=size_gb, initial_sites=[4],
        controller_config=ControllerConfig(k=1, max_micro_clusters=8,
                                           radius_floor=2.0),
        policy=MigrationPolicy(min_relative_gain=0.01,
                               min_absolute_gain_ms=0.1),
    )
    return sim, matrix, store


class TestBandwidthLimitedMigration:
    def drive_and_migrate(self, store, sim):
        clients = [store.add_client(i) for i in range(10, 16)]
        for _ in range(20):
            for c in clients:
                c.read("obj")
        sim.run()
        report = store.run_epoch("obj")
        return report

    def test_migration_takes_transfer_time_under_bandwidth(self):
        # 1 GB at 1 Gbps ~ 8.6 seconds of serialization.
        sim, matrix, store = build(bandwidth=UniformBandwidth(mbps=1000.0),
                                   size_gb=1.0)
        report = self.drive_and_migrate(store, sim)
        if not report.migrated:
            pytest.skip("no migration proposed for this seed")
        migrated_at = sim.now
        # Immediately after the epoch the transfer is still in flight.
        assert store._unit("obj").awaiting
        sim.run_until(migrated_at + 2_000.0)
        assert store._unit("obj").awaiting      # 2 s < 8.6 s: still moving
        sim.run_until(migrated_at + 15_000.0)
        assert not store._unit("obj").awaiting  # transfer completed

    def test_latency_only_migration_is_fast(self):
        sim, matrix, store = build(bandwidth=None, size_gb=1.0)
        report = self.drive_and_migrate(store, sim)
        if not report.migrated:
            pytest.skip("no migration proposed for this seed")
        sim.run_until(sim.now + 1_000.0)
        assert not store._unit("obj").awaiting

    def test_reads_served_by_old_replica_during_transfer(self):
        sim, matrix, store = build(bandwidth=UniformBandwidth(mbps=1000.0))
        report = self.drive_and_migrate(store, sim)
        if not report.migrated:
            pytest.skip("no migration proposed for this seed")
        before = len(store.log)
        client = store.clients[10]
        client.read("obj")
        sim.run_until(sim.now + 1_000.0)
        assert len(store.log) == before + 1  # served despite the transfer


class TestByteWeightedPlacement:
    def test_heavy_byte_clients_dominate_placement(self):
        # Two client groups with equal access counts; one exchanges 100x
        # the bytes.  With byte weighting, placement follows the bytes.
        matrix = small_matrix(n=20, seed=11)
        coords = np.zeros((20, 2))
        coords[0] = [0.0, 0.0]       # candidate A
        coords[1] = [100.0, 0.0]     # candidate B
        coords[10:14] = [2.0, 0.0]   # light group near A
        coords[14:18] = [98.0, 0.0]  # heavy group near B

        from repro.core import ControllerConfig, ReplicationController
        from repro.core import MigrationPolicy
        ctrl = ReplicationController(
            coords[[0, 1]], [0],
            config=ControllerConfig(k=1, max_micro_clusters=8,
                                    radius_floor=2.0,
                                    use_bytes_weight=True),
            policy=MigrationPolicy(min_relative_gain=0.0,
                                   min_absolute_gain_ms=0.0))
        for _ in range(10):
            for c in range(10, 14):
                ctrl.record_access(0, coords[c], bytes_exchanged=1.0)
            for c in range(14, 18):
                ctrl.record_access(0, coords[c], bytes_exchanged=100.0)
        ctrl.run_epoch(np.random.default_rng(0))
        # k=1 placement lands at candidate B, where the bytes are.
        assert ctrl.sites == (1,)
