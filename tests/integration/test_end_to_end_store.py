"""Integration tests: the full simulated system, end to end.

These run the event simulator with live coordinate gossip, the
replicated store, realistic workloads and periodic placement epochs —
the deployment story the paper tells, not just the batch evaluation.
"""

import numpy as np
import pytest

from repro.core import ControllerConfig, MigrationPolicy
from repro.net import GeoTopology, PlanetLabParams, synthetic_planetlab_matrix
from repro.coords import EuclideanSpace, embed_matrix
from repro.sim import Network, Simulator
from repro.sim.gossip import CoordinateGossip
from repro.store import ConsistencyConfig, ReplicatedStore
from repro.workloads import (
    AccessWorkload,
    ClientPopulation,
    FlashCrowd,
    RegionalShift,
)


def build_world(seed=0, n=60):
    params = PlanetLabParams(n=n)
    matrix, topology = synthetic_planetlab_matrix(params, seed=seed)
    result = embed_matrix(matrix, system="rnp", rounds=80,
                          rng=np.random.default_rng(seed + 1))
    planar = result.coords[:, :result.space.dim]
    return matrix, topology, planar


class TestGradualMigrationChasesDemand:
    def test_controller_reduces_read_delay_over_time(self):
        matrix, topology, planar = build_world(seed=4)
        sim = Simulator(seed=4)
        candidates = tuple(range(12))
        store = ReplicatedStore(sim, matrix, candidates, planar,
                                selection="oracle")
        # Start the replica at the candidate *worst* for the clients.
        clients = tuple(range(12, 60))
        block = matrix.rows(clients, candidates)
        worst = candidates[int(np.argmax(block.mean(axis=0)))]
        store.create_object(
            "obj", initial_sites=[worst],
            controller_config=ControllerConfig(k=1, max_micro_clusters=10,
                                               radius_floor=5.0),
            policy=MigrationPolicy(min_relative_gain=0.02,
                                   min_absolute_gain_ms=0.5),
            epoch_period_ms=10_000.0,
        )
        population = ClientPopulation.uniform(clients)
        AccessWorkload(store, population, ["obj"], rate_per_second=200.0)
        sim.run_until(60_000.0)

        early = store.log.mean_delay(kind="read", since=0.0) \
            if len(store.log) else None
        first_10s = np.mean([r.delay_ms for r in store.log.records
                             if r.time < 10_000.0])
        last_10s = np.mean([r.delay_ms for r in store.log.records
                            if r.time >= 50_000.0])
        assert early is not None
        # After epochs the replica has migrated toward the population.
        assert last_10s < first_10s * 0.8
        reports = store.epoch_reports("obj")
        assert any(r.migrated for r in reports)

    def test_migration_stabilizes(self):
        # Once placed well, later epochs should stop migrating
        # (the paper's threshold prevents oscillation).
        matrix, topology, planar = build_world(seed=5)
        sim = Simulator(seed=5)
        candidates = tuple(range(10))
        store = ReplicatedStore(sim, matrix, candidates, planar,
                                selection="oracle")
        store.create_object(
            "obj", k=2,
            controller_config=ControllerConfig(k=2, max_micro_clusters=10),
            policy=MigrationPolicy(min_relative_gain=0.05,
                                   min_absolute_gain_ms=1.0),
            epoch_period_ms=8_000.0,
        )
        population = ClientPopulation.uniform(tuple(range(10, 60)))
        AccessWorkload(store, population, ["obj"], rate_per_second=150.0)
        sim.run_until(100_000.0)
        reports = store.epoch_reports("obj")
        assert len(reports) >= 10
        # The tail of the run must be quiet.
        assert not any(r.migrated for r in reports[-4:])


class TestRegionalShiftScenario:
    def test_replicas_follow_moving_population(self):
        matrix, topology, planar = build_world(seed=7)
        sim = Simulator(seed=7)
        candidates = tuple(range(12))
        store = ReplicatedStore(sim, matrix, candidates, planar,
                                selection="oracle")
        store.create_object(
            "obj", k=2,
            controller_config=ControllerConfig(k=2, max_micro_clusters=12),
            policy=MigrationPolicy(min_relative_gain=0.03,
                                   min_absolute_gain_ms=0.5),
            epoch_period_ms=15_000.0,
        )
        clients = tuple(range(12, 60))
        regions = sorted({topology.region_name(c) for c in clients})
        assert len(regions) >= 2
        shift = RegionalShift(topology, regions[0], regions[1],
                              start_ms=30_000.0, end_ms=90_000.0,
                              intensity=20.0)
        population = ClientPopulation.uniform(clients)
        AccessWorkload(store, population, ["obj"], rate_per_second=150.0,
                       pattern=shift)
        sim.run_until(150_000.0)
        reports = store.epoch_reports("obj")
        migrations = [r for r in reports if r.migrated]
        # The moving population must trigger at least one chase.
        assert migrations
        assert len(store.log) > 1000


class TestAdaptiveReplication:
    def test_flash_crowd_grows_k_then_shrinks(self):
        matrix, topology, planar = build_world(seed=9)
        sim = Simulator(seed=9)
        candidates = tuple(range(10))
        store = ReplicatedStore(sim, matrix, candidates, planar,
                                selection="oracle")
        store.create_object(
            "obj", k=1,
            controller_config=ControllerConfig(
                k=1, max_micro_clusters=10, adaptive_k=True,
                k_min=1, k_max=4, demand_low=1_200, demand_high=1_500),
            policy=MigrationPolicy(min_relative_gain=0.0,
                                   min_absolute_gain_ms=0.0),
            epoch_period_ms=10_000.0,
        )
        clients = tuple(range(10, 60))
        crowd = FlashCrowd(clients[:20], start_ms=20_000.0,
                           duration_ms=40_000.0, multiplier=30.0)
        population = ClientPopulation.uniform(clients)
        workload = AccessWorkload(store, population, ["obj"],
                                  rate_per_second=100.0, pattern=crowd)

        # Manually modulate the aggregate rate: during the crowd, issue
        # extra operations so total demand crosses the high watermark.
        burst = AccessWorkload(store, ClientPopulation.uniform(clients[:20]),
                               ["obj"], rate_per_second=300.0)
        burst._process.stop()

        def maybe_burst():
            if 20_000.0 <= sim.now < 60_000.0:
                for c in clients[:10]:
                    store.clients[c].read("obj")

        from repro.sim import PeriodicProcess
        PeriodicProcess(sim, 50.0, maybe_burst)
        sim.run_until(120_000.0)
        ks = [r.k for r in store.epoch_reports("obj")]
        assert max(ks) > 1          # grew under demand
        assert ks[-1] < max(ks)     # shrank after the crowd passed
        assert workload.operations_issued > 0


class TestQuorumTradeoff:
    def run_with_quorum(self, read_quorum):
        matrix, topology, planar = build_world(seed=11)
        sim = Simulator(seed=11)
        store = ReplicatedStore(
            sim, matrix, tuple(range(8)), planar, selection="oracle",
            consistency=ConsistencyConfig(read_quorum=read_quorum,
                                          propagate_updates=False))
        store.create_object("obj", initial_sites=[0, 3, 6])
        population = ClientPopulation.uniform(tuple(range(8, 60)))
        AccessWorkload(store, population, ["obj"], rate_per_second=300.0,
                       write_fraction=0.2)
        sim.run_until(30_000.0)
        return store.log

    def test_larger_quorum_fresher_but_slower(self):
        log1 = self.run_with_quorum(1)
        log3 = self.run_with_quorum(3)
        # Quorum 3 reads wait for the slowest of three replicas.
        assert log3.mean_delay(kind="read") > log1.mean_delay(kind="read")
        # But they see every write (max version across all replicas).
        assert log3.stale_fraction() <= log1.stale_fraction()
        assert log3.stale_fraction() == 0.0


class TestLiveGossipIntegration:
    def test_store_routes_with_live_coordinates(self):
        matrix, topology, _ = build_world(seed=13)
        sim = Simulator(seed=13)
        network_gossip = Network(sim, matrix)
        gossip = CoordinateGossip(network_gossip, system="rnp",
                                  period=250.0)
        # Let coordinates warm up before the store starts routing.
        sim.run_until(30_000.0)
        store = ReplicatedStore(sim, matrix, tuple(range(8)), gossip,
                                selection="coords")
        store.create_object("obj", initial_sites=[0, 4])
        population = ClientPopulation.uniform(tuple(range(8, 60)))
        AccessWorkload(store, population, ["obj"], rate_per_second=100.0)
        sim.run_until(60_000.0)
        assert len(store.log) > 1000
        # Coordinate routing should be close to oracle routing quality:
        # compare against the per-read oracle delay.
        oracle = np.array([
            min(matrix.latency(r.client, s)
                for s in store.installed_sites("obj"))
            for r in store.log.records
        ])
        measured = store.log.delays()
        # Mean penalty of trusting coordinates stays small.
        assert measured.mean() <= oracle.mean() * 1.35
