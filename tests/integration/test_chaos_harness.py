"""Acceptance tests for the chaos harness on the bundled scenarios.

The headline acceptance criterion for the fault-tolerance work: a chaos
run that crashes the coordinator mid-epoch completes with a successor
coordinator elected, zero unhandled exceptions, and a final mean client
latency within 10% of the failure-free baseline.
"""

import dataclasses
import os

import pytest

from repro.chaos import chaos_summary_json, load_scenario, run_chaos

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "chaos")


def bundled(name, **overrides):
    scenario = load_scenario(os.path.join(EXAMPLES, f"{name}.toml"))
    return dataclasses.replace(scenario, **overrides) if overrides \
        else scenario


class TestCoordinatorCrashAcceptance:
    @pytest.fixture(scope="class")
    def summary(self):
        # One run is enough for acceptance; the bundled file's two runs
        # are for CLI exploration.
        return run_chaos(bundled("coordinator_crash", runs=1))

    def test_run_completes_with_successor_coordinator(self, summary):
        faulty = summary["faulty"]
        assert faulty["failovers"] > 0
        assert faulty["crashes"] >= 1
        # A successor actually coordinated: epochs kept running while
        # the default coordinator was down.
        assert faulty["epochs"] >= summary["baseline"]["epochs"] - 1

    def test_workload_survives(self, summary):
        faulty = summary["faulty"]
        assert faulty["reads_issued"] > 0
        assert faulty["completion_rate"] > 0.9
        # The baseline run sees no faults at all.
        assert summary["baseline"]["crashes"] == 0
        assert summary["baseline"]["failovers"] == 0

    def test_final_latency_within_ten_percent_of_baseline(self, summary):
        assert summary["latency_ratio"] <= 1.10


class TestOtherBundledScenarios:
    def test_partition_degrades_epochs_without_bad_migrations(self):
        summary = run_chaos(bundled("partition_60_40", runs=1))
        faulty = summary["faulty"]
        assert faulty["partitions"] == 1
        assert faulty["epochs_degraded"] >= 1
        assert faulty["completion_rate"] > 0.8
        assert summary["latency_ratio"] <= 1.10

    def test_single_dc_outage_repairs_and_recovers(self):
        summary = run_chaos(bundled("single_dc_outage", runs=1))
        faulty = summary["faulty"]
        assert faulty["crashes"] == 1
        # The crashed DC is the default coordinator's: a failover and
        # either a repair or a migration must have kicked in.
        assert faulty["failovers"] >= 1
        assert faulty["repairs"] + faulty["migrations"] >= 1
        assert summary["latency_ratio"] <= 1.10

    def test_outage_run_ends_fully_replicated(self):
        from repro.chaos import run_scenario
        result = run_scenario(bundled("single_dc_outage", runs=1),
                              run_index=0, faulty=True)
        assert len(result.final_sites) >= 3


class TestSummaryShape:
    def test_summary_is_json_serializable_and_keyed(self):
        summary = run_chaos(bundled("smoke", runs=1))
        text = chaos_summary_json(summary)
        assert text.endswith("}")
        for key in ("scenario", "runs", "faults", "faulty", "baseline",
                    "latency_ratio"):
            assert f'"{key}"' in text
