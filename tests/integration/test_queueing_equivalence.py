"""Differential certification of server queueing and replica selection.

Three contracts, in increasing strength:

1. **Degenerate-case bitwise preservation.**  A queueing config whose
   service time is identically zero (and whose queue is unbounded) —
   and an explicitly passed ``nearest`` strategy — must leave every
   observable byte of a run identical to the pre-queueing store, on
   both engines.  This anchors the whole extension: the paper's
   RTT-only data plane is the exact degenerate case, not a separate
   code path.

2. **Exactness of the escalate-all path.**  Pending-aware selection
   strategies and capacity-bounded queues force the batched engine to
   replay every arrival through the per-event machinery; those runs
   must be byte-identical to the per-event oracle outright.

3. **Bounded error of the bulk window approximation.**  With an
   unbounded queue and ``nearest`` selection the batched engine serves
   whole windows through a vectorized Lindley recursion.  Per access,
   its delay may differ from the oracle's by at most
   ``(per-event admissions) x s`` for deterministic service ``s`` —
   the bound documented in docs/queueing.md — and the per-event
   admission count is observable as ``queue offered - bulk admissions``.
"""

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import (
    BatchedAccessWorkload,
    DeterministicService,
    QueueingConfig,
    ReplicatedStore,
)
from repro.workloads import AccessWorkload, ClientPopulation

N_NODES = 24
N_DC = 8


def _build(seed, engine, *, queueing=None, strategy="nearest",
           timeout=None):
    rng = np.random.default_rng(seed + 999)
    coords = rng.normal(size=(N_NODES, 2)) * 40
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    rtt += 5.0
    np.fill_diagonal(rtt, 0.0)
    matrix = LatencyMatrix((rtt + rtt.T) / 2)
    sim = Simulator(seed=seed)
    store = ReplicatedStore(
        sim, matrix, list(range(N_DC)), coords,
        read_timeout_ms=timeout, queueing=queueing, strategy=strategy)
    store.create_object("obj", size_gb=0.5, k=3)
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload_cls = (BatchedAccessWorkload if engine == "batched"
                    else AccessWorkload)
    workload = workload_cls(store, population, ["obj"],
                            rate_per_second=400.0)
    return sim, store, workload


def _snapshot(store):
    """Every access-visible outcome of a run, as comparable values."""
    net = store.network
    return {
        "log": [(r.time, r.client, r.server, r.key, r.delay_ms, r.kind,
                 r.version, r.stale) for r in store.log.records],
        "net": (net.stats.messages_sent, net.stats.messages_received,
                net.stats.bytes_sent, net.stats.bytes_received),
        "dropped": net.messages_dropped,
        "failed_reads": store.failed_reads,
        "queue_stats": store.queue_stats(),
        "queue_rejections": store.queue_rejections,
    }


def _run(seed, engine, horizon_ms=10_000.0, **config):
    sim, store, workload = _build(seed, engine, **config)
    sim.run_until(horizon_ms)
    return store, workload


ZERO_SERVICE_CONFIGS = [
    QueueingConfig(),
    QueueingConfig(service=DeterministicService(0.0)),
]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("engine", ["event", "batched"])
def test_zero_service_bitwise_identical_to_seed_path(seed, engine):
    """Contract 1: zero service + unbounded queue changes nothing."""
    store_plain, _ = _run(seed, engine)
    baseline = _snapshot(store_plain)
    assert len(baseline["log"]) > 1_000, "run produced too little traffic"
    for queueing in ZERO_SERVICE_CONFIGS:
        assert not queueing.active
        store_q, _ = _run(seed, engine, queueing=queueing)
        assert _snapshot(store_q) == baseline
    # No request was ever admitted into a queue on the fast path.
    assert baseline["queue_stats"] == {"offered": 0, "accepted": 0,
                                       "rejected": 0}


@pytest.mark.parametrize("engine", ["event", "batched"])
def test_explicit_nearest_strategy_is_the_seed_path(engine):
    """Contract 1: passing strategy="nearest" is byte-for-byte free."""
    from repro.store import NearestSelection

    store_default, _ = _run(5, engine)
    store_named, _ = _run(5, engine, strategy="nearest")
    store_object, _ = _run(5, engine, strategy=NearestSelection())
    assert _snapshot(store_named) == _snapshot(store_default)
    assert _snapshot(store_object) == _snapshot(store_default)


@pytest.mark.parametrize("strategy", ["least-pending", "c3"])
def test_pending_aware_strategies_identical_across_engines(strategy):
    """Contract 2: escalate-all replays are exact, not approximate."""
    queueing = QueueingConfig(service=DeterministicService(2.0))
    store_event, _ = _run(11, "event", queueing=queueing,
                          strategy=strategy)
    store_batched, w = _run(11, "batched", queueing=queueing,
                            strategy=strategy)
    assert w.engine._escalate_all
    event, batched = _snapshot(store_event), _snapshot(store_batched)
    assert len(event["log"]) > 1_000
    assert event == batched
    assert event["queue_stats"]["accepted"] > 0


def test_bounded_queue_identical_across_engines_and_rejects():
    """Contract 2: capacity-bounded admission is replayed exactly."""
    queueing = QueueingConfig(service=DeterministicService(8.0),
                              queue_capacity=2)
    store_event, _ = _run(13, "event", queueing=queueing, timeout=120.0)
    store_batched, w = _run(13, "batched", queueing=queueing,
                            timeout=120.0)
    assert w.engine._escalate_all
    event, batched = _snapshot(store_event), _snapshot(store_batched)
    assert event == batched
    assert event["queue_rejections"] > 0
    stats = event["queue_stats"]
    assert stats["rejected"] == event["queue_rejections"]
    assert stats["offered"] == stats["accepted"] + stats["rejected"]


@pytest.mark.parametrize("service_ms", [1.0, 4.0])
def test_bulk_window_error_bounded_by_demoted_admissions(service_ms):
    """Contract 3: the vectorized window recursion's documented bound.

    Sorted-delay pairing minimizes the bottleneck distance over all
    pairings, so if every access's delay is within ``admissions x s``
    of its oracle twin under *some* pairing, the sorted sequences are
    too — which makes the assertion valid without reconstructing the
    engine's access identity mapping.
    """
    queueing = QueueingConfig(service=DeterministicService(service_ms))
    store_event, _ = _run(17, "event", queueing=queueing)
    store_batched, w = _run(17, "batched", queueing=queueing)
    assert not w.engine._escalate_all

    event_delays = np.sort(store_event.log.delays("read"))
    batched_delays = np.sort(store_batched.log.delays("read"))
    assert event_delays.size == batched_delays.size > 1_000

    stats = store_batched.queue_stats()
    per_event_admissions = (stats["offered"]
                            - w.engine.bulk_queue_admissions)
    assert per_event_admissions >= 0
    bound = per_event_admissions * service_ms
    worst = float(np.abs(event_delays - batched_delays).max())
    assert worst <= bound + 1e-9, \
        f"delay error {worst} exceeds documented bound {bound}"
    # The window path must actually be doing the bulk work: the
    # overwhelming majority of admissions go through the vectorized
    # recursion, not the per-event fallback.
    assert w.engine.bulk_queue_admissions > 0.9 * stats["offered"]
    # Both engines drain the same offered load.
    assert stats == store_event.queue_stats()
