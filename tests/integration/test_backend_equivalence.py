"""Differential certification of the kernel backends.

The ``python`` backend is the scalar reference oracle; the ``numpy``
backend is the production hot path.  These tests pin the contract that
lets them be swapped freely:

* golden equivalence — both backends make *identical placement
  decisions* across seeds, for the online scheme and the offline
  k-means rival, and produce tolerance-bounded centroids;
* seed-matrix differential — every bundled chaos scenario produces
  **byte-identical** summary JSON under either backend (parametrized
  over a glob, so new scenario files are picked up automatically).
"""

import glob
import os

import numpy as np
import pytest

from repro import kernels
from repro.chaos import chaos_summary_json, load_scenario, run_chaos
from repro.clustering.kmeans import weighted_kmeans
from repro.coords import embed_matrix
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.placement.base import PlacementProblem
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement

SEEDS = (0, 1, 2, 3, 4)

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "chaos")
SCENARIOS = sorted(glob.glob(os.path.join(EXAMPLES, "*.toml")))


@pytest.fixture(scope="module")
def world():
    """A small embedded PlanetLab world shared by the golden tests."""
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=60), seed=3)
    result = embed_matrix(matrix, system="rnp", rounds=60,
                          rng=np.random.default_rng(4))
    planar = result.coords[:, :result.space.dim]
    heights = result.coords[:, -1] if result.space.use_height else None
    return matrix, planar, heights


def make_problem(world, k=4):
    matrix, planar, heights = world
    candidates = tuple(range(12))
    clients = tuple(range(12, matrix.n))
    return PlacementProblem(matrix=matrix, candidates=candidates,
                            clients=clients, k=k, coords=planar,
                            heights=heights)


# ----------------------------------------------------------------------
# Golden equivalence: identical placement decisions across seeds
# ----------------------------------------------------------------------
class TestGoldenPlacementEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_online_decisions_identical(self, world, seed):
        problem = make_problem(world)
        decisions = {}
        for backend in kernels.BACKENDS:
            strategy = OnlineClusteringPlacement(
                micro_clusters=6, migration_rounds=2, backend=backend)
            decisions[backend] = strategy.place(
                problem, np.random.default_rng(seed))
        assert decisions["numpy"] == decisions["python"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_offline_decisions_identical(self, world, seed):
        problem = make_problem(world)
        decisions = {}
        for backend in kernels.BACKENDS:
            strategy = OfflineKMeansPlacement(backend=backend)
            decisions[backend] = strategy.place(
                problem, np.random.default_rng(seed))
        assert decisions["numpy"] == decisions["python"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_kmeans_centroids_tolerance_bounded(self, world, seed):
        _, planar, _ = world
        results = {}
        for backend in kernels.BACKENDS:
            results[backend] = weighted_kmeans(
                planar, 5, rng=np.random.default_rng(seed),
                backend=backend)
        np.testing.assert_array_equal(results["numpy"].labels,
                                      results["python"].labels)
        np.testing.assert_allclose(results["numpy"].centroids,
                                   results["python"].centroids,
                                   rtol=1e-12, atol=1e-9)
        np.testing.assert_allclose(results["numpy"].inertia,
                                   results["python"].inertia,
                                   rtol=1e-12, atol=0)

    def test_process_wide_switch_equivalent_to_explicit(self, world):
        problem = make_problem(world)
        explicit = OnlineClusteringPlacement(
            micro_clusters=6, backend="python").place(
                problem, np.random.default_rng(0))
        with kernels.use_backend("python"):
            implicit = OnlineClusteringPlacement(micro_clusters=6).place(
                problem, np.random.default_rng(0))
        assert explicit == implicit


# ----------------------------------------------------------------------
# Seed-matrix differential: bundled chaos scenarios, both backends
# ----------------------------------------------------------------------
def _scenario_params():
    """One param per bundled scenario; only the smoke test stays fast."""
    params = []
    for path in SCENARIOS:
        name = os.path.splitext(os.path.basename(path))[0]
        marks = [] if name == "smoke" else [pytest.mark.slow]
        params.append(pytest.param(path, id=name, marks=marks))
    return params


class TestChaosSeedMatrixDifferential:
    def test_scenarios_are_bundled(self):
        assert len(SCENARIOS) >= 4, (
            "expected the four bundled chaos scenarios; the differential "
            "matrix below auto-picks-up any new *.toml files")

    @pytest.mark.parametrize("path", _scenario_params())
    def test_summary_json_byte_identical_across_backends(self, path):
        scenario = load_scenario(path)
        payloads = {}
        for backend in kernels.BACKENDS:
            with kernels.use_backend(backend):
                payloads[backend] = chaos_summary_json(
                    run_chaos(scenario, jobs=1))
        assert payloads["numpy"] == payloads["python"]
