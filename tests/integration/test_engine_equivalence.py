"""Differential suite: the batched data plane vs the per-event oracle.

The batched engine's contract is *exact* equivalence, not statistical
similarity: for the same seed it must leave every piece of observable
simulation state bitwise identical to the per-event reference path —
access-log records (times, servers, delays, versions, staleness),
network byte/message accounting (global, per kind, per node), the
controller's micro-cluster summaries (the placement inputs), the epoch
reports and installed replica sets (the placement decisions), and the
failure counters.  Only scheduler internals (``events_processed``) may
differ, because not scheduling per-access events is the whole point.

The tier-1 matrix covers five seeds of the paper's read-only setting,
one seed with every extension armed at once (quorum reads, read
timeouts, writes, multiple objects, short epochs), the bundled chaos
smoke scenario, and every bundled correlated-outage scenario (dense
fault schedules + availability-aware placement); the nightly ``slow``
matrix widens the per-feature coverage and re-seeds the outage
schedules into a five-seed differential matrix per scenario.
"""

import os
from dataclasses import asdict, replace

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import BatchedAccessWorkload, ConsistencyConfig, ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

N_NODES = 24
N_DC = 8


def _build(seed, engine, *, quorum=1, timeout=None, write_fraction=0.0,
           n_keys=1, epoch_period_ms=None):
    rng = np.random.default_rng(seed + 999)
    coords = rng.normal(size=(N_NODES, 2)) * 40
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    rtt += 5.0
    np.fill_diagonal(rtt, 0.0)
    matrix = LatencyMatrix((rtt + rtt.T) / 2)
    sim = Simulator(seed=seed)
    store = ReplicatedStore(
        sim, matrix, list(range(N_DC)), coords,
        consistency=ConsistencyConfig(read_quorum=quorum),
        read_timeout_ms=timeout)
    keys = [f"obj{i}" for i in range(n_keys)]
    for key in keys:
        store.create_object(key, size_gb=0.5, k=3,
                            epoch_period_ms=epoch_period_ms)
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload_cls = (BatchedAccessWorkload if engine == "batched"
                    else AccessWorkload)
    workload = workload_cls(store, population, keys, rate_per_second=400.0,
                            write_fraction=write_fraction)
    return sim, store, workload


def _snapshot(store):
    """Every store-observable outcome of a run, as comparable values."""
    net = store.network
    snapshot = {
        "log": [(r.time, r.client, r.server, r.key, r.delay_ms, r.kind,
                 r.version, r.stale) for r in store.log.records],
        "net": (net.stats.messages_sent, net.stats.messages_received,
                net.stats.bytes_sent, net.stats.bytes_received),
        "net_per_kind": dict(net.per_kind_bytes),
        "net_per_node": {node: (s.messages_sent, s.messages_received,
                                s.bytes_sent, s.bytes_received)
                         for node, s in net.per_node.items()},
        "dropped": net.messages_dropped,
        "failed_reads": store.failed_reads,
    }
    controllers = {}
    for unit_key, unit in store._units.items():
        controller = unit.controller
        controllers[unit_key] = {
            "sites": tuple(sorted(unit.installed)),
            "reports": list(unit.epoch_reports),
            "summaries": {
                server: (summary.accesses, summary.bytes_served,
                         [(cf.count, cf.weight,
                           tuple(cf.linear_sum.tolist()),
                           tuple(cf.square_sum.tolist()))
                          for cf in summary.snapshot()])
                for server, summary in controller._summaries.items()},
        }
    snapshot["controllers"] = controllers
    return snapshot


def _assert_runs_match(seed, horizon_ms=15_000.0, **config):
    results = {}
    for engine in ("event", "batched"):
        sim, store, _ = _build(seed, engine, **config)
        sim.run_until(horizon_ms)
        results[engine] = _snapshot(store)
    event, batched = results["event"], results["batched"]
    assert len(event["log"]) > 1_000, "run produced too little traffic"
    for field in event:
        assert event[field] == batched[field], \
            f"engines diverge in {field!r} (seed={seed}, config={config})"


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_read_only_world_identical(seed):
    """The paper's setting: uniform read-only clients, one object."""
    _assert_runs_match(seed)


def test_all_extensions_armed_identical():
    """Quorum reads + timeouts + writes + multi-object + short epochs."""
    _assert_runs_match(7, quorum=2, timeout=60.0, write_fraction=0.05,
                      n_keys=2, epoch_period_ms=3_000.0)


def test_bundled_chaos_scenario_outcomes_identical():
    """The bundled smoke scenario's chaos outcome is engine-independent.

    Crashes, a partition and a flaky link all land mid-run; the faulty
    arm's full counter set (reads, failures, failovers, migrations,
    repairs, final replica sites) must not depend on the engine.
    """
    from repro.chaos import load_scenario
    from repro.chaos.harness import run_scenario

    scenario = load_scenario(os.path.join(EXAMPLES, "chaos", "smoke.toml"))
    event = run_scenario(scenario, run_index=0, faulty=True)
    batched = run_scenario(replace(scenario, engine="batched"),
                           run_index=0, faulty=True)
    assert asdict(event) == asdict(batched)
    assert event.crashes > 0 and event.partitions > 0


OUTAGE_SCENARIOS = ("rack_outage.toml", "dc_outage.toml",
                    "region_outage.toml")


def _run_outage(filename, engine, seed=None):
    from repro.chaos import load_scenario
    from repro.chaos.harness import run_scenario

    scenario = load_scenario(os.path.join(EXAMPLES, "chaos", filename))
    scenario = replace(scenario, engine=engine)
    if seed is not None:
        scenario = replace(scenario, seed=seed)
    return run_scenario(scenario, run_index=0, faulty=True)


@pytest.mark.parametrize("filename", OUTAGE_SCENARIOS)
def test_correlated_outage_outcomes_identical(filename):
    """Dense correlated-fault schedules are the batched engine's worst
    case (every crash/recovery is a barrier and flips the fault-state
    stamp of the cross-window group cache); every bundled outage
    scenario — availability refinement, hotspot population, domain
    strike and all — must come out byte-identical on both engines."""
    event = _run_outage(filename, "event")
    batched = _run_outage(filename, "batched")
    assert asdict(event) == asdict(batched)
    assert event.crashes >= 2 and event.replicas_lost >= 1


@pytest.mark.slow
@pytest.mark.parametrize("filename", OUTAGE_SCENARIOS)
@pytest.mark.parametrize("seed", [31, 37, 41, 43])
def test_correlated_outage_seed_matrix_identical(filename, seed):
    """Nightly: the outage schedules re-seeded onto fresh worlds — with
    the file's own seed above, a five-seed differential matrix per
    scenario.  (The strict replica-loss win is tuned per bundled seed;
    engine equivalence must hold on every world.)"""
    event = _run_outage(filename, "event", seed=seed)
    batched = _run_outage(filename, "batched", seed=seed)
    assert asdict(event) == asdict(batched)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [11, 12])
@pytest.mark.parametrize("config", [
    dict(quorum=2),
    dict(timeout=80.0),
    dict(write_fraction=0.1),
    dict(n_keys=3, epoch_period_ms=4_000.0),
], ids=["quorum", "timeout", "writes", "multikey-epochs"])
def test_feature_matrix_identical(seed, config):
    """Nightly: each extension alone, longer horizon, extra seeds."""
    _assert_runs_match(seed, horizon_ms=30_000.0, **config)
