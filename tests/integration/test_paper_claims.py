"""Integration tests: the paper's headline claims at reduced scale.

The full-size (226-node, 30-run) reproduction lives in ``benchmarks/``;
these tests assert the same *relationships* at a scale that keeps the
suite fast: ~100 nodes and 8 runs.
"""

import numpy as np
import pytest

from repro import EvaluationSetting, run_figure1, run_figure2, run_figure3
from repro.analysis import run_table2


SETTING = EvaluationSetting(n_nodes=100, n_runs=8, coord_system="rnp",
                            embed_rounds=80, seed=2)


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(SETTING, replica_counts=(1, 2, 3, 5, 7), n_dc=15)


@pytest.fixture(scope="module")
def figure1():
    return run_figure1(SETTING, datacenter_counts=(5, 15, 25), k=3)


class TestFigure1Claims:
    def test_informed_strategies_improve_with_more_datacenters(self, figure1):
        for name in ("offline k-means", "online clustering", "optimal"):
            means = figure1.means(name)
            assert means[-1] < means[0], name

    def test_online_near_optimal_at_every_point(self, figure1):
        online = figure1.means("online clustering")
        optimal = figure1.means("optimal")
        for on, opt in zip(online, optimal):
            assert on <= opt * 1.25

    def test_online_tracks_offline(self, figure1):
        online = figure1.means("online clustering")
        offline = figure1.means("offline k-means")
        for on, off in zip(online, offline):
            assert abs(on - off) <= 0.25 * off


class TestFigure2Claims:
    def test_delay_decreases_with_replication(self, figure2):
        for name in ("random", "offline k-means", "online clustering",
                     "optimal"):
            means = figure2.means(name)
            # Monotone within noise: strictly lower from k=1 to k=7.
            assert means[-1] < means[0], name

    def test_diminishing_returns(self, figure2):
        # The drop from k=1 to k=3 exceeds the drop from k=5 to k=7.
        opt = figure2.means("optimal")
        assert (opt[0] - opt[2]) > (opt[3] - opt[4])

    def test_online_well_below_random(self, figure2):
        # The paper's ">= 35 %" holds at full scale (asserted in
        # benchmarks/test_fig2_degree_of_replication.py); at this
        # reduced scale (100 nodes, 8 runs) we allow a small noise
        # margin around it.
        random_means = figure2.means("random")
        online_means = figure2.means("online clustering")
        for k, r, on in zip(figure2.xs("random"), random_means, online_means):
            gain = (r - on) / r
            assert gain >= 0.30, f"k={k}: gain {gain:.0%}"

    def test_online_slightly_worse_than_optimal(self, figure2):
        online = figure2.means("online clustering")
        optimal = figure2.means("optimal")
        for on, opt in zip(online, optimal):
            assert opt <= on <= opt * 1.25

    def test_optimal_is_global_lower_bound(self, figure2):
        optimal = figure2.means("optimal")
        for name in ("random", "offline k-means", "online clustering"):
            for o, v in zip(optimal, figure2.means(name)):
                assert o <= v + 1e-9


class TestFigure3Claims:
    @pytest.fixture(scope="class")
    def figure3(self):
        return run_figure3(SETTING, micro_cluster_counts=(1, 4, 11),
                           replica_counts=(1, 3, 5), n_dc=15)

    def test_more_micro_clusters_help(self, figure3):
        # Averaged over k, m=4 must beat m=1.
        m1 = np.mean(figure3.means("1 micro-clusters"))
        m4 = np.mean(figure3.means("4 micro-clusters"))
        assert m4 <= m1

    def test_saturation_after_4(self, figure3):
        # Going from 4 to 11 changes little (the paper's saturation).
        m4 = np.mean(figure3.means("4 micro-clusters"))
        m11 = np.mean(figure3.means("11 micro-clusters"))
        assert abs(m11 - m4) <= 0.15 * m4


class TestTable2Claims:
    def test_online_bandwidth_independent_of_n(self):
        rows = run_table2(n_accesses_list=(1_000, 50_000), k=3, m=50)
        assert rows[1].online_bytes <= rows[0].online_bytes * 1.5
        assert rows[1].offline_bytes == 50 * rows[0].offline_bytes

    def test_orders_of_magnitude_at_scale(self):
        rows = run_table2(n_accesses_list=(100_000,), k=3, m=100)
        row = rows[0]
        assert row.offline_bytes > 50 * row.online_bytes
