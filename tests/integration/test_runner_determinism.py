"""The runner's determinism and crash-safety contracts.

Three guarantees the parallel runner makes (docs/runner.md):

1. **Scheduling independence** — every figure runner returns
   bit-identical results at ``jobs=1``, ``jobs=4`` and when replayed
   from a warm cache, because each cell's random streams are keyed by
   the cell's identity, never by execution order.
2. **Worker-crash tolerance** — a worker dying mid-sweep (simulated
   with the ``REPRO_RUNNER_CRASH_ONCE`` hook, a stand-in for an
   OOM-kill) is retried transparently and the sweep still returns the
   exact serial results.
3. **Crash-safe resume** — SIGKILL-ing an entire sweep process leaves a
   readable cache of every finished job; rerunning with ``resume=True``
   recomputes only what is missing and returns the same result.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.analysis.experiment import (
    EvaluationSetting,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)
from repro.runner import ResultCache, Table2Spec, execute
from repro.runner.pool import CRASH_ONCE_ENV

SETTING = EvaluationSetting(n_nodes=36, n_runs=3, seed=13)

FIGURES = [
    ("figure1", run_figure1,
     dict(datacenter_counts=(4, 6), k=2, micro_clusters=4)),
    ("figure2", run_figure2,
     dict(replica_counts=(1, 2), n_dc=6, micro_clusters=4)),
    ("figure3", run_figure3,
     dict(micro_cluster_counts=(2, 3), replica_counts=(1, 2), n_dc=6)),
]


def _deterministic_rows(rows):
    """Table II rows minus their wall-clock timings (never bit-stable)."""
    return [(r.n_accesses, r.k, r.m, r.online_bytes, r.offline_bytes,
             r.online_bytes_analytic, r.offline_bytes_analytic)
            for r in rows]


class TestBitIdenticalAcrossJobsLevels:
    @pytest.mark.parametrize("name,runner,kwargs", FIGURES,
                             ids=[f[0] for f in FIGURES])
    def test_serial_parallel_and_resume_agree(self, name, runner, kwargs,
                                              tmp_path):
        serial = runner(SETTING, **kwargs)
        parallel = runner(SETTING, **kwargs, jobs=4,
                          cache_dir=str(tmp_path))
        assert parallel == serial

        # Replay entirely from the cache the parallel run populated.
        with obs.observe() as (registry, _):
            resumed = runner(SETTING, **kwargs, jobs=4,
                             cache_dir=str(tmp_path), resume=True)
        assert resumed == serial
        assert registry.counter("runner.jobs_completed").value == 0
        assert registry.counter("runner.cache_hits").value == \
            registry.counter("runner.jobs").value > 0

    def test_table2_serial_vs_parallel(self):
        kwargs = dict(n_accesses_list=(200, 400), k=2, m=5, seed=9)
        assert _deterministic_rows(run_table2(**kwargs, jobs=2)) == \
            _deterministic_rows(run_table2(**kwargs))


class TestWorkerCrashRetry:
    def test_crashed_worker_is_retried_and_results_unchanged(
            self, tmp_path, monkeypatch):
        specs = [Table2Spec(n_accesses=100 + 50 * i, k=2, m=4, seed=3)
                 for i in range(4)]
        reference = execute(specs, jobs=1)

        sentinel = tmp_path / "crash-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(sentinel))
        with obs.observe() as (registry, _):
            survived = execute(specs, jobs=2, retries=2)

        assert sentinel.exists(), "the crash hook never fired"
        assert _deterministic_rows(survived) == _deterministic_rows(reference)
        assert registry.counter("runner.worker_crashes").value >= 1
        assert registry.counter("runner.retries").value >= 1

    def test_retry_budget_exhaustion_raises(self, tmp_path, monkeypatch):
        from repro.runner import WorkerCrashError

        # retries=0: the first (guaranteed) crash must surface as
        # WorkerCrashError instead of being retried.
        monkeypatch.setenv(CRASH_ONCE_ENV, str(tmp_path / "crash-once"))
        specs = [Table2Spec(n_accesses=100, k=2, m=4, seed=3)]
        with pytest.raises(WorkerCrashError):
            execute(specs, jobs=2, retries=0)


_SWEEP_SCRIPT = """
import sys
from repro.analysis.experiment import EvaluationSetting, run_figure2
setting = EvaluationSetting(n_nodes=36, n_runs=3, seed=13)
run_figure2(setting, replica_counts=(1, 2), n_dc=6, micro_clusters=4,
            jobs=1, cache_dir=sys.argv[1])
"""


class TestKilledSweepResumes:
    def test_sigkill_mid_sweep_then_resume_from_cache(self, tmp_path):
        kwargs = dict(replica_counts=(1, 2), n_dc=6, micro_clusters=4)
        reference = run_figure2(SETTING, **kwargs)

        cache_dir = str(tmp_path / "cache")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.Popen(
            [sys.executable, "-c", _SWEEP_SCRIPT, cache_dir], env=env)
        try:
            # Kill the sweep as soon as some — but not necessarily all —
            # jobs have been persisted.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if (os.path.isdir(cache_dir)
                        and len(ResultCache(cache_dir)) >= 2):
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        finished_before_resume = len(ResultCache(cache_dir))
        assert finished_before_resume >= 2, "sweep was killed too early"

        with obs.observe() as (registry, _):
            resumed = run_figure2(SETTING, **kwargs, cache_dir=cache_dir,
                                  resume=True)
        assert resumed == reference
        hits = registry.counter("runner.cache_hits").value
        completed = registry.counter("runner.jobs_completed").value
        total = registry.counter("runner.jobs").value
        # Every job that survived the kill came from the cache; only the
        # rest were recomputed.
        assert hits == finished_before_resume
        assert completed == total - hits


class TestChaosGoldenDeterminism:
    """The `repro chaos` summary is a golden artifact: byte-identical
    JSON at any worker count, and again when resumed from a warm cache.
    """

    @pytest.fixture(scope="class")
    def smoke(self):
        import dataclasses

        from repro.chaos import load_scenario

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "chaos", "smoke.toml")
        # One run keeps the golden check fast; the runner still farms
        # two cells (faulty + baseline) through the pool.
        return dataclasses.replace(load_scenario(path), runs=1)

    def test_summary_json_byte_identical_across_jobs(self, smoke):
        from repro.chaos import chaos_summary_json, run_chaos

        serial = chaos_summary_json(run_chaos(smoke, jobs=1))
        parallel = chaos_summary_json(run_chaos(smoke, jobs=4))
        assert parallel == serial

    def test_summary_json_survives_cache_resume(self, smoke, tmp_path):
        from repro.chaos import chaos_summary_json, run_chaos

        cache_dir = str(tmp_path / "chaos-cache")
        first = chaos_summary_json(
            run_chaos(smoke, jobs=2, cache_dir=cache_dir))
        with obs.observe() as (registry, _):
            resumed = chaos_summary_json(
                run_chaos(smoke, jobs=2, cache_dir=cache_dir, resume=True))
        assert resumed == first
        # Every cell was replayed from the cache, none recomputed.
        assert registry.counter("runner.cache_hits").value == 2
        assert registry.counter("runner.jobs_completed").value == 0


class TestGoldenAcrossWorkersAndChunks:
    """Bit-identical spec-ordered results at every (workers, chunk size)
    point of the matrix — the warm pool's core contract: chunking and
    scheduling are pure execution detail, invisible in the results.
    """

    KWARGS = dict(datacenter_counts=(4, 6), k=2, micro_clusters=4)

    @pytest.fixture(scope="class")
    def golden(self):
        return run_figure1(SETTING, **self.KWARGS)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 8, None],
                             ids=["chunk1", "chunk8", "auto"])
    def test_matrix_point_matches_golden(self, golden, jobs, chunk_size):
        assert run_figure1(SETTING, **self.KWARGS, jobs=jobs,
                           chunk_size=chunk_size) == golden


class TestSharedMemoryWorld:
    def test_shm_world_gives_identical_results(self):
        from repro.placement.random_placement import RandomPlacement
        from repro.placement.online import OnlineClusteringPlacement
        from repro.analysis.experiment import run_comparison

        matrix, coords, heights = SETTING.build()
        strategies = [RandomPlacement(), OnlineClusteringPlacement(
            micro_clusters=4)]
        kwargs = dict(n_dc=6, k=2, n_runs=3, seed=13, heights=heights)

        serial = run_comparison(matrix, coords, strategies, **kwargs)
        with obs.observe() as (registry, _):
            parallel = run_comparison(matrix, coords, strategies, **kwargs,
                                      jobs=2)
        assert parallel == serial
        # The explicit array world travelled through one shared-memory
        # segment, not N pickled copies.
        assert registry.gauge("runner.shm_bytes").value > 0


class TestKeyboardInterruptDrain:
    def test_interrupt_drains_in_flight_results_into_cache(
            self, tmp_path, monkeypatch):
        from repro.runner import pool

        specs = [Table2Spec(n_accesses=100 + 50 * i, k=2, m=4, seed=3)
                 for i in range(6)]
        reference = execute(specs, jobs=1)
        cache_dir = str(tmp_path / "cache")

        recorded = 0

        def interrupt_after_two_chunks():
            nonlocal recorded
            recorded += 1
            if recorded >= 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(pool, "_after_chunk_hook",
                            interrupt_after_two_chunks)
        with pytest.raises(KeyboardInterrupt):
            execute(specs, jobs=2, chunk_size=1, cache_dir=cache_dir)
        monkeypatch.setattr(pool, "_after_chunk_hook", None)

        # Every chunk completed before or drained after the interrupt is
        # already durable — Ctrl-C plus resume loses nothing.
        salvaged = len(ResultCache(cache_dir))
        assert salvaged >= 2

        with obs.observe() as (registry, _):
            resumed = execute(specs, jobs=2, cache_dir=cache_dir,
                              resume=True)
        assert _deterministic_rows(resumed) == _deterministic_rows(reference)
        assert registry.counter("runner.cache_hits").value == salvaged
        assert registry.counter("runner.jobs_completed").value == \
            len(specs) - salvaged


class _SleepOnceSpec:
    """First spec to run creates the sentinel and wedges; every other
    execution (including the post-watchdog retry) returns immediately.
    ``open(..., "x")`` makes creation exclusive, so exactly one job
    sleeps however the pool schedules the chunks.
    """

    kind = "sleep-once"
    setting = None

    def __init__(self, sentinel: str, n: int):
        self.sentinel = sentinel
        self.n = n

    def payload(self):
        return {"kind": self.kind, "sentinel": self.sentinel, "n": self.n}

    def execute(self, world=None):
        try:
            with open(self.sentinel, "x") as handle:
                handle.write("wedged\n")
        except FileExistsError:
            return float(self.n)
        time.sleep(8.0)
        return float(self.n)


class _AlwaysSleepsSpec(_SleepOnceSpec):
    """A job that wedges on every attempt — exhausts the stall budget."""

    def execute(self, world=None):
        time.sleep(8.0)
        return float(self.n)


class TestStallWatchdogAccounting:
    def test_stalled_worker_killed_retried_and_counted(self, tmp_path):
        sentinel = str(tmp_path / "wedge-once")
        specs = [_SleepOnceSpec(sentinel, n) for n in range(3)]

        with obs.observe() as (registry, _):
            results = execute(specs, jobs=2, chunk_size=1, timeout=0.75,
                              retries=2)

        assert results == [0.0, 1.0, 2.0]
        assert os.path.exists(sentinel), "the wedge hook never fired"
        # One stall event, one retry, no crash miscounted as a stall (or
        # vice versa): the watchdog and the crash path share the retry
        # budget but keep separate counters.
        assert registry.counter("runner.stalls").value == 1
        assert registry.counter("runner.retries").value == 1
        assert registry.counter("runner.worker_crashes").value == 0
        assert registry.counter("runner.jobs_completed").value == 3

    def test_stall_budget_exhaustion_raises(self, tmp_path):
        from repro.runner import StallTimeoutError

        specs = [_AlwaysSleepsSpec(str(tmp_path / "unused"), 0)]
        with pytest.raises(StallTimeoutError):
            execute(specs, jobs=2, chunk_size=1, timeout=0.4, retries=1)
