"""Trace replay at scale: a ~50k-line trace through both engines.

Round-trips a generated trace through ``save_trace``/``load_trace`` and
replays the loaded copy against identical stores with the per-event and
the batched engine.  Store-level outcomes — per-(server, kind) access
counts and the full access log — must be identical, which is the
guarantee that makes the batched engine usable for the paper's
"realistic evaluation based on data accesses in actual applications":
a real application log replayed at millions of lines behaves exactly
like the reference path, only faster.
"""

import collections

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import (
    ClientPopulation,
    generate_trace,
    load_trace,
    replay_trace,
    save_trace,
)

N_NODES = 24
N_DC = 8
DURATION_MS = 100_000.0
RATE = 500.0            # ~50k lines over the 100 s duration
WRITE_FRACTION = 0.01   # writes exercise the escalation path


def _world(seed):
    rng = np.random.default_rng(seed + 999)
    coords = rng.normal(size=(N_NODES, 2)) * 40
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    rtt += 5.0
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _replay(trace, engine, seed):
    matrix, coords = _world(seed)
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, list(range(N_DC)), coords)
    for key in ("alpha", "beta"):
        store.create_object(key, size_gb=0.5, k=3)
    count = replay_trace(store, trace, engine=engine)
    sim.run_until(DURATION_MS + 5_000.0)
    log = [(r.time, r.client, r.server, r.key, r.delay_ms, r.kind,
            r.version, r.stale) for r in store.log.records]
    counts = collections.Counter((r.server, r.kind)
                                 for r in store.log.records)
    return count, log, counts, store.failed_reads


@pytest.mark.slow
def test_50k_line_trace_round_trip_both_engines(tmp_path):
    population = ClientPopulation.uniform(range(N_DC, N_NODES))
    trace = generate_trace(population, ["alpha", "beta"],
                           duration_ms=DURATION_MS, rate_per_second=RATE,
                           rng=np.random.default_rng(42),
                           write_fraction=WRITE_FRACTION)
    assert len(trace) > 45_000

    path = tmp_path / "trace.jsonl"
    save_trace(trace, str(path))
    assert sum(1 for _ in open(path)) == len(trace)
    loaded = load_trace(str(path))
    assert loaded == trace  # lossless round trip

    count_event, log_event, counts_event, failed_event = _replay(
        loaded, "event", seed=3)
    count_batched, log_batched, counts_batched, failed_batched = _replay(
        loaded, "batched", seed=3)

    assert count_event == count_batched == len(trace)
    # Store-level read/write counts per server: identical.
    assert counts_event == counts_batched
    assert sum(n for (_, kind), n in counts_event.items()
               if kind == "read") > 40_000
    assert sum(n for (_, kind), n in counts_event.items()
               if kind == "write") > 100
    # And so is the full access log, record for record.
    assert log_event == log_batched
    assert failed_event == failed_batched
