"""Differential suite for the sharded catalog.

Three contracts, all exact rather than statistical:

* **Degenerate identity** — a one-shard catalog of singleton groups
  with no stagger and no budget is *bitwise identical* to creating
  each object directly with ``ReplicatedStore.create_object``: same
  access log, same network accounting, same summaries, same epoch
  reports, same installed replica sets.  Certified on both engines
  over three seeds.
* **Shard-count invariance** — for a fixed seed, the data-plane
  surface (access log, placements, versions) and the placement-
  relevant epoch report fields do not depend on how many shards the
  catalog is split into; only control-plane topology (which node
  coordinates which unit) changes.
* **Engine equivalence in catalog mode** — a multi-shard, grouped,
  budgeted catalog leaves identical observable state under the
  per-event and batched data planes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.catalog import PlacementGroups, ShardedCatalog, keyspace
from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import BatchedAccessWorkload, ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

N_NODES = 24
N_DC = 8
N_KEYS = 12
EPOCH_MS = 3_000.0
HORIZON_MS = 16_000.0


def _world(seed):
    rng = np.random.default_rng(seed + 999)
    coords = rng.normal(size=(N_NODES, 2)) * 40
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    rtt += 5.0
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _store(seed):
    matrix, coords = _world(seed)
    sim = Simulator(seed=seed)
    store = ReplicatedStore(sim, matrix, list(range(N_DC)), coords,
                            selection="oracle")
    return sim, store


def _workload(store, keys, engine):
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload_cls = (BatchedAccessWorkload if engine == "batched"
                    else AccessWorkload)
    return workload_cls(store, population, list(keys),
                        rate_per_second=400.0)


def _full_snapshot(store):
    """Every store-observable outcome, including control-plane state."""
    net = store.network
    snapshot = {
        "log": [(r.time, r.client, r.server, r.key, r.delay_ms, r.kind,
                 r.version, r.stale) for r in store.log.records],
        "net": (net.stats.messages_sent, net.stats.messages_received,
                net.stats.bytes_sent, net.stats.bytes_received),
        "failed_reads": store.failed_reads,
        "units": {},
    }
    for unit_key, unit in store._units.items():
        snapshot["units"][unit_key] = {
            "sites": tuple(sorted(unit.installed)),
            "latest": dict(unit.latest),
            "reports": list(unit.epoch_reports),
        }
    return snapshot


def _data_plane_snapshot(store):
    """The shard-count-invariant surface: everything except control-
    plane topology (which node coordinates, lease terms, summary
    traffic)."""
    snapshot = {
        "log": [(r.time, r.client, r.server, r.key, r.delay_ms, r.kind,
                 r.version, r.stale) for r in store.log.records],
        "failed_reads": store.failed_reads,
        "units": {},
    }
    for unit_key, unit in store._units.items():
        snapshot["units"][unit_key] = {
            "sites": tuple(sorted(unit.installed)),
            "latest": dict(unit.latest),
            "reports": [
                (r.epoch, r.accesses, tuple(r.previous_sites),
                 tuple(r.proposed_sites), r.verdict,
                 r.current_predicted_delay, r.proposed_predicted_delay)
                for r in unit.epoch_reports
            ],
        }
    return snapshot


@pytest.mark.parametrize("engine", ["event", "batched"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_degenerate_catalog_is_bitwise_identical(seed, engine):
    """One shard + singletons + no stagger == per-object create calls."""
    keys = keyspace(N_KEYS)

    sim_a, store_a = _store(seed)
    for key in keys:
        store_a.create_object(key, k=3, epoch_period_ms=EPOCH_MS)
    _workload(store_a, keys, engine)
    sim_a.run_until(HORIZON_MS)

    sim_b, store_b = _store(seed)
    catalog = ShardedCatalog(store_b, keys, n_shards=1,
                             groups=PlacementGroups.singletons(keys),
                             k=3, epoch_period_ms=EPOCH_MS,
                             epoch_stagger=0.0)
    _workload(store_b, catalog.keys(), engine)
    sim_b.run_until(HORIZON_MS)

    manual, sharded = _full_snapshot(store_a), _full_snapshot(store_b)
    assert len(manual["log"]) > 1_000, "run produced too little traffic"
    assert sum(len(u["reports"]) for u in manual["units"].values()) > 0
    for field in manual:
        assert manual[field] == sharded[field], (
            f"degenerate catalog diverges from per-object path in "
            f"{field!r} (seed={seed}, engine={engine})")


@pytest.mark.parametrize("engine", ["event", "batched"])
def test_shard_count_is_invisible_to_the_data_plane(engine):
    """Same seed, 1/2/4/8 shards: identical placements and accesses."""
    keys = keyspace(N_KEYS)
    groups = PlacementGroups.chunked(keys, 3)
    snapshots = {}
    for n_shards in (1, 2, 4, 8):
        sim, store = _store(11)
        catalog = ShardedCatalog(store, keys, n_shards=n_shards,
                                 groups=groups, k=3,
                                 epoch_period_ms=EPOCH_MS,
                                 epoch_stagger=1.0, max_epoch_moves=2)
        _workload(store, catalog.keys(), engine)
        sim.run_until(HORIZON_MS)
        snapshots[n_shards] = _data_plane_snapshot(store)
    reference = snapshots[1]
    assert len(reference["log"]) > 1_000
    for n_shards, snapshot in snapshots.items():
        for field in reference:
            assert snapshot[field] == reference[field], (
                f"{n_shards}-shard catalog diverges from 1-shard in "
                f"{field!r} ({engine} engine)")


@pytest.mark.parametrize("seed", [5, 6])
def test_catalog_engines_equivalent(seed):
    """Grouped, sharded, budgeted catalog: event == batched, exactly."""
    keys = keyspace(N_KEYS)
    groups = PlacementGroups.chunked(keys, 4)
    snapshots = {}
    for engine in ("event", "batched"):
        sim, store = _store(seed)
        catalog = ShardedCatalog(store, keys, n_shards=4, groups=groups,
                                 k=3, epoch_period_ms=EPOCH_MS,
                                 epoch_stagger=1.0, max_epoch_moves=2)
        _workload(store, catalog.keys(), engine)
        sim.run_until(HORIZON_MS)
        snapshots[engine] = _full_snapshot(store)
    event, batched = snapshots["event"], snapshots["batched"]
    assert len(event["log"]) > 1_000
    for field in event:
        assert event[field] == batched[field], (
            f"catalog engines diverge in {field!r} (seed={seed})")
