"""Certification of availability-aware placement under correlated outages.

For every bundled outage scenario (rack, DC, region) the λ > 0 arm must
lose strictly fewer installed replicas to the outage than its λ = 0
latency-only twin, while costing at most 10 % extra fair-weather mean
latency.  The λ = 0 twin is a *bitwise* contract, certified here at the
whole-system level: a λ = 0 run with the failure-domain annotation
attached is byte-for-byte the run with no domain model at all, on both
engines.

The certification runs on the batched engine;
``tests/integration/test_engine_equivalence.py`` proves every one of
these scenarios produces identical results on the per-event oracle, so
the verdicts transfer.
"""

import glob
import os
from dataclasses import asdict, replace

import pytest

from repro.chaos.harness import chaos_summary_json, run_chaos, run_scenario
from repro.chaos.scenario import load_scenario

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "chaos")
OUTAGE_SCENARIOS = ("rack_outage.toml", "dc_outage.toml",
                    "region_outage.toml")


def outage(filename):
    return load_scenario(os.path.join(EXAMPLES, filename))


def test_outage_scenarios_are_bundled():
    bundled = {os.path.basename(p)
               for p in glob.glob(os.path.join(EXAMPLES, "*.toml"))}
    assert set(OUTAGE_SCENARIOS) <= bundled


@pytest.mark.parametrize("filename", OUTAGE_SCENARIOS)
def test_availability_loses_strictly_fewer_replicas(filename):
    scenario = replace(outage(filename), engine="batched")
    latency_only = replace(scenario, availability_lambda=0.0)

    avail = run_scenario(scenario, faulty=True)
    lat = run_scenario(latency_only, faulty=True)

    # The outage must be a real blast (the latency-only placement packs
    # >= 2 replicas into the struck domain) and the availability-aware
    # arm must lose strictly fewer — the headline acceptance assertion.
    assert lat.replicas_lost >= 2, (filename, lat)
    assert avail.replicas_lost < lat.replicas_lost, (filename, avail, lat)
    assert avail.min_live_replicas >= lat.min_live_replicas, (filename,)

    # Bounded latency cost: measured in fair weather (faults off), where
    # the λ penalty is the *only* difference between the arms.
    avail_calm = run_scenario(scenario, faulty=False)
    lat_calm = run_scenario(latency_only, faulty=False)
    assert (avail_calm.mean_delay_ms
            <= 1.10 * lat_calm.mean_delay_ms), (filename, avail_calm,
                                                lat_calm)


@pytest.mark.parametrize("engine", ["event", "batched"])
def test_lambda_zero_is_bitwise_latency_only(engine):
    # Attaching the failure-domain annotation with λ = 0 must change
    # *nothing*: same placements, same access log, same counters as a
    # run with no domain model at all.  (Domain-outage faults need the
    # annotation, so the comparison runs the schedule-free arms.)
    scenario = replace(outage("rack_outage.toml"), engine=engine,
                       availability_lambda=0.0, faults=())
    without_domains = replace(scenario, regions=0)
    for faulty in (True, False):
        annotated = run_scenario(scenario, faulty=faulty)
        plain = run_scenario(without_domains, faulty=faulty)
        assert asdict(annotated) == asdict(plain), (engine, faulty)


@pytest.mark.parametrize("filename", OUTAGE_SCENARIOS)
def test_lambda_sweep_risk_drops(filename):
    # The λ knob does what it says on each bundled world: the placement
    # chosen at the scenario's λ carries strictly lower modelled
    # co-failure risk than the λ = 0 placement.
    scenario = replace(outage(filename), engine="batched")
    domains = scenario.build_domains(*_world_of(scenario))
    risks = {}
    for lam in (0.0, scenario.availability_lambda):
        result = run_scenario(replace(scenario, availability_lambda=lam),
                              faulty=False)
        positions = _positions_of(scenario, result.final_sites)
        risks[lam] = domains.cofailure_risk(positions)
    assert risks[scenario.availability_lambda] < risks[0.0], risks


def _world_of(scenario, run_index=0):
    """Rebuild the (matrix, candidates) pair of a scenario run —
    identical to the harness's own construction."""
    import numpy as np
    from repro.analysis.experiment import draw_candidates
    from repro.net import PlanetLabParams, synthetic_planetlab_matrix
    from repro.runner.jobs import seed_sequence

    matrix, _ = synthetic_planetlab_matrix(
        PlanetLabParams(n=scenario.n_nodes), seed=scenario.seed)
    candidates, _ = draw_candidates(
        matrix, scenario.n_dc,
        np.random.default_rng(seed_sequence(scenario.seed, run_index, 101)))
    return matrix, candidates


def _positions_of(scenario, sites, run_index=0):
    _, candidates = _world_of(scenario, run_index)
    position_of = {int(node): p for p, node in enumerate(candidates)}
    return [position_of[int(s)] for s in sites]


def test_golden_determinism_serial_vs_parallel():
    # The certification scenario is bitwise reproducible: rerunning it
    # gives identical counters, and the pooled summary is byte-identical
    # at any worker count.
    scenario = outage("dc_outage.toml")
    first = run_scenario(scenario, faulty=True)
    second = run_scenario(scenario, faulty=True)
    assert asdict(first) == asdict(second)

    serial = chaos_summary_json(run_chaos(scenario, jobs=1))
    parallel = chaos_summary_json(run_chaos(scenario, jobs=2))
    assert serial == parallel


@pytest.mark.slow
@pytest.mark.parametrize("filename", OUTAGE_SCENARIOS)
@pytest.mark.parametrize("seed", [31, 37, 41, 43])
def test_outage_determinism_across_seeds(filename, seed):
    # Nightly: the blast-radius accounting stays deterministic on
    # re-seeded variants of every outage world (the strict-win tuning
    # is seed-specific; bitwise reproducibility is not).
    scenario = replace(outage(filename), seed=seed)
    first = run_scenario(scenario, faulty=True)
    second = run_scenario(scenario, faulty=True)
    assert asdict(first) == asdict(second)
