"""Figure 1 — impact of the number of available data centers (k = 3).

Paper's observations this bench reproduces and asserts:

* every informed strategy improves as more candidate data centers
  become available, while random barely does;
* online clustering and offline k-means both achieve near-optimal
  performance at every point.

The benchmark timing measures the online-clustering placement kernel on
one full-size problem instance.
"""

import numpy as np
import pytest

from repro import OnlineClusteringPlacement, PlacementProblem, run_figure1
from repro.analysis import format_figure

from conftest import FULL_SETTING, print_result


@pytest.fixture(scope="module")
def figure1():
    return run_figure1(FULL_SETTING)


def test_fig1_series(figure1, capsys, benchmark):
    text = benchmark(lambda: format_figure(figure1))
    print_result(capsys, text)
    names = set(figure1.series)
    assert names == {"random", "offline k-means", "online clustering",
                     "optimal"}
    # Headline claims, asserted in benchmark-only runs too:
    for name in ("offline k-means", "online clustering", "optimal"):
        means = figure1.means(name)
        assert means[-1] < means[0] * 0.9, name
    for on, opt in zip(figure1.means("online clustering"),
                       figure1.means("optimal")):
        assert on <= opt * 1.2


def test_fig1_informed_strategies_improve_with_datacenters(figure1):
    for name in ("offline k-means", "online clustering", "optimal"):
        means = figure1.means(name)
        assert means[-1] < means[0] * 0.9, name


def test_fig1_online_near_optimal(figure1):
    for on, opt in zip(figure1.means("online clustering"),
                       figure1.means("optimal")):
        assert on <= opt * 1.2


def test_fig1_online_tracks_offline(figure1):
    for on, off in zip(figure1.means("online clustering"),
                       figure1.means("offline k-means")):
        assert abs(on - off) <= 0.2 * off


def test_fig1_random_always_worst(figure1):
    for name in ("offline k-means", "online clustering", "optimal"):
        for r, v in zip(figure1.means("random"), figure1.means(name)):
            assert v <= r


def test_fig1_placement_kernel(benchmark, evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(0)
    candidates = tuple(int(i) for i in rng.choice(matrix.n, 20, replace=False))
    clients = tuple(i for i in range(matrix.n) if i not in set(candidates))
    problem = PlacementProblem(matrix, candidates, clients, 3,
                               coords=coords, heights=heights)
    strategy = OnlineClusteringPlacement(micro_clusters=10)
    benchmark(lambda: strategy.place(problem, np.random.default_rng(1)))
