"""Catalog control-plane throughput: grouped shards vs naive per-object.

The point of the sharded catalog is that control-plane cost scales
with the number of *placement units*, not the number of keys: folding
a 10k-key catalog into placement groups cuts the controller count —
and with it the epoch clocks, summary streams and per-unit route
derivations — by the grouping factor, while the batched data plane
serves the same accesses either way.

This benchmark drives the same Zipf workload over 10,000 keys twice on
the batched engine: once through a 16-shard catalog with 200-key
placement groups (50 units), and once through the naive per-object
control loop the single-object pipeline would use (10,000 units, one
epoch clock each).  Both arms share one controller configuration (a
Figure-3-sized micro-cluster budget).  ``BENCH_catalog.json`` records
both wall clocks; the acceptance floor is a 5x speedup for the grouped
catalog.

The grouped configuration is an instance of the family
``tests/integration/test_catalog_equivalence.py`` proves equivalent to
the per-object path in the degenerate case and invariant to shard
count, so the speedup is an architecture change, not an accuracy
trade.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.catalog import PlacementGroups, ShardedCatalog, keyspace
from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import BatchedAccessWorkload, ReplicatedStore

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_catalog.json"

N_NODES = 64
N_DC = 16
SEED = 7
N_KEYS = 10_000
N_SHARDS = 16
GROUP_SIZE = 200
RATE_PER_SECOND = 1_000
EPOCH_PERIOD_MS = 5_000.0
HORIZON_MS = 31_000.0
MAX_MICRO_CLUSTERS = 16


def _world():
    rng = np.random.default_rng(1234)
    coords = rng.uniform(0, 100, size=(N_NODES, 2))
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _run_once(mode):
    from repro.core import ControllerConfig
    from repro.workloads import ClientPopulation

    matrix, coords = _world()
    sim = Simulator(seed=SEED)
    store = ReplicatedStore(sim, matrix, list(range(N_DC)), coords,
                            selection="oracle")
    keys = keyspace(N_KEYS)
    config = ControllerConfig(k=3, max_micro_clusters=MAX_MICRO_CLUSTERS)
    start = time.perf_counter()
    if mode == "grouped":
        catalog = ShardedCatalog(
            store, keys, n_shards=N_SHARDS,
            groups=PlacementGroups.chunked(keys, GROUP_SIZE),
            k=3, size_gb=0.1, controller_config=config,
            epoch_period_ms=EPOCH_PERIOD_MS, epoch_stagger=1.0)
        units = catalog.n_groups
    else:
        # The naive control loop: one unit, controller and epoch clock
        # per key — what scaling the single-object pipeline by copy
        # would look like.
        for key in keys:
            store.create_object(key, size_gb=0.1, k=3,
                                controller_config=config,
                                epoch_period_ms=EPOCH_PERIOD_MS)
        units = N_KEYS
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload = BatchedAccessWorkload(store, population, list(keys),
                                     rate_per_second=RATE_PER_SECOND)
    sim.run_until(HORIZON_MS)
    wall_s = time.perf_counter() - start
    epochs = sum(len(store.epoch_reports(u)) for u in store.unit_keys())
    return {
        "mode": mode,
        "units": units,
        "accesses": workload.operations_issued,
        "epochs": epochs,
        "wall_s": round(wall_s, 3),
        "events_processed": sim.events_processed,
    }


def _run(mode, repeats=2):
    # Best-of-N: single samples on a shared machine swing by +-50%; the
    # minimum is the least-noisy estimator of the code's true cost.
    runs = [_run_once(mode) for _ in range(repeats)]
    return min(runs, key=lambda r: r["wall_s"])


@pytest.mark.bench
def test_catalog_throughput(capsys):
    grouped = _run("grouped")
    naive = _run("naive")
    assert grouped["accesses"] == naive["accesses"] > 10_000
    assert grouped["units"] == N_KEYS // GROUP_SIZE
    assert grouped["epochs"] > 0
    speedup = naive["wall_s"] / grouped["wall_s"]

    doc = {
        "benchmark": "catalog-throughput",
        "setting": {"n_nodes": N_NODES, "n_dc": N_DC, "k": 3, "seed": SEED,
                    "n_keys": N_KEYS, "n_shards": N_SHARDS,
                    "group_size": GROUP_SIZE,
                    "max_micro_clusters": MAX_MICRO_CLUSTERS,
                    "rate_per_second": RATE_PER_SECOND,
                    "epoch_period_ms": EPOCH_PERIOD_MS,
                    "horizon_ms": HORIZON_MS,
                    "workload": "uniform clients, Zipf keys, batched "
                                "engine"},
        "grouped": grouped,
        "naive": naive,
        "speedup": round(speedup, 2),
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print_result(capsys, json.dumps(doc, indent=2))

    # Acceptance floor: 200x fewer placement units must buy at least a
    # 5x end-to-end speedup on the same workload.
    assert speedup >= 5.0, doc
