"""Numpy-vs-scalar kernel benchmarks at the paper's evaluation scale.

Times every hot-path kernel on the full 226-node setting (k = 8
replicas, m = 16 micro-clusters — the upper end of the paper's sweeps)
under both backends, records the numbers in ``BENCH_kernels.json`` next
to this module, and enforces the speedup floors:

* weighted k-means and the two coordinate-distance kernels are
  embarrassingly data-parallel and must each beat the scalar oracle
  >= 3x, as must the full offline placement pipeline built from them;
* micro-cluster stream absorption is *inherently sequential* (every
  absorb/spawn/merge decision sees the clusters as the previous point
  left them), so its vectorization win is structurally modest — the
  floor only pins that the batched kernel never loses to the scalar
  loop, and the mixed kernel aggregate clears a correspondingly lower
  bar.  The honest per-kernel numbers land in the JSON either way.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro import kernels
from repro.clustering.kmeans import weighted_kmeans
from repro.clustering.stream import OnlineClusterer
from repro.coords.space import EuclideanSpace
from repro.kernels import wkmeans as wk
from repro.placement.base import PlacementProblem
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_kernels.json"

K = 8                 # replicas (paper sweeps k up to 8 on 226 nodes)
M = 16                # micro-cluster budget
ACCESSES = 3          # accesses per client per epoch
CANDIDATES = 20
REPEATS = 5


def _best(fn, repeats=REPEATS):
    """Best-of-N wall-clock; the minimum is the least noisy estimator."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.mark.bench
def test_kernel_speedups(evaluation_world, capsys):
    matrix, planar, heights = evaluation_world
    candidates = tuple(range(CANDIDATES))
    clients = tuple(range(CANDIDATES, matrix.n))
    problem = PlacementProblem(matrix=matrix, candidates=candidates,
                               clients=clients, k=K, coords=planar,
                               heights=heights)
    client_coords = planar[list(clients)]
    stream = np.repeat(client_coords, ACCESSES, axis=0)

    def time_backend(make):
        return {b: _best(make(b)) for b in kernels.BACKENDS}

    workloads = {
        "weighted_kmeans": time_backend(lambda b: (
            lambda: weighted_kmeans(client_coords, K,
                                    rng=np.random.default_rng(0),
                                    n_init=4, backend=b))),
        "cf_absorb_stream": time_backend(lambda b: (
            lambda: OnlineClusterer(M, backend=b).extend(stream))),
        "pairwise_distances": time_backend(lambda b: (
            lambda: wk.pairwise_distances(planar, heights=heights,
                                          backend=b))),
        "cross_distances": time_backend(lambda b: (
            lambda: wk.cross_distances(
                client_coords, planar[list(candidates)],
                b_heights=heights[list(candidates)], backend=b))),
        "placement_online_end_to_end": time_backend(lambda b: (
            lambda: OnlineClusteringPlacement(
                micro_clusters=M, migration_rounds=2,
                backend=b).place(problem, np.random.default_rng(0)))),
        "placement_offline_end_to_end": time_backend(lambda b: (
            lambda: OfflineKMeansPlacement(backend=b).place(
                problem, np.random.default_rng(0)))),
    }
    #: Kernels making up the aggregate "paper-scale workload" bar; the
    #: end-to-end run is excluded because it also times shared
    #: backend-independent work (RNG, problem bookkeeping).
    kernel_keys = ("weighted_kmeans", "cf_absorb_stream",
                   "pairwise_distances", "cross_distances")

    # Distance-cache effect: a warm lookup against recomputing.
    space = EuclideanSpace(dim=3, use_height=True)
    full = np.column_stack([planar, heights])
    space.pairwise_distances(full)  # warm the cache
    cached_s = _best(lambda: space.pairwise_distances(full))
    space.invalidate_cache()
    cold_s = _best(lambda: (space.invalidate_cache(),
                            space.pairwise_distances(full)))

    speedups = {name: t["python"] / t["numpy"]
                for name, t in workloads.items()}
    agg_python = sum(workloads[k]["python"] for k in kernel_keys)
    agg_numpy = sum(workloads[k]["numpy"] for k in kernel_keys)
    aggregate = agg_python / agg_numpy

    doc = {
        "benchmark": "kernels",
        "setting": {"n_nodes": matrix.n, "k": K, "micro_clusters": M,
                    "accesses_per_client": ACCESSES,
                    "stream_points": int(stream.shape[0]),
                    "repeats": REPEATS},
        "workloads": {
            name: {"numpy_ms": round(t["numpy"] * 1e3, 3),
                   "python_ms": round(t["python"] * 1e3, 3),
                   "speedup": round(speedups[name], 2)}
            for name, t in workloads.items()
        },
        "aggregate_kernel_speedup": round(aggregate, 2),
        "distance_cache": {
            "cold_ms": round(cold_s * 1e3, 3),
            "warm_hit_ms": round(cached_s * 1e3, 3),
            "hit_speedup": round(cold_s / cached_s, 2)
            if cached_s else None,
        },
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print_result(capsys, json.dumps(doc, indent=2))

    # The paper-scale >= 3x bar: the data-parallel kernels individually
    # and the full offline placement pipeline (k-means + candidate
    # distances, the heaviest compute in the evaluation).
    assert speedups["weighted_kmeans"] >= 3.0, doc
    assert speedups["pairwise_distances"] >= 3.0, doc
    assert speedups["cross_distances"] >= 3.0, doc
    assert speedups["placement_offline_end_to_end"] >= 3.0, doc
    # The mixed aggregate includes the sequential absorption kernel,
    # whose win is structurally modest; its floor is correspondingly
    # lower so scheduler noise cannot flake the nightly job.
    assert aggregate >= 2.5, doc
    # The sequential kernels only have to not lose to the scalar oracle.
    assert speedups["cf_absorb_stream"] >= 1.0, doc
    assert speedups["placement_online_end_to_end"] >= 1.0, doc
    # A warm cache hit only copies; it must beat recomputation.
    assert cached_s < cold_s, doc
