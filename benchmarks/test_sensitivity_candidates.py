"""Sensitivity — how candidate data centers are drawn.

DESIGN.md §5.0 documents the key methodology decision of this
reproduction: the paper's candidate nodes are "dispersed at diverse
geographic locations", which this repo realizes with randomized
farthest-point sampling.  This bench quantifies the decision by running
Figure 2's k = 3 point under both candidate modes and reporting the
online-vs-random gain and the online/optimal ratio for each.

Expected: under ``dispersed`` the paper's ≥ 35 % headline holds; under
``uniform`` (candidates proportional to client density) even *optimal*
cannot beat random by 35 %, demonstrating why the dispersed reading of
Section IV-A is the right one.

The benchmark timing measures one dispersed candidate draw.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates, summarize
from repro.analysis.experiment import default_strategies, run_comparison

from conftest import FULL_SETTING, print_result

MODES = ("dispersed", "uniform")


@pytest.fixture(scope="module")
def sensitivity(evaluation_world):
    matrix, coords, heights = evaluation_world
    out = {}
    for mode in MODES:
        delays = run_comparison(matrix, coords, default_strategies(10),
                                n_dc=20, k=3, n_runs=FULL_SETTING.n_runs,
                                seed=FULL_SETTING.seed, heights=heights,
                                candidate_mode=mode)
        out[mode] = {name: summarize(values)
                     for name, values in delays.items()}
    return out


def test_sensitivity_table(sensitivity, capsys, benchmark):
    lines = ["Candidate-mode sensitivity — k=3, 20 DCs, 30 runs",
             f"{'mode':>10} | {'random':>8} | {'online':>8} | "
             f"{'optimal':>8} | {'gain':>6} | {'on/opt':>6}"]
    for mode, rows in sensitivity.items():
        r = rows["random"].mean
        on = rows["online clustering"].mean
        opt = rows["optimal"].mean
        lines.append(f"{mode:>10} | {r:>8.1f} | {on:>8.1f} | {opt:>8.1f} | "
                     f"{100 * (r - on) / r:>5.0f}% | {on / opt:>6.2f}")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))


def test_dispersed_reproduces_headline(sensitivity):
    rows = sensitivity["dispersed"]
    gain = (rows["random"].mean - rows["online clustering"].mean) \
        / rows["random"].mean
    assert gain >= 0.35


def test_uniform_caps_even_optimal_below_headline(sensitivity):
    rows = sensitivity["uniform"]
    optimal_gain = (rows["random"].mean - rows["optimal"].mean) \
        / rows["random"].mean
    # The documented cap: density-proportional candidates leave even the
    # oracle short of the paper's 35 % claim.
    assert optimal_gain < 0.35


def test_online_near_optimal_in_both_modes(sensitivity):
    for mode in MODES:
        rows = sensitivity[mode]
        assert rows["online clustering"].mean <= rows["optimal"].mean * 1.25


def test_candidate_draw_kernel(benchmark, evaluation_world):
    matrix, _, _ = evaluation_world
    counter = {"i": 0}

    def draw():
        counter["i"] += 1
        return draw_candidates(matrix, 20,
                               np.random.default_rng(counter["i"]),
                               "dispersed")

    candidates, clients = benchmark(draw)
    assert len(candidates) == 20
