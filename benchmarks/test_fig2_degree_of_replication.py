"""Figure 2 — impact of the degree of replication (20 data centers).

Paper's observations this bench reproduces and asserts:

* average delay decreases with the number of replicas in every
  strategy, with diminishing returns (particularly after k = 4);
* online clustering is comparable to offline k-means and only slightly
  worse than the exhaustive optimum;
* online clustering consistently achieves **at least 35 % lower**
  average access delay than random placement — the headline claim.

The benchmark timing measures the exhaustive optimal search at k = 3.
"""

import numpy as np
import pytest

from repro import OptimalPlacement, PlacementProblem, run_figure2
from repro.analysis import format_figure

from conftest import FULL_SETTING, print_result


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(FULL_SETTING)


def test_fig2_series(figure2, capsys, benchmark):
    text = benchmark(lambda: format_figure(figure2))
    print_result(capsys, text)
    # Headline claims, asserted in benchmark-only runs too:
    for k, r, on, opt in zip(figure2.xs("random"), figure2.means("random"),
                             figure2.means("online clustering"),
                             figure2.means("optimal")):
        assert (r - on) / r >= 0.35, f"k={int(k)}"
        assert opt <= on <= opt * 1.2
    gains = [
        f"k={int(k)}: {100 * (r - on) / r:.0f}% below random, "
        f"{100 * (on / opt - 1):.0f}% above optimal"
        for k, r, on, opt in zip(
            figure2.xs("random"), figure2.means("random"),
            figure2.means("online clustering"), figure2.means("optimal"))
    ]
    print_result(capsys, "online clustering vs baselines:\n" + "\n".join(gains))


def test_fig2_delay_decreases_with_k(figure2):
    for name, points in figure2.series.items():
        means = [p.mean for p in points]
        assert means[-1] < means[0], name
        # Largely monotone: each step down, small noise tolerated.
        for a, b in zip(means, means[1:]):
            assert b <= a * 1.05, name


def test_fig2_diminishing_returns_after_4(figure2):
    opt = figure2.means("optimal")
    early_drop = opt[0] - opt[3]   # k=1 -> k=4
    late_drop = opt[3] - opt[6]    # k=4 -> k=7
    assert early_drop > 2 * late_drop


def test_fig2_online_at_least_35pct_below_random(figure2):
    for k, r, on in zip(figure2.xs("random"), figure2.means("random"),
                        figure2.means("online clustering")):
        gain = (r - on) / r
        assert gain >= 0.35, f"k={int(k)}: only {gain:.0%}"


def test_fig2_online_comparable_to_offline(figure2):
    for on, off in zip(figure2.means("online clustering"),
                       figure2.means("offline k-means")):
        assert abs(on - off) <= 0.15 * off


def test_fig2_online_slightly_worse_than_optimal(figure2):
    for on, opt in zip(figure2.means("online clustering"),
                       figure2.means("optimal")):
        assert opt <= on <= opt * 1.2


def test_fig2_gain_is_statistically_significant(figure2, evaluation_world,
                                                benchmark):
    # The 30 paired runs at k = 3 must show online < random at p < 0.01
    # (paired t-test: each strategy saw identical candidate draws).
    from repro.analysis import compare_paired
    from repro.analysis.experiment import default_strategies, run_comparison
    matrix, coords, heights = evaluation_world
    delays = run_comparison(matrix, coords, default_strategies(10),
                            n_dc=20, k=3, n_runs=FULL_SETTING.n_runs,
                            seed=FULL_SETTING.seed, heights=heights)
    result = benchmark.pedantic(
        lambda: compare_paired(delays["online clustering"], delays["random"]),
        rounds=3, iterations=1)
    assert result.a_is_better
    assert result.p_value < 0.01
    # ... and online vs optimal is also a real (small) difference.
    vs_optimal = compare_paired(delays["online clustering"],
                                delays["optimal"])
    assert vs_optimal.mean_difference > 0  # optimal remains the bound


def test_fig2_optimal_search_kernel(benchmark, evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(0)
    candidates = tuple(int(i) for i in rng.choice(matrix.n, 20, replace=False))
    clients = tuple(i for i in range(matrix.n) if i not in set(candidates))
    problem = PlacementProblem(matrix, candidates, clients, 3,
                               coords=coords, heights=heights)
    strategy = OptimalPlacement()
    benchmark(lambda: strategy.place(problem, np.random.default_rng(1)))
