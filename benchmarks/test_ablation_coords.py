"""Ablation — which coordinate system feeds the placement algorithm.

The paper uses RNP.  This ablation swaps the coordinate system under
the online clustering strategy (everything else fixed: 20 dispersed
candidates, k = 3, 30 runs) to show how placement quality degrades with
embedding quality.  The extra ``oracle`` row clusters on *perfect*
coordinates (classical MDS of the true matrix is the closest realizable
stand-in), bounding what any coordinate system could deliver.

The benchmark timing measures one full RNP embedding of the 226-node
matrix (the per-experiment setup cost).
"""

import numpy as np
import pytest

from repro import EvaluationSetting, run_coord_ablation
from repro.analysis import format_figure
from repro.coords import embed_matrix
from repro.net import PlanetLabParams, synthetic_planetlab_matrix

from conftest import FULL_SETTING, print_result


@pytest.fixture(scope="module")
def ablation():
    return run_coord_ablation(FULL_SETTING)


def test_coord_ablation_table(ablation, capsys, benchmark):
    print_result(capsys, benchmark(lambda: format_figure(ablation)))
    assert set(ablation.series) == {"mds", "rnp", "vivaldi", "gnp"}
    values = {n: p[0].mean for n, p in ablation.series.items()}
    assert max(values.values()) <= min(values.values()) * 1.35


def test_all_systems_produce_usable_placements(ablation):
    values = {name: points[0].mean for name, points in ablation.series.items()}
    best = min(values.values())
    # No system may be catastrophically worse than the best one: the
    # placement layer is robust to moderate embedding error.
    for name, value in values.items():
        assert value <= best * 1.35, (name, value, best)


def test_height_aware_systems_not_dominated(ablation):
    # The height-vector systems (rnp, vivaldi) see per-node congestion
    # that planar MDS cannot; they must be at least competitive.
    rnp = ablation.series["rnp"][0].mean
    mds = ablation.series["mds"][0].mean
    assert rnp <= mds * 1.10


def test_embedding_kernel(benchmark):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=0)
    benchmark.pedantic(
        lambda: embed_matrix(matrix, system="rnp", rounds=30,
                             rng=np.random.default_rng(1)),
        rounds=3, iterations=1)
