"""Table II — online vs. offline clustering overheads.

Paper's claims this bench reproduces and asserts:

* bandwidth: the online scheme ships O(k·m) micro-clusters (< 300 KB in
  the paper's 3×100 example) regardless of the number of accesses; the
  offline approach ships every client coordinate — O(n), tens of
  megabytes at a million accesses;
* computation: the coordinator's clustering cost is independent of n
  online (it clusters k·m pseudo-points) but grows with n offline.

The benchmark timing measures the coordinator's macro-clustering step
(Algorithm 1) at the paper's k = 3, m = 100 example size.
"""

import numpy as np
import pytest

from repro import place_replicas
from repro.analysis import format_table2, run_table2
from repro.core import (
    ReplicaAccessSummary,
    offline_bandwidth_bytes,
    online_bandwidth_bytes,
)

from conftest import print_result


@pytest.fixture(scope="module")
def table2():
    return run_table2(n_accesses_list=(1_000, 10_000, 100_000, 300_000),
                      k=3, m=100)


def test_table2_rows(table2, capsys, benchmark):
    text = benchmark(lambda: format_table2(table2))
    print_result(capsys, text)
    assert len(table2) == 4
    # Headline claims, asserted in benchmark-only runs too:
    sizes = [row.online_bytes for row in table2]
    assert max(sizes) <= min(sizes) * 1.5
    assert table2[-1].offline_bytes > 100 * table2[-1].online_bytes


def test_table2_online_bandwidth_independent_of_n(table2):
    sizes = [row.online_bytes for row in table2]
    assert max(sizes) <= min(sizes) * 1.5
    # The paper's bound: 300 micro-clusters under 300 KB.
    assert all(s < 300 * 1024 for s in sizes)


def test_table2_offline_bandwidth_linear_in_n(table2):
    for a, b in zip(table2, table2[1:]):
        expected_ratio = b.n_accesses / a.n_accesses
        assert b.offline_bytes == pytest.approx(
            a.offline_bytes * expected_ratio)


def test_table2_orders_of_magnitude_at_scale(table2):
    last = table2[-1]
    assert last.offline_bytes > 100 * last.online_bytes


def test_table2_online_compute_independent_of_n(table2):
    times = [row.online_seconds for row in table2]
    # Coordinator work stays flat (generous 20x tolerance over timer noise).
    assert max(times) <= max(min(times), 1e-3) * 20


def test_table2_offline_compute_grows_with_n(table2):
    assert table2[-1].offline_seconds > table2[0].offline_seconds * 5


def test_table2_analytic_formulas_match_paper_example():
    # "If 100 micro-clusters are maintained for each of three replicas,
    #  each replica placement involves transferring 300 micro-clusters
    #  (i.e., less than 300KB of data)."
    assert online_bandwidth_bytes(3, 100, dim=3) < 300 * 1024
    # "offline clustering would require transferring more than tens of
    #  megabytes" for 1M accesses.
    assert offline_bandwidth_bytes(1_000_000, dim=3) > 10 * 1024 ** 2


def test_table2_macro_clustering_kernel(benchmark):
    # The coordinator's per-epoch work at the paper's example size.
    rng = np.random.default_rng(0)
    summaries = [ReplicaAccessSummary(100, radius_floor=10.0)
                 for _ in range(3)]
    points = rng.uniform(-200, 200, size=(3000, 3))
    for i, p in enumerate(points):
        summaries[i % 3].record_access(p)
    pooled = [c for s in summaries for c in s.snapshot()]
    dc_coords = rng.uniform(-200, 200, size=(20, 3))
    benchmark(lambda: place_replicas(pooled, 3, dc_coords,
                                     np.random.default_rng(1)))
