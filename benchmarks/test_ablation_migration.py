"""Ablation — the migration threshold (Section III-C policy).

The paper migrates only when the latency gain clears a threshold,
trading access delay against migration (transfer) cost.  This bench
runs the full simulated store under a regional demand shift for a range
of thresholds and reports both sides of the trade: mean read delay over
the run and the number of migrations (≈ dollars at $0.1/GB).

The benchmark timing measures one placement epoch of the controller.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig, MigrationPolicy, ReplicationController
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation, RegionalShift

from conftest import print_result

THRESHOLDS = (0.0, 0.02, 0.05, 0.20, 0.50)


def run_scenario(threshold: float):
    params = PlanetLabParams(n=80)
    matrix, topology = synthetic_planetlab_matrix(params, seed=3)
    result = embed_matrix(matrix, system="rnp", rounds=80,
                          rng=np.random.default_rng(4))
    planar = result.coords[:, :result.space.dim]
    sim = Simulator(seed=3)
    candidates, _ = draw_candidates(matrix, 15, np.random.default_rng(5))
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle")
    store.create_object(
        "obj", k=2,
        controller_config=ControllerConfig(k=2, max_micro_clusters=10),
        policy=MigrationPolicy(min_relative_gain=threshold,
                               min_absolute_gain_ms=0.0),
        epoch_period_ms=10_000.0,
    )
    clients = tuple(i for i in range(80) if i not in set(candidates))
    regions = sorted({topology.region_name(c) for c in clients})
    pattern = RegionalShift(topology, regions[0], regions[-1],
                            start_ms=30_000.0, end_ms=90_000.0,
                            intensity=15.0)
    AccessWorkload(store, ClientPopulation.uniform(clients), ["obj"],
                   rate_per_second=100.0, pattern=pattern)
    sim.run_until(120_000.0)
    reports = store.epoch_reports("obj")
    return {
        "delay": store.log.mean_delay(kind="read"),
        "migrations": sum(1 for r in reports if r.migrated),
        "dollars": store.controller("obj").tally.migration_dollars,
    }


@pytest.fixture(scope="module")
def sweep():
    return {t: run_scenario(t) for t in THRESHOLDS}


def test_migration_threshold_table(sweep, capsys, benchmark):
    lines = ["Migration-threshold ablation — regional demand shift, k=2",
             f"{'threshold':>10} | {'mean read delay':>16} | "
             f"{'migrations':>10} | {'cost ($)':>9}"]
    for t, row in sweep.items():
        lines.append(f"{t:>10.2f} | {row['delay']:>13.1f} ms | "
                     f"{row['migrations']:>10d} | {row['dollars']:>9.2f}")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    migrations = [sweep[t]["migrations"] for t in THRESHOLDS]
    for a, b in zip(migrations, migrations[1:]):
        assert a >= b


def test_lower_thresholds_migrate_at_least_as_often(sweep):
    migrations = [sweep[t]["migrations"] for t in THRESHOLDS]
    for a, b in zip(migrations, migrations[1:]):
        assert a >= b


def test_chasing_demand_beats_never_migrating(sweep):
    # An infinite threshold is "place once, never move"; 0.5 is close.
    assert sweep[0.0]["delay"] <= sweep[0.50]["delay"] * 1.02


def test_moderate_threshold_near_best_delay_at_lower_cost(sweep):
    # The paper's operating point: most of the latency win, fewer moves.
    best_delay = min(row["delay"] for row in sweep.values())
    moderate = sweep[0.05]
    assert moderate["delay"] <= best_delay * 1.15
    assert moderate["migrations"] <= sweep[0.0]["migrations"]


def test_epoch_kernel(benchmark):
    rng = np.random.default_rng(0)
    dc_coords = rng.uniform(-100, 100, size=(20, 3))
    controller = ReplicationController(
        dc_coords, [0, 1, 2],
        config=ControllerConfig(k=3, max_micro_clusters=10))
    points = rng.normal(0, 60, size=(512, 3))

    def one_epoch():
        for site in controller.sites:
            for p in points[:128]:
                controller.record_access(site, p)
        controller.run_epoch(np.random.default_rng(1))

    benchmark(one_epoch)
