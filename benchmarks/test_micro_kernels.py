"""Micro-benchmarks of the computational kernels.

Not tied to a specific table/figure; these pin the performance of the
pieces every experiment is built from so regressions are visible:

* weighted k-means over micro-cluster pseudo-points,
* the exhaustive optimal scan,
* the event simulator's message throughput,
* the synthetic matrix generator.
"""

import numpy as np
import pytest

from repro.clustering import weighted_kmeans
from repro.net import LatencyMatrix, PlanetLabParams, synthetic_planetlab_matrix
from repro.placement import OptimalPlacement, PlacementProblem
from repro.sim import Network, Node, Simulator


def test_weighted_kmeans_kernel(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(0, 100, size=(300, 3))
    weights = rng.uniform(1, 50, size=300)
    benchmark(lambda: weighted_kmeans(points, 7, weights=weights,
                                      rng=np.random.default_rng(1)))


def test_optimal_scan_k7_kernel(benchmark):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=0)
    rng = np.random.default_rng(0)
    candidates = tuple(int(i) for i in rng.choice(226, 20, replace=False))
    clients = tuple(i for i in range(226) if i not in set(candidates))
    problem = PlacementProblem(matrix, candidates, clients, 7)
    strategy = OptimalPlacement()
    benchmark.pedantic(
        lambda: strategy.place(problem, np.random.default_rng(1)),
        rounds=3, iterations=1)


class _Echo(Node):
    def handle_message(self, message):
        if message.kind == "ping":
            self.send(message.sender, "pong")


def test_simulator_message_throughput(benchmark):
    rtt = np.full((50, 50), 20.0)
    np.fill_diagonal(rtt, 0.0)
    matrix = LatencyMatrix(rtt)

    def run_10k_messages():
        sim = Simulator(seed=0)
        net = Network(sim, matrix)
        nodes = [_Echo(net, i) for i in range(50)]
        for i in range(5_000):
            nodes[i % 50].send((i + 1) % 50, "ping")
        sim.run()
        return sim.events_processed

    events = benchmark(run_10k_messages)
    assert events >= 10_000  # each ping produces a pong


def test_matrix_generation_kernel(benchmark):
    benchmark(lambda: synthetic_planetlab_matrix(PlanetLabParams(), seed=1))
