"""Micro-benchmarks of the computational kernels.

Not tied to a specific table/figure; these pin the performance of the
pieces every experiment is built from so regressions are visible:

* weighted k-means over micro-cluster pseudo-points,
* the exhaustive optimal scan,
* the event simulator's message throughput (with observability off —
  the default no-op path — and on, so the instrumentation overhead is
  itself a pinned, visible number),
* the synthetic matrix generator.

The observability-enabled throughput benchmark also emits its metrics
registry as JSON next to this module (``metrics-micro_kernels.json``),
so a benchmark run leaves machine-readable telemetry alongside the
pytest-benchmark timings.
"""

import pathlib

import numpy as np
import pytest

from repro import obs
from repro.analysis.export import metrics_to_json
from repro.clustering import weighted_kmeans
from repro.net import LatencyMatrix, PlanetLabParams, synthetic_planetlab_matrix
from repro.placement import OptimalPlacement, PlacementProblem
from repro.sim import Network, Node, Simulator

#: Where the obs-enabled benchmark drops its metrics document.
METRICS_OUT = pathlib.Path(__file__).parent / "metrics-micro_kernels.json"


def test_weighted_kmeans_kernel(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(0, 100, size=(300, 3))
    weights = rng.uniform(1, 50, size=300)
    benchmark(lambda: weighted_kmeans(points, 7, weights=weights,
                                      rng=np.random.default_rng(1)))


def test_optimal_scan_k7_kernel(benchmark):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=0)
    rng = np.random.default_rng(0)
    candidates = tuple(int(i) for i in rng.choice(226, 20, replace=False))
    clients = tuple(i for i in range(226) if i not in set(candidates))
    problem = PlacementProblem(matrix, candidates, clients, 7)
    strategy = OptimalPlacement()
    benchmark.pedantic(
        lambda: strategy.place(problem, np.random.default_rng(1)),
        rounds=3, iterations=1)


class _Echo(Node):
    def handle_message(self, message):
        if message.kind == "ping":
            self.send(message.sender, "pong")


def _run_10k_messages():
    sim = Simulator(seed=0)
    net = Network(sim, matrix_50())
    nodes = [_Echo(net, i) for i in range(50)]
    for i in range(5_000):
        nodes[i % 50].send((i + 1) % 50, "ping")
    sim.run()
    return sim.events_processed


_MATRIX_50 = None


def matrix_50():
    global _MATRIX_50
    if _MATRIX_50 is None:
        rtt = np.full((50, 50), 20.0)
        np.fill_diagonal(rtt, 0.0)
        _MATRIX_50 = LatencyMatrix(rtt)
    return _MATRIX_50


def test_simulator_message_throughput(benchmark):
    # Observability off: this is the default no-op path every experiment
    # runs on, so any regression here is instrumentation overhead that
    # leaked into the disabled case.
    events = benchmark(_run_10k_messages)
    assert events >= 10_000  # each ping produces a pong


def test_simulator_message_throughput_obs_enabled(benchmark):
    """Same workload with live metrics + tracing, to price the overhead.

    Also checks the observability invariant: the simulation processes
    exactly the same number of events with instrumentation on as off,
    and emits the collected metrics as JSON alongside the results.
    """
    baseline_events = _run_10k_messages()

    def run_instrumented():
        with obs.observe() as (registry, tracer):
            events = _run_10k_messages()
        return events, registry, tracer

    events, registry, tracer = benchmark(run_instrumented)
    assert events == baseline_events  # obs must not perturb the sim
    assert registry.counter("net.messages_delivered").value >= 10_000
    metrics_to_json(registry, str(METRICS_OUT), tracer=tracer)


def test_matrix_generation_kernel(benchmark):
    benchmark(lambda: synthetic_planetlab_matrix(PlanetLabParams(), seed=1))
