"""Serial vs warm-pool runner throughput on a reduced Figure-1 sweep.

Runs the same sweep three ways — serial (``jobs=1``), warm-pool parallel
(``jobs=workers`` with auto-tuned chunking) and replayed from a warm
cache — checks the results are bit-identical, and records the
wall-clock numbers plus the executor's self-reported tuning (chunk
size, dispatch overhead, shared-memory world bytes) in
``BENCH_runner.json`` next to this module.

On a multi-core runner the parallel pass must clear the CI floor
(``parallel_speedup >= 1.5`` at >= 200 jobs and >= 2 workers).  On a
single-core runner the numbers are still recorded but the floor is
skipped with an explicit reason — there is nothing to win there, only
pool overhead to pay.
"""

import json
import os
import pathlib
import tempfile
import time

import pytest

from repro import obs
from repro.analysis.experiment import EvaluationSetting, run_figure1

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_runner.json"

#: Reduced Figure-1 sweep: >= 200 jobs (the CI floor's precondition),
#: each doing real placement work, finishing in a couple of minutes.
SETTING = EvaluationSetting(n_nodes=60, n_runs=17, seed=0)
SWEEP = dict(datacenter_counts=(5, 10, 15), k=3, micro_clusters=4)
#: jobs per sweep: |datacenter_counts| x 4 strategies x n_runs.
TOTAL_JOBS = len(SWEEP["datacenter_counts"]) * 4 * SETTING.n_runs
#: The CI floor: parallel must beat serial by this factor when the
#: preconditions (>= 200 jobs, >= 2 workers on >= 2 CPUs) hold.
SPEEDUP_FLOOR = 1.5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.bench
def test_runner_throughput(capsys):
    cpus = os.cpu_count() or 1
    workers = max(2, cpus)
    assert TOTAL_JOBS >= 200, "floor precondition: benchmark must be >= 200 jobs"

    # Pre-warm the in-process world memo so the serial baseline measures
    # placement compute, not one-off world construction.  (The parallel
    # pass still pays its real overhead: pool startup and shipping the
    # world to the workers.)
    from repro.runner import workers as runner_workers
    runner_workers.world_memo.get_or_build(SETTING)

    serial, serial_s = _timed(lambda: run_figure1(SETTING, **SWEEP))

    registry = obs.MetricsRegistry()
    with tempfile.TemporaryDirectory() as cache_dir:
        with obs.observe(registry, obs.NULL_TRACER):
            parallel, parallel_s = _timed(lambda: run_figure1(
                SETTING, **SWEEP, jobs=workers, cache_dir=cache_dir))
        assert parallel == serial, "parallel run is not bit-identical"

        resumed, resume_s = _timed(lambda: run_figure1(
            SETTING, **SWEEP, jobs=workers, cache_dir=cache_dir, resume=True))
        assert resumed == serial, "cache replay is not bit-identical"

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    doc = {
        "benchmark": "runner_throughput",
        "sweep": {"figure": "figure1", "n_nodes": SETTING.n_nodes,
                  "n_runs": SETTING.n_runs, "jobs_total": TOTAL_JOBS,
                  **{k: list(v) if isinstance(v, tuple) else v
                     for k, v in SWEEP.items()}},
        "cpu_count": cpus,
        "workers": workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "cache_replay_seconds": round(resume_s, 3),
        "parallel_speedup": round(speedup, 3),
        "cache_replay_speedup": round(serial_s / resume_s, 3)
        if resume_s else None,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": cpus >= 2,
        "chunk_size": registry.gauge("runner.chunk_size").snapshot(),
        "chunks": registry.counter("runner.chunks").snapshot(),
        "dispatch_overhead_seconds": round(
            registry.gauge("runner.dispatch_overhead").snapshot(), 6),
        "shm": {
            "used": registry.gauge("runner.shm_bytes").snapshot() > 0,
            "world_bytes": registry.gauge("runner.shm_bytes").snapshot(),
        },
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")

    print_result(capsys, json.dumps(doc, indent=2))

    # The cache replay never recomputes, so it must beat the serial run
    # whatever the hardware.
    assert resume_s < serial_s
    # The parallel-speedup floor only applies where parallelism exists.
    if cpus < 2:
        pytest.skip(
            f"parallel-speedup floor skipped: os.cpu_count()={cpus} < 2 — "
            f"no parallelism to win on this host (numbers still recorded "
            f"in {BENCH_OUT.name}: speedup {speedup:.2f}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x parallel speedup with {workers} "
        f"workers on {cpus} cores at {TOTAL_JOBS} jobs, got {speedup:.2f}x")
