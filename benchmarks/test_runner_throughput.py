"""Serial vs parallel runner throughput on a reduced Figure-1 sweep.

Runs the same sweep three ways — serial (``jobs=1``), process-pool
parallel (``jobs=cpu_count``) and replayed from a warm cache — checks
the results are bit-identical, and records the wall-clock numbers in
``BENCH_runner.json`` next to this module.  On a multi-core runner the
parallel pass must beat serial (the paper's grid is embarrassingly
parallel, so the speedup should approach the core count); on a
single-core runner the numbers are still recorded but the speedup
assertion is skipped — there is nothing to win there, only pool
overhead to pay.
"""

import json
import os
import pathlib
import tempfile
import time

from repro.analysis.experiment import EvaluationSetting, run_figure1

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_runner.json"

#: Reduced Figure-1 sweep: large enough that each job does real work,
#: small enough that the three passes finish in a couple of minutes.
SETTING = EvaluationSetting(n_nodes=60, n_runs=6, seed=0)
SWEEP = dict(datacenter_counts=(5, 10, 15), k=3, micro_clusters=4)
#: jobs per sweep: |datacenter_counts| x 4 strategies x n_runs.
TOTAL_JOBS = len(SWEEP["datacenter_counts"]) * 4 * SETTING.n_runs


def _timed(label, fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_runner_throughput(capsys):
    cpus = os.cpu_count() or 1
    # Pre-warm the in-process world memo so the serial baseline measures
    # placement compute, not one-off world construction.  (The parallel
    # pass still pays its real overhead: pool startup and a cold world
    # per worker process.)
    from repro.runner import pool
    pool._worlds.setdefault(SETTING, SETTING.build())

    serial, serial_s = _timed("serial", lambda: run_figure1(SETTING, **SWEEP))

    with tempfile.TemporaryDirectory() as cache_dir:
        parallel, parallel_s = _timed("parallel", lambda: run_figure1(
            SETTING, **SWEEP, jobs=cpus, cache_dir=cache_dir))
        assert parallel == serial, "parallel run is not bit-identical"

        resumed, resume_s = _timed("resume", lambda: run_figure1(
            SETTING, **SWEEP, jobs=cpus, cache_dir=cache_dir, resume=True))
        assert resumed == serial, "cache replay is not bit-identical"

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    doc = {
        "benchmark": "runner_throughput",
        "sweep": {"figure": "figure1", "n_nodes": SETTING.n_nodes,
                  "n_runs": SETTING.n_runs, "jobs_total": TOTAL_JOBS,
                  **{k: list(v) if isinstance(v, tuple) else v
                     for k, v in SWEEP.items()}},
        "cpu_count": cpus,
        "workers": cpus,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "cache_replay_seconds": round(resume_s, 3),
        "parallel_speedup": round(speedup, 3),
        "cache_replay_speedup": round(serial_s / resume_s, 3)
        if resume_s else None,
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")

    print_result(capsys, json.dumps(doc, indent=2))

    # The cache replay never recomputes, so it must beat the serial run
    # whatever the hardware.
    assert resume_s < serial_s
    # The parallel-speedup bar only applies where parallelism exists.
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {cpus} cores, "
            f"got {speedup:.2f}x")
