"""Batched-engine throughput under a dense correlated-fault schedule.

Chaos runs used to be the batched engine's worst case: every crash and
recovery is a barrier, and with a fault every few seconds the bulk
windows shrink until the engine degenerates to oracle speed — while
re-deriving every (client, key) access group from scratch in each
window.  The cross-window group cache in
:mod:`repro.store.batched` (keyed on the store's placement version and
the network's fault epoch) keeps those derivations alive between
consecutive windows whose fault state did not change, so a dense
correlated-outage schedule no longer collapses the speedup.

The schedule here cycles a two-node rack outage (crash + recovery)
every 3 simulated seconds for the whole run — a fault density far
beyond any bundled scenario — on a 64-node world at ~1e5 client
accesses.  ``BENCH_chaos.json`` records both engines' wall clock, the
events each retired, and the barrier count (``barriers_fired``) that
measures how chopped-up the run was for bulk processing.

Every batched configuration here is an instance of the family the
differential suite (``tests/integration/test_engine_equivalence.py``
and ``tests/integration/test_availability_chaos.py``) proves bitwise
identical to the per-event oracle, so the speedup is not bought with
accuracy.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.net.domains import FailureDomains
from repro.sim import FailureInjector, Simulator
from repro.store import BatchedAccessWorkload, ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_chaos.json"

N_NODES = 64
N_DC = 12
SEED = 7
RATE_PER_SECOND = 2_000
HORIZON_MS = 52_000.0
FAULT_PERIOD_MS = 3_000.0
OUTAGE_MS = 1_500.0


def _world():
    rng = np.random.default_rng(1234)
    coords = rng.uniform(0, 100, size=(N_NODES, 2))
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _run_once(engine):
    matrix, coords = _world()
    candidates = list(range(N_DC))
    domains = FailureDomains.contiguous(N_DC, regions=2, dcs_per_region=3,
                                        racks_per_dc=1, p_rack=0.05)
    sim = Simulator(seed=SEED)
    store = ReplicatedStore(sim, matrix, candidates, coords,
                            selection="oracle", domains=domains)
    store.create_object("obj", size_gb=0.5, k=3)
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload_cls = (BatchedAccessWorkload if engine == "batched"
                    else AccessWorkload)
    workload = workload_cls(store, population, ["obj"],
                            rate_per_second=RATE_PER_SECOND)

    # Dense correlated outages: one rack (two candidates) blinks out
    # every FAULT_PERIOD_MS for the entire run, rack choice rotating so
    # replica holders are hit regularly.
    injector = FailureInjector(store.network)
    n_racks = N_DC // 2
    at = FAULT_PERIOD_MS
    cycle = 0
    while at < HORIZON_MS:
        rack = cycle % n_racks
        for member in (2 * rack, 2 * rack + 1):
            injector.crash_at(at, candidates[member])
            injector.recover_at(at + OUTAGE_MS, candidates[member])
        at += FAULT_PERIOD_MS
        cycle += 1

    start = time.perf_counter()
    sim.run_until(HORIZON_MS)
    wall_s = time.perf_counter() - start
    return {
        "engine": engine,
        "accesses": workload.operations_issued,
        "faults_injected": 2 * cycle,
        "wall_s": round(wall_s, 3),
        "us_per_access": round(wall_s / workload.operations_issued * 1e6, 2),
        "events_processed": sim.events_processed,
        "barriers_fired": sim.queue.barriers_fired,
    }


def _run(engine, repeats=2):
    # Best-of-N: single samples on a shared machine swing by +-50%; the
    # minimum is the least-noisy estimator of the code's true cost.
    runs = [_run_once(engine) for _ in range(repeats)]
    return min(runs, key=lambda r: r["wall_s"])


@pytest.mark.bench
def test_chaos_throughput(capsys):
    event = _run("event")
    batched = _run("batched")
    assert event["accesses"] == batched["accesses"] >= 100_000
    speedup = event["wall_s"] / batched["wall_s"]

    doc = {
        "benchmark": "chaos-throughput",
        "setting": {"n_nodes": N_NODES, "n_dc": N_DC, "k": 3, "seed": SEED,
                    "rate_per_second": RATE_PER_SECOND,
                    "horizon_ms": HORIZON_MS,
                    "fault_period_ms": FAULT_PERIOD_MS,
                    "outage_ms": OUTAGE_MS,
                    "workload": "uniform read-only + cycling rack outages"},
        "event": event,
        "batched": batched,
        "speedup": round(speedup, 2),
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print_result(capsys, json.dumps(doc, indent=2))

    # Conservative floor: even with a fault barrier every 1.5 simulated
    # seconds the batched engine must stay well clear of oracle speed.
    assert speedup >= 3.0, doc
