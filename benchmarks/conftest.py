"""Shared configuration for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper at full scale (226 nodes, 30 runs per point — the
paper's setting) and prints each one as a text table.  The
pytest-benchmark timings attached to each module measure the
representative computational kernel of that experiment.
"""

import numpy as np
import pytest

from repro import EvaluationSetting


#: The paper's full evaluation setting (Section IV-A).
FULL_SETTING = EvaluationSetting(n_nodes=226, n_runs=30,
                                 coord_system="rnp", seed=0)


@pytest.fixture(scope="session")
def full_setting():
    return FULL_SETTING


@pytest.fixture(scope="session")
def evaluation_world():
    """(matrix, planar coords, heights) for the full 226-node setting."""
    return FULL_SETTING.build()


def print_result(capsys, text: str) -> None:
    """Print a result table so it lands in the benchmark output."""
    with capsys.disabled():
        print("\n" + text + "\n")
