"""Extension — split objects (erasure coding) vs whole-object replication.

The paper's related work ([11], Chandy 2008) places *pieces* of objects
instead of whole replicas.  This bench compares the two at **equal
storage overhead 2×** on the standard setting (226 nodes, 20 dispersed
candidates, 30 runs):

* replication r=2: two full replicas, read = nearest of 2;
* coded 2-of-4: four half-size fragments, read = 2nd-nearest of 4;
* coded 3-of-6: six third-size fragments, read = 3rd-nearest of 6.

Each scheme is *placed* with its own objective (coordinates only) and
*scored* with its own delay model on true RTTs, mean and p95.  The
structural result this pins down: replication wins the mean (waiting
for one is fastest), while coding narrows the spread across clients —
more sites means fewer badly stranded clients.

The benchmark timing measures one coded placement call.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates, summarize
from repro.placement import (
    CodedPlacement,
    OnlineClusteringPlacement,
    PlacementProblem,
    coded_access_delay,
)

from conftest import FULL_SETTING, print_result

SCHEMES = [
    ("replication r=2", OnlineClusteringPlacement(micro_clusters=10), 1, 2),
    ("coded 2-of-4", CodedPlacement(4, 2), 2, None),
    ("coded 3-of-6", CodedPlacement(6, 3), 3, None),
]


def per_client_delays(matrix, clients, sites, k_required):
    block = matrix.rows(list(clients), list(sites))
    return np.partition(block, k_required - 1, axis=1)[:, k_required - 1]


@pytest.fixture(scope="module")
def comparison(evaluation_world):
    matrix, coords, heights = evaluation_world
    results = {name: {"mean": [], "p95": []} for name, *_ in SCHEMES}
    for run in range(FULL_SETTING.n_runs):
        rng = np.random.default_rng((FULL_SETTING.seed, run))
        candidates, clients = draw_candidates(matrix, 20, rng)
        for name, strategy, k_required, k_repl in SCHEMES:
            problem = PlacementProblem(
                matrix, candidates, clients,
                k=k_repl if k_repl is not None else 3,
                coords=coords, heights=heights)
            sites = strategy.place(problem, np.random.default_rng(run))
            delays = per_client_delays(matrix, clients, sites, k_required)
            results[name]["mean"].append(float(delays.mean()))
            results[name]["p95"].append(float(np.percentile(delays, 95)))
    return results


def test_coded_vs_replication_table(comparison, capsys, benchmark):
    lines = ["Split objects vs replication — equal 2x storage, 30 runs",
             f"{'scheme':>16} | {'mean delay':>10} | {'p95 delay':>10}"]
    for name in comparison:
        mean = summarize(comparison[name]["mean"]).mean
        p95 = summarize(comparison[name]["p95"]).mean
        lines.append(f"{name:>16} | {mean:>7.1f} ms | {p95:>7.1f} ms")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))


def test_replication_wins_the_mean(comparison):
    repl = np.mean(comparison["replication r=2"]["mean"])
    for name in ("coded 2-of-4", "coded 3-of-6"):
        assert repl <= np.mean(comparison[name]["mean"]) * 1.05, name


def test_coding_narrows_the_tail_relative_to_its_mean(comparison):
    # Tail-to-mean ratio: coding's extra sites cut how much worse the
    # unluckiest clients fare relative to the average client.
    def tail_ratio(name):
        return (np.mean(comparison[name]["p95"])
                / np.mean(comparison[name]["mean"]))

    assert tail_ratio("coded 3-of-6") <= tail_ratio("replication r=2") * 1.1


def test_coded_kernel(benchmark, evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(0)
    candidates, clients = draw_candidates(matrix, 20, rng)
    problem = PlacementProblem(matrix, candidates, clients, k=3,
                               coords=coords, heights=heights)
    strategy = CodedPlacement(6, 3)
    benchmark.pedantic(
        lambda: strategy.place(problem, np.random.default_rng(1)),
        rounds=3, iterations=1)
