"""Ablation — read/write-aware placement (extension; §II-A assumption).

The paper ignores update propagation ("data objects are read much more
frequently than updated").  This bench quantifies when that assumption
stops being safe: a mixed workload (readers spread worldwide, writers
concentrated in one region) is placed two ways —

* **read-only** — the paper's Algorithm 1, blind to writes;
* **rw-aware**  — :func:`repro.core.place_replicas_rw`, which prices
  update fan-out between replicas;

and both placements are scored on *true* RTTs under the full cost model
(read = nearest replica; write = nearest replica + mean propagation).
Expected: identical at 0 % writes, and a growing advantage for the
rw-aware placement as the write share rises.

The benchmark timing measures one rw-aware placement call.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates
from repro.core import ReplicaAccessSummary, place_replicas, place_replicas_rw

from conftest import FULL_SETTING, print_result

WRITE_FRACTIONS = (0.0, 0.1, 0.3, 0.5)
K = 3


def _summaries_from(coords_rows, m=10):
    summary = ReplicaAccessSummary(m, radius_floor=5.0)
    for row in coords_rows:
        summary.record_access(row)
    return summary.snapshot()


def _true_cost(matrix, readers, writers, sites, write_fraction):
    read_block = matrix.rows(readers, sites)
    read_cost = read_block.min(axis=1).mean() if len(readers) else 0.0
    if len(writers) and len(sites) > 1:
        write_block = matrix.rows(writers, sites)
        nearest = np.argmin(write_block, axis=1)
        inter = matrix.rows(sites, sites)
        fanout = inter.sum(axis=1) / (len(sites) - 1)
        write_cost = (write_block[np.arange(len(writers)), nearest]
                      + fanout[nearest]).mean()
    elif len(writers):
        write_cost = matrix.rows(writers, sites).min(axis=1).mean()
    else:
        write_cost = 0.0
    return ((1 - write_fraction) * read_cost
            + write_fraction * write_cost)


@pytest.fixture(scope="module")
def sweep(evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(FULL_SETTING.seed)
    results = {}
    for wf in WRITE_FRACTIONS:
        blind_costs, aware_costs = [], []
        for run in range(10):
            run_rng = np.random.default_rng((FULL_SETTING.seed, run))
            candidates, clients = draw_candidates(matrix, 20, run_rng)
            clients = np.array(clients)
            # Writers: the geographically tightest third of the clients
            # (an update-intensive home region); readers: everyone.
            anchor = clients[int(run_rng.integers(len(clients)))]
            order = np.argsort(matrix.rtt[anchor, clients])
            writers = clients[order[:len(clients) // 3]]
            readers = clients

            n_reads = int(round((1 - wf) * 3000))
            n_writes = int(round(wf * 3000))
            read_rows = coords[run_rng.choice(readers, size=n_reads)] \
                if n_reads else np.empty((0, coords.shape[1]))
            write_rows = coords[run_rng.choice(writers, size=n_writes)] \
                if n_writes else np.empty((0, coords.shape[1]))
            read_cf = _summaries_from(read_rows) if n_reads else []
            write_cf = _summaries_from(write_rows) if n_writes else []

            dc_coords = coords[list(candidates)]
            dc_heights = heights[list(candidates)] if heights is not None else None
            pooled = list(read_cf) + list(write_cf)
            blind = place_replicas(pooled, K, dc_coords,
                                   np.random.default_rng(run),
                                   dc_heights=dc_heights)
            aware = place_replicas_rw(read_cf, write_cf, K, dc_coords,
                                      np.random.default_rng(run),
                                      dc_heights=dc_heights)
            blind_sites = [candidates[p] for p in blind.data_centers]
            aware_sites = [candidates[p] for p in aware.data_centers]
            blind_costs.append(_true_cost(matrix, readers, writers,
                                          blind_sites, wf))
            aware_costs.append(_true_cost(matrix, readers, writers,
                                          aware_sites, wf))
        results[wf] = (float(np.mean(blind_costs)),
                       float(np.mean(aware_costs)))
    return results


def test_readwrite_table(sweep, capsys, benchmark):
    lines = ["Read/write-aware placement ablation — true combined cost (ms)",
             f"{'write frac':>10} | {'read-only placement':>19} | "
             f"{'rw-aware placement':>18} | {'advantage':>9}"]
    for wf, (blind, aware) in sweep.items():
        adv = 100.0 * (blind - aware) / blind
        lines.append(f"{wf:>10.0%} | {blind:>19.1f} | {aware:>18.1f} | "
                     f"{adv:>8.1f}%")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    # Identical information at 0% writes: costs must agree closely.
    blind0, aware0 = sweep[0.0]
    assert abs(blind0 - aware0) <= 0.05 * blind0


def test_rw_awareness_pays_off_for_write_heavy_workloads(sweep):
    blind, aware = sweep[0.5]
    assert aware <= blind * 1.001
    # And the advantage at 50% writes exceeds the advantage at 10%.
    adv10 = sweep[0.1][0] - sweep[0.1][1]
    adv50 = sweep[0.5][0] - sweep[0.5][1]
    assert adv50 >= adv10 - 1.0


def test_rw_placement_kernel(benchmark, evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(0)
    candidates, clients = draw_candidates(matrix, 20, rng)
    read_cf = _summaries_from(coords[list(clients[:150])])
    write_cf = _summaries_from(coords[list(clients[150:200])])
    dc_coords = coords[list(candidates)]
    benchmark(lambda: place_replicas_rw(read_cf, write_cf, 3, dc_coords,
                                        np.random.default_rng(1)))
