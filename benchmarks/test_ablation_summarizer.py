"""Ablation — micro-cluster maintenance design choices.

DESIGN.md calls out the ``radius_floor`` parameter: the paper absorbs a
point when it lies within the nearest cluster's standard deviation, but
singleton clusters have zero deviation, so a floor gives young clusters
a catchment area.  This bench sweeps the floor (0 disables it) and the
merge policy's sensitivity, measuring end placement quality at the
paper's setting (226 nodes, 20 dispersed candidates, k = 3).

The benchmark timing measures ingest with the default floor.
"""

import numpy as np
import pytest

from repro import OnlineClusteringPlacement
from repro.analysis import summarize
from repro.analysis.experiment import run_comparison
from repro.core import ReplicaAccessSummary

from conftest import FULL_SETTING, print_result

FLOORS = (0.0, 2.0, 5.0, 15.0, 50.0)


@pytest.fixture(scope="module")
def floor_sweep(evaluation_world):
    matrix, coords, heights = evaluation_world
    results = {}
    for floor in FLOORS:
        strategy = OnlineClusteringPlacement(micro_clusters=10,
                                             radius_floor=floor)
        delays = run_comparison(matrix, coords, [strategy], 20, 3,
                                FULL_SETTING.n_runs, FULL_SETTING.seed,
                                heights=heights)
        results[floor] = summarize(delays[strategy.name])
    return results


def test_radius_floor_table(floor_sweep, capsys, benchmark):
    lines = ["Radius-floor ablation — online clustering, k=3, 20 DCs",
             f"{'floor (ms)':>10} | {'mean delay (ms)':>16} | {'std':>8}"]
    for floor, summary in floor_sweep.items():
        lines.append(f"{floor:>10.1f} | {summary.mean:>16.1f} | "
                     f"{summary.std:>8.1f}")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    assert floor_sweep[5.0].mean <= floor_sweep[0.0].mean * 1.05


def test_moderate_floor_not_worse_than_none(floor_sweep):
    # The default (5 ms) must not lose to a disabled floor.
    assert floor_sweep[5.0].mean <= floor_sweep[0.0].mean * 1.05


def test_huge_floor_degrades(floor_sweep):
    # A 50 ms catchment area blurs distinct populations together; it
    # must not *help* relative to the default.
    assert floor_sweep[50.0].mean >= floor_sweep[5.0].mean * 0.98


def test_all_floors_within_sane_band(floor_sweep):
    means = [s.mean for s in floor_sweep.values()]
    assert max(means) <= min(means) * 1.3


def test_ingest_kernel_with_default_floor(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(0, 80, size=(4096, 3))
    summary = ReplicaAccessSummary(max_micro_clusters=10, radius_floor=5.0)
    counter = {"i": 0}

    def one():
        i = counter["i"] = (counter["i"] + 1) % 4096
        summary.record_access(points[i])

    benchmark(one)
