"""Sensitivity — do the conclusions depend on the synthetic matrix seed?

The RTT matrix is a seeded random instance (DESIGN.md §2).  A
reproduction whose headline held for seed 0 only would be worthless, so
this bench re-runs Figure 2's k = 3 point on three *independent* matrix
instances (different topologies, overheads, congested hosts, jitter)
with fresh RNP embeddings, and asserts the paper's relationships hold
on every one.

The benchmark timing measures the per-seed setup (matrix + embedding).
"""

import numpy as np
import pytest

from repro.analysis import summarize
from repro.analysis.experiment import default_strategies, run_comparison
from repro.coords import embed_matrix
from repro.net import PlanetLabParams, synthetic_planetlab_matrix

from conftest import print_result

MATRIX_SEEDS = (0, 101, 202)


def run_seed(seed: int):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=seed)
    result = embed_matrix(matrix, system="rnp", rounds=100,
                          rng=np.random.default_rng(seed + 1))
    planar = result.coords[:, :result.space.dim]
    heights = result.coords[:, -1]
    delays = run_comparison(matrix, planar, default_strategies(10),
                            n_dc=20, k=3, n_runs=12, seed=seed,
                            heights=heights)
    return {name: summarize(values) for name, values in delays.items()}


@pytest.fixture(scope="module")
def seeds():
    return {seed: run_seed(seed) for seed in MATRIX_SEEDS}


def test_matrix_seed_table(seeds, capsys, benchmark):
    lines = ["Matrix-seed sensitivity — Figure 2 @ k=3, 12 runs each",
             f"{'seed':>6} | {'random':>8} | {'online':>8} | {'optimal':>8} |"
             f" {'gain':>6} | {'on/opt':>6}"]
    for seed, rows in seeds.items():
        r = rows["random"].mean
        on = rows["online clustering"].mean
        opt = rows["optimal"].mean
        lines.append(f"{seed:>6} | {r:>8.1f} | {on:>8.1f} | {opt:>8.1f} | "
                     f"{100 * (r - on) / r:>5.0f}% | {on / opt:>6.2f}")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    # The headline relationships must hold on every instance.
    for seed, rows in seeds.items():
        r = rows["random"].mean
        on = rows["online clustering"].mean
        opt = rows["optimal"].mean
        assert (r - on) / r >= 0.35, f"seed {seed}"
        assert on <= opt * 1.25, f"seed {seed}"


def test_online_tracks_offline_on_every_seed(seeds):
    for seed, rows in seeds.items():
        on = rows["online clustering"].mean
        off = rows["offline k-means"].mean
        assert abs(on - off) <= 0.15 * off, f"seed {seed}"


def test_setup_kernel(benchmark):
    def setup():
        matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=7)
        embed_matrix(matrix, system="rnp", rounds=30,
                     rng=np.random.default_rng(8))
        return matrix

    benchmark.pedantic(setup, rounds=2, iterations=1)
