"""Timeline — delay over time while demand migrates continents.

The paper's mechanism is *gradual* migration: placements are revised
epoch by epoch as summaries reveal demand moving.  Steady-state figures
can't show that; this bench plots mean read delay in 20-second bins
while the client population shifts from North America to East Asia, for
a static placement, the paper's 5 % threshold, and an eager migrator.

Expected: all policies start equal; as the shift completes, the static
curve climbs while the migrating policies bend back down.

The benchmark timing measures the per-bin aggregation step.
"""

import numpy as np
import pytest

from repro.analysis.timeline import TimelinePolicy, run_timeline
from repro.workloads import RegionalShift

from conftest import print_result

POLICIES = [
    TimelinePolicy("static", epoch_period_ms=None),
    TimelinePolicy("paper-5%", epoch_period_ms=30_000.0,
                   min_relative_gain=0.05),
    TimelinePolicy("eager", epoch_period_ms=30_000.0,
                   min_relative_gain=0.0),
]


def shift_factory(topology):
    return RegionalShift(topology, "us-east", "asia-east",
                         start_ms=60_000.0, end_ms=180_000.0,
                         intensity=15.0)


@pytest.fixture(scope="module")
def timeline():
    return run_timeline(shift_factory, POLICIES, n_nodes=80, n_dc=12,
                        duration_ms=240_000.0, bin_ms=20_000.0, seed=5)


def test_timeline_table(timeline, capsys, benchmark):
    centers = timeline.bin_centers_s
    lines = ["Timeline — mean read delay (ms) while demand shifts NA -> Asia",
             "t (s):    " + " ".join(f"{c:>6.0f}" for c in centers)]
    for name, bins in timeline.series.items():
        cells = " ".join(f"{'  --' if np.isnan(v) else format(v, '6.1f')}"
                         for v in bins)
        lines.append(f"{name:>9}: {cells}  "
                     f"({timeline.migrations[name]} migrations)")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))


def test_policies_start_identical(timeline):
    first = [timeline.series[p.name][0] for p in POLICIES]
    assert max(first) - min(first) <= 0.15 * max(first)


def test_static_degrades_after_the_shift(timeline):
    static = timeline.series["static"]
    assert static[-1] > static[0] * 1.2
    assert timeline.migrations["static"] == 0


def test_migrating_policies_beat_static_at_the_end(timeline):
    static_tail = np.nanmean(timeline.series["static"][-3:])
    for name in ("paper-5%", "eager"):
        tail = np.nanmean(timeline.series[name][-3:])
        assert tail < static_tail * 0.9, name
        assert timeline.migrations[name] >= 1


def test_binning_kernel(timeline, benchmark):
    reads = [(float(t), float(t % 97)) for t in range(0, 240_000, 37)]
    edges = timeline.bin_edges_ms

    def aggregate():
        out = []
        for lo, hi in zip(edges, edges[1:]):
            window = [d for t, d in reads if lo <= t < hi]
            out.append(np.mean(window) if window else np.nan)
        return out

    benchmark(aggregate)
