"""Tail latency under a hotspot: queue-aware selection vs ``nearest``.

The scenario the queueing extension exists for: client mass piles up
around one replica site, and every ``nearest`` read funnels into that
server's FIFO queue while its siblings idle.  With deterministic 2 ms
service the hot server's capacity is 500 req/s; at 900 req/s offered,
``nearest`` drives it far past saturation and the backlog — hence the
p999 read delay — grows without bound for the whole run.
``least-pending`` needs no server-side information to fix this: each
client's own outstanding-request counts push overflow reads to the
farther replicas, trading a bounded RTT penalty for an unbounded
queueing one.

``BENCH_tail.json`` records both strategies' delay quantiles and queue
stats.  The acceptance floor is deliberately loose (p999 ratio <= 0.7)
against run-to-run drift; the measured ratio is typically far smaller
because the ``nearest`` tail scales with the horizon.

Both runs use the per-event oracle engine, so the comparison is exact
simulation, not the batched window approximation.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import DeterministicService, QueueingConfig, ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_tail.json"

N_DC = 6
N_CLIENTS = 30
SEED = 5
SERVICE_MS = 2.0
RATE_PER_SECOND = 900.0
HORIZON_MS = 30_000.0
REPLICA_SITES = (0, 2, 4)


def _world():
    """Candidates on a ring, clients clustered around candidate 0."""
    rng = np.random.default_rng(SEED + 999)
    angles = np.linspace(0.0, 2 * np.pi, N_DC, endpoint=False)
    dc_coords = np.column_stack([np.cos(angles), np.sin(angles)]) * 100.0
    client_coords = dc_coords[0] + rng.normal(size=(N_CLIENTS, 2)) * 15.0
    coords = np.vstack([dc_coords, client_coords])
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    rtt += 5.0
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _run_once(strategy):
    matrix, coords = _world()
    sim = Simulator(seed=SEED)
    store = ReplicatedStore(
        sim, matrix, list(range(N_DC)), coords, selection="oracle",
        queueing=QueueingConfig(DeterministicService(SERVICE_MS)),
        strategy=strategy)
    store.create_object("obj", size_gb=0.5, k=3,
                        initial_sites=list(REPLICA_SITES))
    clients = list(range(N_DC, N_DC + N_CLIENTS))
    population = ClientPopulation.hotspot(clients, matrix, anchor=0,
                                          exponent=2.0)
    workload = AccessWorkload(store, population, ["obj"],
                              rate_per_second=RATE_PER_SECOND)

    start = time.perf_counter()
    sim.run_until(HORIZON_MS)
    wall_s = time.perf_counter() - start

    quantiles = store.log.tail_quantiles("read")
    per_server = {
        site: store.servers[site].queue.accepted
        for site in REPLICA_SITES
    }
    return {
        "strategy": strategy,
        "reads_issued": workload.operations_issued,
        "reads_completed": len(store.log),
        "mean_delay_ms": round(float(store.log.delays("read").mean()), 3),
        "p50_ms": round(quantiles["p50"], 3),
        "p99_ms": round(quantiles["p99"], 3),
        "p999_ms": round(quantiles["p999"], 3),
        "queue_stats": store.queue_stats(),
        "accepted_per_replica": per_server,
        "wall_s": round(wall_s, 3),
    }


@pytest.mark.bench
def test_tail_latency_hotspot(capsys):
    nearest = _run_once("nearest")
    least_pending = _run_once("least-pending")
    ratio = least_pending["p999_ms"] / nearest["p999_ms"]

    doc = {
        "benchmark": "tail-latency-hotspot",
        "setting": {"n_dc": N_DC, "n_clients": N_CLIENTS, "k": 3,
                    "seed": SEED, "service_ms": SERVICE_MS,
                    "rate_per_second": RATE_PER_SECOND,
                    "horizon_ms": HORIZON_MS,
                    "replica_sites": list(REPLICA_SITES),
                    "workload": "hotspot(anchor=0, exponent=2) read-only"},
        "nearest": nearest,
        "least_pending": least_pending,
        "p999_ratio": round(ratio, 4),
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print_result(capsys, json.dumps(doc, indent=2))

    # Both arms draw the identical arrival stream.
    assert nearest["reads_issued"] == least_pending["reads_issued"]
    # The hot server is genuinely saturated under nearest: it absorbed
    # the overwhelming majority of admissions...
    hot = nearest["accepted_per_replica"][0]
    assert hot > 0.9 * nearest["queue_stats"]["accepted"]
    # ...while least-pending actually spread the load.
    spread = least_pending["accepted_per_replica"]
    assert min(spread.values()) > 0.1 * max(spread.values())
    # The acceptance floor: queue-aware selection collapses the p999
    # tail to at most 70% of nearest's.
    assert ratio <= 0.7, doc
