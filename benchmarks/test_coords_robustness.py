"""Coordinate robustness under unstable measurements (RNP's raison d'être).

The paper chose RNP because it keeps predicting accurately "even if it
runs on unstable platforms such as PlanetLab", where transient host
overload inflates individual RTT samples by an order of magnitude.
This bench injects exactly that: each measurement is, with probability
``outlier_fraction``, multiplied by 10×.  Accuracy is always scored
against the clean matrix.

Expected: Vivaldi (memoryless springs) degrades steeply — every outlier
yanks the coordinate — while RNP's retrospective window, one-sided IRLS
trimming and spring gating hold the error to a fraction of Vivaldi's.

The benchmark timing measures one RNP retrospective refit.
"""

import numpy as np
import pytest

from repro.coords import (
    EuclideanSpace,
    RNPNode,
    embed_matrix,
    median_absolute_error,
)
from repro.net import PlanetLabParams, synthetic_planetlab_matrix

from conftest import print_result

OUTLIER_FRACTIONS = (0.0, 0.05, 0.15)


@pytest.fixture(scope="module")
def robustness():
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=150), seed=0)
    results = {}
    for frac in OUTLIER_FRACTIONS:
        row = {}
        for system in ("vivaldi", "rnp"):
            result = embed_matrix(matrix, system=system, rounds=200,
                                  rng=np.random.default_rng(1),
                                  outlier_fraction=frac,
                                  outlier_multiplier=10.0)
            row[system] = median_absolute_error(matrix, result.coords,
                                                result.space)
        results[frac] = row
    return results


def test_robustness_table(robustness, capsys, benchmark):
    lines = ["Coordinate robustness — median abs error (ms) vs outlier rate",
             f"{'outliers':>9} | {'vivaldi':>8} | {'rnp':>8} | "
             f"{'rnp advantage':>13}"]
    for frac, row in robustness.items():
        adv = row["vivaldi"] / max(row["rnp"], 1e-9)
        lines.append(f"{frac:>9.0%} | {row['vivaldi']:>8.1f} | "
                     f"{row['rnp']:>8.1f} | {adv:>12.1f}x")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    # The headline: at heavy instability RNP holds up, Vivaldi does not.
    heavy = robustness[0.15]
    assert heavy["rnp"] < heavy["vivaldi"] * 0.5


def test_rnp_degrades_gracefully(robustness):
    clean = robustness[0.0]["rnp"]
    heavy = robustness[0.15]["rnp"]
    # 15% of samples being 10x wrong costs RNP less than 4x accuracy.
    assert heavy <= clean * 4.0


def test_vivaldi_is_the_fragile_one(robustness):
    assert robustness[0.15]["vivaldi"] > robustness[0.0]["vivaldi"] * 3.0


def test_rnp_outlier_detector_fires(robustness):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=60), seed=2)
    result = embed_matrix(matrix, system="rnp", rounds=150,
                          rng=np.random.default_rng(3),
                          outlier_fraction=0.1, outlier_multiplier=10.0)
    # The embedding result has no node handles; re-run one node directly.
    space = EuclideanSpace(dim=3, use_height=True)
    rng = np.random.default_rng(4)
    node = RNPNode(space, rng=rng)
    anchor = np.array([50.0, 0.0, 0.0, 0.0])
    for i in range(200):
        rtt = 50.0 * (10.0 if rng.random() < 0.1 else 1.0)
        node.update(anchor, 0.1, rtt)
    assert node.outliers_suspected > 0
    assert result.coords.shape[0] == 60


def test_rnp_refit_kernel(benchmark):
    space = EuclideanSpace(dim=3, use_height=True)
    rng = np.random.default_rng(0)
    node = RNPNode(space, window=64, refit_interval=10 ** 9, rng=rng)
    anchors = rng.normal(0, 50, size=(64, 4))
    anchors[:, -1] = np.abs(anchors[:, -1])
    for row in anchors:
        node.update(row, 0.2, float(np.linalg.norm(row[:3]) + 20.0))
    benchmark(node._refit)
