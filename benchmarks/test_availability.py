"""Availability extension — failures, retries and re-replication.

The paper defers data availability to future work; this bench exercises
the extension built for it.  A replicated object serves a steady read
workload while data-center nodes crash and recover randomly
(exponential MTBF/MTTR).  Three configurations are compared:

* ``fragile``   — no client retries, no repair: reads to dead replicas
  are simply lost;
* ``retries``   — client-side failover to the next replica (the paper's
  "access a second replica" scenario);
* ``self-heal`` — retries plus the availability monitor re-replicating
  lost redundancy from surviving copies.

Reported: completed-read fraction, mean read delay, repairs performed.

The benchmark timing measures one availability sweep of the monitor.
"""

import numpy as np
import pytest

from repro.analysis import draw_candidates
from repro.coords import embed_matrix
from repro.core import ControllerConfig
from repro.net import PlanetLabParams, synthetic_planetlab_matrix
from repro.sim import FailureInjector, Simulator
from repro.store import ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

from conftest import print_result

RUN_MS = 120_000.0


def run_config(name: str, read_timeout_ms, auto_repair: bool):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=70), seed=17)
    planar = embed_matrix(matrix, system="rnp", rounds=80,
                          rng=np.random.default_rng(18)).coords[:, :3]
    sim = Simulator(seed=17)
    candidates, clients = draw_candidates(matrix, 12,
                                          np.random.default_rng(19))
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle",
                            read_timeout_ms=read_timeout_ms,
                            max_read_attempts=3,
                            auto_repair=auto_repair,
                            repair_period_ms=2_000.0)
    store.create_object(
        "obj", k=3,
        controller_config=ControllerConfig(k=3, max_micro_clusters=10))
    injector = FailureInjector(store.network)
    injector.random_failures(candidates, mtbf_ms=30_000.0,
                             mttr_ms=15_000.0, until=RUN_MS,
                             rng=np.random.default_rng(20))
    workload = AccessWorkload(store, ClientPopulation.uniform(clients),
                              ["obj"], rate_per_second=150.0)
    sim.run_until(RUN_MS + 5_000.0)

    reads = [r for r in store.log.records if r.kind == "read"]
    issued = workload.operations_issued
    return {
        "name": name,
        "issued": issued,
        "completed": len(reads),
        "completion": len(reads) / issued,
        "mean_delay": float(np.mean([r.delay_ms for r in reads])),
        "repairs": store.repairs,
        "crashes": len(injector.crashes()),
    }


@pytest.fixture(scope="module")
def configs():
    return [
        run_config("fragile", read_timeout_ms=None, auto_repair=False),
        run_config("retries", read_timeout_ms=600.0, auto_repair=False),
        run_config("self-heal", read_timeout_ms=600.0, auto_repair=True),
    ]


def test_availability_table(configs, capsys, benchmark):
    lines = ["Availability under random crash/repair (3 replicas, 12 DCs)",
             f"{'config':>10} | {'completed':>14} | {'mean delay':>10} | "
             f"{'repairs':>7} | {'crashes':>7}"]
    for row in configs:
        lines.append(
            f"{row['name']:>10} | {row['completed']:>6}/{row['issued']:<6} "
            f"({row['completion']:>4.0%}) | {row['mean_delay']:>7.1f} ms | "
            f"{row['repairs']:>7} | {row['crashes']:>7}")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    fragile, retries, heal = configs
    assert heal["completion"] >= retries["completion"] >= fragile["completion"]


def test_failures_actually_happened(configs):
    assert all(row["crashes"] >= 3 for row in configs)


def test_retries_recover_most_reads(configs):
    fragile, retries, _ = configs
    assert fragile["completion"] < 0.995   # failures visibly hurt
    assert retries["completion"] > fragile["completion"]


def test_self_heal_repairs_and_nearly_full_availability(configs):
    heal = configs[2]
    assert heal["repairs"] >= 1
    assert heal["completion"] > 0.98


def test_monitor_sweep_kernel(benchmark):
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(n=40), seed=2)
    planar = np.zeros((40, 3))
    sim = Simulator(seed=2)
    store = ReplicatedStore(sim, matrix, tuple(range(10)), planar,
                            auto_repair=True)
    for i in range(20):
        store.create_object(f"obj-{i}", k=3,
                            controller_config=ControllerConfig(k=3))
    benchmark(store._check_availability)
