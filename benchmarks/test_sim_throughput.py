"""End-to-end simulator throughput: per-event oracle vs batched engine.

Runs the full live stack (64-node world, 12 candidate data centers,
3 replicas, uniform read-only clients — the paper's setting scaled to
a dense workload) under both data-plane engines and records the
numbers in ``BENCH_sim.json`` next to this module:

* the headline floor is a >= 10x end-to-end speedup at >= 1e5 client
  accesses — the batched engine's reason to exist;
* a scaling curve of batched-engine runs up to 1e6 accesses pins that
  throughput (accesses/second of wall clock) does not collapse with
  volume, i.e. the engine really is usable at millions of accesses;
* the per-run ``events_processed`` counts document the mechanism: the
  batched runs retire hundreds of heap events where the oracle retires
  hundreds of thousands.

Every batched run here is an instance of the configuration family the
differential suite (``tests/integration/test_engine_equivalence.py``)
proves bitwise-identical to the oracle, so the speedup is not bought
with accuracy.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.net import LatencyMatrix
from repro.sim import Simulator
from repro.store import BatchedAccessWorkload, ReplicatedStore
from repro.workloads import AccessWorkload, ClientPopulation

from conftest import print_result

BENCH_OUT = pathlib.Path(__file__).parent / "BENCH_sim.json"

N_NODES = 64
N_DC = 12
SEED = 7


def _world():
    rng = np.random.default_rng(1234)
    coords = rng.uniform(0, 100, size=(N_NODES, 2))
    rtt = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1))
    np.fill_diagonal(rtt, 0.0)
    return LatencyMatrix((rtt + rtt.T) / 2), coords


def _run_once(engine, rate_per_second, horizon_ms):
    matrix, coords = _world()
    sim = Simulator(seed=SEED)
    store = ReplicatedStore(sim, matrix, list(range(N_DC)), coords)
    store.create_object("obj", size_gb=0.5, k=3)
    population = ClientPopulation.uniform(list(range(N_DC, N_NODES)))
    workload_cls = (BatchedAccessWorkload if engine == "batched"
                    else AccessWorkload)
    workload = workload_cls(store, population, ["obj"],
                            rate_per_second=rate_per_second)
    start = time.perf_counter()
    sim.run_until(horizon_ms)
    wall_s = time.perf_counter() - start
    return {
        "engine": engine,
        "rate_per_second": rate_per_second,
        "horizon_ms": horizon_ms,
        "accesses": workload.operations_issued,
        "wall_s": round(wall_s, 3),
        "us_per_access": round(wall_s / workload.operations_issued * 1e6, 2),
        "events_processed": sim.events_processed,
    }


def _run(engine, rate_per_second, horizon_ms, repeats=2):
    # Best-of-N: single wall-clock samples on a shared machine swing by
    # +-50%, and the floors below compare runs measured minutes apart.
    # The minimum is the least-noisy estimator of the code's true cost.
    runs = [_run_once(engine, rate_per_second, horizon_ms)
            for _ in range(repeats)]
    return min(runs, key=lambda r: r["wall_s"])


@pytest.mark.bench
def test_sim_throughput(capsys):
    # Headline: both engines on the same >= 1e5-access workload.
    event = _run("event", 2_000, 52_000.0)
    batched = _run("batched", 2_000, 52_000.0)
    assert event["accesses"] == batched["accesses"] >= 100_000
    speedup = event["wall_s"] / batched["wall_s"]

    # Scaling curve: batched engine from 2e4 up to 1e6 accesses.
    curve = [
        _run("batched", 2_000, 10_000.0),    # ~2e4
        batched,                             # ~1e5
        _run("batched", 20_000, 52_000.0),  # ~1e6
    ]

    doc = {
        "benchmark": "sim-throughput",
        "setting": {"n_nodes": N_NODES, "n_dc": N_DC, "k": 3,
                    "seed": SEED, "workload": "uniform read-only"},
        "headline": {
            "accesses": event["accesses"],
            "event_wall_s": event["wall_s"],
            "batched_wall_s": batched["wall_s"],
            "event_us_per_access": event["us_per_access"],
            "batched_us_per_access": batched["us_per_access"],
            "speedup": round(speedup, 2),
            "event_events_processed": event["events_processed"],
            "batched_events_processed": batched["events_processed"],
        },
        "batched_scaling": curve,
    }
    BENCH_OUT.write_text(json.dumps(doc, indent=2) + "\n")
    print_result(capsys, json.dumps(doc, indent=2))

    # The tentpole floor: >= 10x end to end at >= 1e5 accesses.
    assert speedup >= 10.0, doc
    # A million accesses must complete, and throughput must hold up:
    # the 1e6 run's per-access wall may not blow up relative to the 1e5
    # run (it is denser, not slower per access).  Measured ratio is
    # ~1.2-1.3x (absorb amortizes better, list/GC overhead grows a
    # little); 2.5x is the honest floor that still fails on a real
    # complexity regression without tripping on scheduler noise.
    million = curve[-1]
    assert million["accesses"] >= 1_000_000, doc
    assert million["us_per_access"] <= 2.5 * batched["us_per_access"], doc
    # The mechanism: the batched runs retire ~1e2 heap events, not ~1e6.
    assert batched["events_processed"] < event["events_processed"] / 100, doc
