"""Figure 3 — impact of the number of micro-clusters per replica.

Paper's observations this bench reproduces and asserts:

* with more micro-clusters the summary has finer granularity and the
  estimated replica locations improve;
* the delay is "nearly minimized when 4 micro-clusters are maintained"
  — the curve saturates around m = 4.

The benchmark timing measures summary ingest (one access fold-in).
"""

import numpy as np
import pytest

from repro import run_figure3
from repro.analysis import format_figure
from repro.core import ReplicaAccessSummary

from conftest import FULL_SETTING, print_result


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(FULL_SETTING)


def test_fig3_series(figure3, capsys, benchmark):
    text = benchmark(lambda: format_figure(figure3))
    print_result(capsys, text)
    assert set(figure3.series) == {
        "1 micro-clusters", "2 micro-clusters", "4 micro-clusters",
        "7 micro-clusters", "11 micro-clusters",
    }
    # Saturation claim, asserted in benchmark-only runs too.  On our
    # synthetic matrix the knee falls between m = 4 and m = 7 rather
    # than exactly at 4 (EXPERIMENTS.md discusses why), so m = 4 is
    # required to be within 15 % of the m = 11 plateau.
    for a, b in zip(figure3.means("4 micro-clusters"),
                    figure3.means("11 micro-clusters")):
        assert a <= b * 1.15


def test_fig3_more_micro_clusters_reduce_delay(figure3):
    m1 = np.mean(figure3.means("1 micro-clusters"))
    m2 = np.mean(figure3.means("2 micro-clusters"))
    m4 = np.mean(figure3.means("4 micro-clusters"))
    assert m4 <= m2 <= m1 * 1.02


def test_fig3_saturates_around_4(figure3):
    # m = 4 already gets within 15 % of the m = 11 plateau at every k
    # (the knee lands between 4 and 7 on our matrix; EXPERIMENTS.md).
    m4 = figure3.means("4 micro-clusters")
    m11 = figure3.means("11 micro-clusters")
    for a, b in zip(m4, m11):
        assert a <= b * 1.15
    # And m = 7 is already at the plateau within 10 %.
    m7 = figure3.means("7 micro-clusters")
    for a, b in zip(m7, m11):
        assert a <= b * 1.10


def test_fig3_single_micro_cluster_clearly_worse(figure3):
    # m = 1 collapses each replica's users to one centroid; at high k it
    # must be visibly worse than m = 11.
    m1_high_k = figure3.means("1 micro-clusters")[-1]
    m11_high_k = figure3.means("11 micro-clusters")[-1]
    assert m1_high_k > m11_high_k


def test_fig3_ingest_kernel(benchmark):
    rng = np.random.default_rng(0)
    summary = ReplicaAccessSummary(max_micro_clusters=11, radius_floor=5.0)
    points = rng.uniform(-200, 200, size=(4096, 3))
    counter = {"i": 0}

    def one_access():
        i = counter["i"] = (counter["i"] + 1) % 4096
        summary.record_access(points[i])

    benchmark(one_access)
