"""Extended strategy comparison — beyond the paper's four contenders.

The paper's related work surveys greedy server placement (Qiu et al.),
cell-density placement (HotZone) and other heuristics but evaluates only
random / offline k-means / online clustering / optimal.  This bench runs
the full roster, at the paper's setting (226 nodes, 20 dispersed
candidates, k = 3, 30 runs), separating the *oracle-information*
baselines (greedy and optimal see true RTTs) from the *deployable*
coordinate-based ones.

The benchmark timing measures the k-median local-search kernel.
"""

import numpy as np
import pytest

from repro.analysis import summarize
from repro.analysis.experiment import run_comparison
from repro.placement import (
    GreedyPlacement,
    HotZonePlacement,
    KMedianPlacement,
    OfflineKMeansPlacement,
    OnlineClusteringPlacement,
    OptimalPlacement,
    PlacementProblem,
    RandomPlacement,
)

from conftest import FULL_SETTING, print_result

STRATEGIES = [
    RandomPlacement(),
    HotZonePlacement(),
    OfflineKMeansPlacement(),
    OnlineClusteringPlacement(micro_clusters=10),
    KMedianPlacement(),
    GreedyPlacement(use_coords=True),
    GreedyPlacement(),
    OptimalPlacement(),
]

#: Strategies that consume true RTTs rather than coordinates.
ORACLE = {"greedy", "optimal", "random"}


@pytest.fixture(scope="module")
def comparison(evaluation_world):
    matrix, coords, heights = evaluation_world
    return run_comparison(matrix, coords, STRATEGIES, n_dc=20, k=3,
                          n_runs=FULL_SETTING.n_runs, seed=FULL_SETTING.seed,
                          heights=heights)


def test_extended_ranking_table(comparison, capsys, benchmark):
    summaries = {name: summarize(values) for name, values in comparison.items()}
    ranked = sorted(summaries.items(), key=lambda kv: kv[1].mean)
    lines = ["Extended comparison — k=3, 20 dispersed DCs, 30 runs",
             f"{'strategy':>20} | {'mean delay':>10} | {'info':>12}"]
    text = benchmark(lambda: lines)
    for name, summary in ranked:
        info = "true RTTs" if name in ORACLE else "coordinates"
        lines.append(f"{name:>20} | {summary.mean:>7.1f} ms | {info:>12}")
    print_result(capsys, "\n".join(lines))
    assert text is lines
    # Sanity spine: optimal best, random worst.
    assert ranked[0][0] == "optimal"
    assert ranked[-1][0] == "random"


def test_online_beats_every_other_deployable_summary_free_strategy(comparison):
    # Among strategies that do NOT record every client (hotzone keeps
    # cell counts, online keeps micro-clusters), online must win.
    online = np.mean(comparison["online clustering"])
    hotzone = np.mean(comparison["hotzone"])
    assert online < hotzone


def test_kmedian_upper_bounds_coordinate_strategies(comparison):
    # Direct local search on the full client set bounds what summary-
    # based coordinate placement can achieve (small tolerance: k-means
    # initialisations occasionally edge it out).
    kmedian = np.mean(comparison["offline k-median"])
    online = np.mean(comparison["online clustering"])
    assert kmedian <= online * 1.05


def test_greedy_oracle_close_to_optimal(comparison):
    greedy = np.mean(comparison["greedy"])
    optimal = np.mean(comparison["optimal"])
    assert greedy <= optimal * 1.10


def test_coordinate_error_costs_greedy_something(comparison):
    # The same algorithm with coordinates instead of true RTTs does
    # no better (quantifies the price of deployability).
    assert (np.mean(comparison["greedy"])
            <= np.mean(comparison["greedy (coords)"]) + 1e-9)


def test_kmedian_kernel(benchmark, evaluation_world):
    matrix, coords, heights = evaluation_world
    rng = np.random.default_rng(0)
    candidates = tuple(int(i) for i in rng.choice(matrix.n, 20, replace=False))
    clients = tuple(i for i in range(matrix.n) if i not in set(candidates))
    problem = PlacementProblem(matrix, candidates, clients, 3,
                               coords=coords, heights=heights)
    strategy = KMedianPlacement()
    benchmark(lambda: strategy.place(problem, np.random.default_rng(1)))
