"""Coordinate-system accuracy (Section III-A / V-A claims).

The paper relies on RNP providing (a) lower prediction error and higher
stability than Vivaldi and (b) "a prediction error typically lower than
10 ms for a majority of node pairs" on PlanetLab.  This bench measures
all four implemented systems on two matrices:

* the **default** 226-node synthetic PlanetLab matrix, which carries
  deliberately heavy noise (log-normal jitter, detours, congested
  hosts) — the regime the placement experiments run in;
* a **clean** variant (low jitter, no detours/congestion), where the
  paper's absolute <10 ms bound is checkable (the default matrix's
  noise floor sits above it; EXPERIMENTS.md discusses the gap).

The benchmark timing measures one RNP measurement update (the per-probe
cost a node pays).
"""

import numpy as np
import pytest

from repro.coords import (
    EuclideanSpace,
    RNPNode,
    closest_selection_accuracy,
    embed_matrix,
    median_absolute_error,
    relative_errors,
)
from repro.net import PlanetLabParams, synthetic_planetlab_matrix

from conftest import print_result

SYSTEMS = ("vivaldi", "rnp", "gnp", "mds")


def _measure(matrix, system, rounds=200):
    result = embed_matrix(matrix, system=system, rounds=rounds,
                          rng=np.random.default_rng(1))
    mae = median_absolute_error(matrix, result.coords, result.space)
    rel = float(np.median(relative_errors(matrix, result.coords,
                                          result.space)))
    candidates = list(range(0, matrix.n, 12))[:10]
    clients = [i for i in range(matrix.n) if i not in candidates]
    acc = closest_selection_accuracy(matrix, result.coords, result.space,
                                     clients, candidates)
    return {"median_abs_ms": mae, "median_rel": rel, "selection_acc": acc,
            "stability": result.stability_ms_per_round}


@pytest.fixture(scope="module")
def noisy_metrics():
    matrix, _ = synthetic_planetlab_matrix(PlanetLabParams(), seed=0)
    return {s: _measure(matrix, s) for s in SYSTEMS}


@pytest.fixture(scope="module")
def clean_metrics():
    clean = PlanetLabParams(jitter_sigma=0.05, detour_fraction=0.0,
                            congested_fraction=0.0)
    matrix, _ = synthetic_planetlab_matrix(clean, seed=0)
    return {s: _measure(matrix, s) for s in ("vivaldi", "rnp")}


def test_coords_accuracy_table(noisy_metrics, clean_metrics, capsys,
                               benchmark):
    lines = ["Coordinate accuracy — default (noisy) PlanetLab matrix",
             f"{'system':8s} {'med abs err':>12} {'med rel err':>12} "
             f"{'closest-pick acc':>17} {'stability':>12}"]
    for s in SYSTEMS:
        m = noisy_metrics[s]
        stability = (f"{m['stability']:.2f} ms/rd" if m['stability'] is not None
                     else "—")
        lines.append(f"{s:8s} {m['median_abs_ms']:>9.1f} ms "
                     f"{m['median_rel']:>12.3f} {m['selection_acc']:>17.2f} "
                     f"{stability:>12}")
    lines.append("")
    lines.append("Clean matrix (low jitter, no detours/congestion)")
    for s in ("vivaldi", "rnp"):
        m = clean_metrics[s]
        lines.append(f"{s:8s} {m['median_abs_ms']:>9.1f} ms")
    print_result(capsys, benchmark(lambda: "\n".join(lines)))
    # Claims, asserted in benchmark-only runs too:
    assert (noisy_metrics["rnp"]["median_abs_ms"]
            <= noisy_metrics["vivaldi"]["median_abs_ms"] * 1.02)
    assert clean_metrics["rnp"]["median_abs_ms"] < 10.0


def test_rnp_beats_vivaldi_on_noisy_matrix(noisy_metrics):
    assert (noisy_metrics["rnp"]["median_abs_ms"]
            <= noisy_metrics["vivaldi"]["median_abs_ms"] * 1.02)
    assert (noisy_metrics["rnp"]["median_rel"]
            <= noisy_metrics["vivaldi"]["median_rel"] * 1.02)


def test_rnp_under_10ms_on_clean_matrix(clean_metrics):
    # The paper's "< 10 ms for a majority of node pairs" bound.
    assert clean_metrics["rnp"]["median_abs_ms"] < 10.0
    assert (clean_metrics["rnp"]["median_abs_ms"]
            <= clean_metrics["vivaldi"]["median_abs_ms"] * 1.05)


def test_rnp_at_least_as_stable_as_vivaldi(noisy_metrics):
    # RNP's second claim: more stable coordinates than Vivaldi.
    assert (noisy_metrics["rnp"]["stability"]
            <= noisy_metrics["vivaldi"]["stability"] * 1.05)


def test_decentralized_systems_usable_for_selection(noisy_metrics):
    # Selection via coordinates must clearly beat blind choice: with 10
    # candidates, random picking is right 10% of the time.
    for s in ("vivaldi", "rnp", "gnp"):
        assert noisy_metrics[s]["selection_acc"] > 0.25, s


def test_rnp_update_kernel(benchmark):
    space = EuclideanSpace(dim=3, use_height=True)
    rng = np.random.default_rng(0)
    node = RNPNode(space, rng=rng)
    anchors = rng.normal(0, 50, size=(32, space.vector_size))
    anchors[:, -1] = np.abs(anchors[:, -1])
    rtts = rng.uniform(10, 200, size=32)
    counter = {"i": 0}

    def one_update():
        i = counter["i"] = (counter["i"] + 1) % 32
        node.update(anchors[i], 0.3, float(rtts[i]))

    benchmark(one_update)
