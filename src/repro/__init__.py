"""repro — reproduction of "Towards Optimal Data Replication Across Data
Centers" (Ping, Li, McConnell, Vabbalareddy & Hwang, ICDCS 2011).

The package implements the paper's online replica placement technique and
every substrate it runs on:

* :mod:`repro.net` — RTT matrices and a synthetic PlanetLab topology;
* :mod:`repro.coords` — network coordinates (Vivaldi, RNP, GNP, MDS);
* :mod:`repro.sim` — a discrete-event simulator with latency-delayed
  messaging and live coordinate gossip;
* :mod:`repro.clustering` — weighted k-means and streaming micro-clusters;
* :mod:`repro.core` — the contribution: per-replica access summaries,
  Algorithm 1 macro-placement, the migration policy and control loop;
* :mod:`repro.placement` — the four evaluated strategies plus two
  related-work baselines, under one interface;
* :mod:`repro.store` — a replicated object store that exercises the whole
  stack end-to-end (reads, writes, quorums, migration);
* :mod:`repro.workloads` — client populations, temporal patterns, traces;
* :mod:`repro.analysis` — the paper's evaluation as callable experiments;
* :mod:`repro.chaos` — declarative fault schedules (partitions, loss,
  coordinator crashes) run against a fault-free twin of the same world.

Quickstart::

    from repro import EvaluationSetting, run_figure2, format_figure
    setting = EvaluationSetting(n_nodes=80, n_runs=10)
    print(format_figure(run_figure2(setting)))
"""

from repro.analysis import (
    EvaluationSetting,
    FigureResult,
    format_figure,
    format_table2,
    run_comparison,
    run_coord_ablation,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)
from repro.core import (
    ControllerConfig,
    MigrationCostModel,
    MigrationPolicy,
    ReplicaAccessSummary,
    ReplicationController,
    estimate_average_delay,
    macro_cluster,
    place_replicas,
)
from repro.net import LatencyMatrix, PlanetLabParams, synthetic_planetlab_matrix
from repro.placement import (
    GreedyPlacement,
    HotZonePlacement,
    KMedianPlacement,
    OfflineKMeansPlacement,
    OnlineClusteringPlacement,
    OptimalPlacement,
    PlacementProblem,
    RandomPlacement,
    average_access_delay,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "EvaluationSetting",
    "FigureResult",
    "format_figure",
    "format_table2",
    "run_comparison",
    "run_coord_ablation",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_table2",
    # core
    "ControllerConfig",
    "MigrationCostModel",
    "MigrationPolicy",
    "ReplicaAccessSummary",
    "ReplicationController",
    "estimate_average_delay",
    "macro_cluster",
    "place_replicas",
    # net
    "LatencyMatrix",
    "PlanetLabParams",
    "synthetic_planetlab_matrix",
    # placement
    "GreedyPlacement",
    "HotZonePlacement",
    "KMedianPlacement",
    "OfflineKMeansPlacement",
    "OnlineClusteringPlacement",
    "OptimalPlacement",
    "PlacementProblem",
    "RandomPlacement",
    "average_access_delay",
]
