"""Typed event tracing with a bounded ring buffer.

A :class:`Tracer` records :class:`Span` events — *what* happened, at
which **simulated** time, with free-form attributes.  The buffer is a
fixed-capacity ring: old spans are evicted once capacity is reached, so
tracing a long simulation is memory-bounded; the eviction count is kept
so exports can report how much was dropped.

Span kinds used by the instrumented stack (see ``docs/observability.md``):

==========================  ============================================
kind                        emitted when
==========================  ============================================
``access-served``           a client read/write completes at the store
``micro-absorb``            a stream point folds into a micro-cluster
``micro-spawn``             a stream point spawns a new micro-cluster
``micro-merge``             two micro-clusters merge (budget exceeded)
``macro-round``             the coordinator runs Algorithm 1
``migration-start``         a replica migration begins transfers
``migration-finish``        the last migration transfer lands
==========================  ============================================

Examples
--------
>>> tracer = Tracer(capacity=2)
>>> tracer.record("macro-round", time=10.0, k=3)
>>> tracer.record("macro-round", time=20.0, k=3)
>>> tracer.record("macro-round", time=30.0, k=3)
>>> [s.time for s in tracer.spans()]       # oldest span evicted
[20.0, 30.0]
>>> tracer.dropped
1
"""

from __future__ import annotations

from collections import Counter as _KindCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ACCESS_SERVED",
    "MICRO_ABSORB",
    "MICRO_SPAWN",
    "MICRO_MERGE",
    "MACRO_ROUND",
    "MIGRATION_START",
    "MIGRATION_FINISH",
]

ACCESS_SERVED = "access-served"
MICRO_ABSORB = "micro-absorb"
MICRO_SPAWN = "micro-spawn"
MICRO_MERGE = "micro-merge"
MACRO_ROUND = "macro-round"
MIGRATION_START = "migration-start"
MIGRATION_FINISH = "migration-finish"


@dataclass(frozen=True)
class Span:
    """One traced event.

    Attributes
    ----------
    kind:
        The event type (one of the module constants, or any string for
        application-defined events).
    time:
        Simulated timestamp in milliseconds (0.0 when no clock is bound
        and none was passed).
    attrs:
        Free-form event attributes (JSON-safe values recommended).
    """

    kind: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> dict:
        """JSON-safe form."""
        return {"kind": self.kind, "time": self.time, **self.attrs}


class Tracer:
    """Bounded ring buffer of typed spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; older spans are evicted first.
    clock:
        Optional zero-argument callable returning the current simulated
        time; used when :meth:`record` is not given an explicit time.
        Bind one with :meth:`bind_clock` (e.g. ``lambda: sim.now``).
    """

    enabled = True

    def __init__(self, capacity: int = 65_536,
                 clock: Callable[[], float] | None = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[Span] = deque(maxlen=capacity)
        self._clock = clock
        self.recorded = 0
        self._kind_counts: _KindCounter = _KindCounter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float] | None) -> None:
        """Set (or clear) the simulated-time source."""
        self._clock = clock

    def record(self, kind: str, time: float | None = None,
               **attrs: Any) -> None:
        """Append one span; evicts the oldest when the ring is full."""
        if time is None:
            time = self._clock() if self._clock is not None else 0.0
        self._buffer.append(Span(kind, float(time), attrs))
        self.recorded += 1
        self._kind_counts[kind] += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def spans(self, kind: str | None = None) -> list[Span]:
        """Retained spans in arrival order, optionally filtered by kind."""
        if kind is None:
            return list(self._buffer)
        return [s for s in self._buffer if s.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterable[Span]:
        return iter(self._buffer)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring so far."""
        return self.recorded - len(self._buffer)

    def kind_counts(self) -> dict[str, int]:
        """Total spans recorded per kind (including evicted ones)."""
        return dict(self._kind_counts)

    def snapshot(self, include_spans: bool = False,
                 span_limit: int = 1_000) -> dict:
        """JSON-safe summary; optionally inlines the newest spans."""
        payload = {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": len(self._buffer),
            "dropped": self.dropped,
            "kinds": {k: int(v) for k, v in sorted(self._kind_counts.items())},
        }
        if include_spans:
            newest = list(self._buffer)[-span_limit:]
            payload["spans"] = [s.snapshot() for s in newest]
        return payload

    def reset(self) -> None:
        """Drop all spans and counts."""
        self._buffer.clear()
        self.recorded = 0
        self._kind_counts.clear()

    def __repr__(self) -> str:
        return (f"Tracer(capacity={self.capacity}, retained={len(self)}, "
                f"recorded={self.recorded})")


class NullTracer(Tracer):
    """Disabled tracer: records nothing, costs (almost) nothing.

    >>> NULL_TRACER.record("access-served", time=1.0)
    >>> len(NULL_TRACER)
    0
    >>> NULL_TRACER.enabled
    False
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def bind_clock(self, clock: Callable[[], float] | None) -> None:
        pass

    def record(self, kind: str, time: float | None = None,
               **attrs: Any) -> None:
        pass


#: Shared disabled tracer — the process-wide default.
NULL_TRACER = NullTracer()
