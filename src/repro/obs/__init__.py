"""repro.obs — the simulation observability layer.

Three pillars (see ``docs/observability.md`` for the full reference):

* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges and
  mergeable fixed-bucket histograms in a :class:`MetricsRegistry`;
  additive, so per-node registries pool like the paper's CF vectors.
* **Tracing** (:mod:`repro.obs.tracing`) — a :class:`Tracer` ring
  buffer of typed :class:`Span` events stamped with *simulated* time.
* **Phase timers** — ``perf_counter``-based wall-clock accumulators
  around the hot paths (``registry.phase("name")``), answering the
  Table II overhead question for our own implementation.

The module keeps one process-wide active registry/tracer pair.  By
default both are no-ops, so the instrumentation threaded through the
simulator, clustering, placement and store costs at most one ``enabled``
check per call site and records nothing.  Crucially, instrumentation
never draws randomness and never schedules events, so **identical seeds
produce identical simulations with observability on or off**.

Typical use::

    from repro import obs

    with obs.observe() as (registry, tracer):
        run_figure2(setting)                       # instrumented run
        print(registry.counter("accesses.served").value)
        print(tracer.kind_counts())

or imperatively (the CLI's ``--metrics-out`` does this)::

    registry, tracer = obs.enable()
    try:
        ...
    finally:
        obs.disable()

Examples
--------
>>> from repro import obs
>>> obs.get_registry().enabled        # disabled by default
False
>>> with obs.observe() as (registry, tracer):
...     obs.get_registry() is registry
True
>>> obs.get_registry().enabled        # restored afterwards
False
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    PhaseTimer,
)
from repro.obs.tracing import (
    ACCESS_SERVED,
    MACRO_ROUND,
    MICRO_ABSORB,
    MICRO_MERGE,
    MICRO_SPAWN,
    MIGRATION_FINISH,
    MIGRATION_START,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BOUNDS_MS",
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ACCESS_SERVED",
    "MICRO_ABSORB",
    "MICRO_SPAWN",
    "MICRO_MERGE",
    "MACRO_ROUND",
    "MIGRATION_START",
    "MIGRATION_FINISH",
    # switchboard
    "get_registry",
    "get_tracer",
    "enable",
    "disable",
    "observe",
]

_active_registry: MetricsRegistry = NULL_REGISTRY
_active_tracer: Tracer = NULL_TRACER


def get_registry() -> MetricsRegistry:
    """The process-wide active metrics registry (no-op by default)."""
    return _active_registry


def get_tracer() -> Tracer:
    """The process-wide active tracer (no-op by default)."""
    return _active_tracer


def enable(registry: MetricsRegistry | None = None,
           tracer: Tracer | None = None) -> tuple[MetricsRegistry, Tracer]:
    """Install a live registry/tracer pair and return it.

    Passing ``None`` (the default) creates fresh instances.  The
    previous pair is simply replaced; use :func:`observe` when the
    previous state must be restored afterwards.
    """
    global _active_registry, _active_tracer
    _active_registry = registry if registry is not None else MetricsRegistry()
    _active_tracer = tracer if tracer is not None else Tracer()
    return _active_registry, _active_tracer


def disable() -> None:
    """Restore the default no-op registry and tracer."""
    global _active_registry, _active_tracer
    _active_registry = NULL_REGISTRY
    _active_tracer = NULL_TRACER


@contextmanager
def observe(registry: MetricsRegistry | None = None,
            tracer: Tracer | None = None
            ) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Context manager: observability on inside, prior state restored after."""
    global _active_registry, _active_tracer
    previous = (_active_registry, _active_tracer)
    pair = enable(registry, tracer)
    try:
        yield pair
    finally:
        _active_registry, _active_tracer = previous
