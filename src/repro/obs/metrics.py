"""Metric instruments: counters, gauges, histograms and phase timers.

All instruments are *additive*: two registries populated by independent
workers (or two histograms filled from disjoint sample streams) merge by
summation, exactly like the paper's micro-cluster CF vectors merge by
adding their components.  That makes per-node metrics safe to pool at a
coordinator without losing information.

Instruments are cheap enough to leave compiled into hot paths: the
default registry (:data:`NULL_REGISTRY`) is a no-op whose ``enabled``
flag lets callers skip even the dictionary lookups, so an uninstrumented
run pays one attribute check per instrumented call site.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("accesses.served").inc(3)
>>> registry.histogram("access.delay_ms").observe(12.5)
>>> registry.counter("accesses.served").value
3.0
>>> registry.histogram("access.delay_ms").count
1
"""

from __future__ import annotations

import bisect
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BOUNDS_MS",
]

#: Default histogram bucket upper bounds for latency-like values, in
#: milliseconds.  Spans sub-millisecond local traffic to multi-second
#: WAN transfers; values above the last bound land in the overflow
#: bucket.
DEFAULT_LATENCY_BOUNDS_MS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
)


class Counter:
    """A monotonically increasing count.

    >>> c = Counter("reads")
    >>> c.inc(); c.inc(2.0)
    >>> c.value
    3.0
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one (additive)."""
        self.value += other.value

    def snapshot(self) -> float:
        """JSON-safe current value."""
        return float(self.value)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (e.g. bytes currently in flight).

    >>> g = Gauge("replicas.installed")
    >>> g.set(3); g.inc(); g.dec(2)
    >>> g.value
    2.0
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        """Merging gauges keeps the last-written value of ``other``."""
        self.value = other.value

    def snapshot(self) -> float:
        """JSON-safe current value."""
        return float(self.value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket histogram that merges by addition.

    Bucket ``i`` counts samples ``v`` with ``bounds[i-1] < v <=
    bounds[i]`` (Prometheus-style ``le`` semantics); one extra overflow
    bucket holds everything above the last bound.  Because the bucket
    layout is fixed at construction, two histograms with the same bounds
    merge *exactly* — component-wise addition, the same algebra as a
    micro-cluster CF vector — so per-node histograms can be pooled at a
    coordinator losslessly.

    >>> h = Histogram("delay", bounds=(10.0, 100.0))
    >>> for v in (5.0, 50.0, 500.0): h.observe(v)
    >>> h.bucket_counts
    [1, 1, 1]
    >>> h.count, h.total
    (3, 555.0)
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count",
                 "total", "min", "max", "_bounds_array")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS,
                 help: str = "") -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._bounds_array = np.asarray(bounds, dtype=float)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples (vectorized)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self._bounds_array, values, side="left")
        per_bucket = np.bincount(idx, minlength=len(self.bucket_counts))
        for i, n in enumerate(per_bucket):
            self.bucket_counts[i] += int(n)
        self.count += int(values.size)
        self.total += float(values.sum())
        lo, hi = float(values.min()), float(values.max())
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (requires identical bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def copy(self) -> "Histogram":
        """Independent deep copy."""
        clone = Histogram(self.name, self.bounds, self.help)
        clone.merge(self)
        return clone

    def approx_quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1).

        Exact at bucket edges; linear within a bucket.  The overflow
        bucket is clamped to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            upper = (self.bounds[i] if i < len(self.bounds)
                     else (self.max if self.max is not None else lower))
            lo = max(lower, self.min or lower)
            if cumulative + n >= target:
                frac = (target - cumulative) / n
                return lo + (upper - lo) * min(max(frac, 0.0), 1.0)
            cumulative += n
            lower = upper
        return self.max if self.max is not None else 0.0

    def snapshot(self) -> dict:
        """JSON-safe summary (bounds, bucket counts, scalar stats).

        Tail quantiles (p50/p99/p999) are first-class fields: latency
        distributions are judged by their tails, so every exporter and
        sweep report carries them without re-deriving from buckets.
        """
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.approx_quantile(0.5),
            "p99": self.approx_quantile(0.99),
            "p999": self.approx_quantile(0.999),
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.3f})")


class _Timing:
    """Context manager that records one wall-clock interval."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "PhaseTimer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.record(perf_counter() - self._start)


class PhaseTimer:
    """Accumulated wall-clock time of one named phase.

    Timers use ``time.perf_counter`` — *wall* time, never simulated
    time — so they answer "where do the real CPU seconds go" (the
    paper's Table II overhead question), not "how long did the
    simulation pretend this took".

    >>> t = PhaseTimer("macro.place_replicas")
    >>> with t.time():
    ...     _ = sum(range(1000))
    >>> t.calls
    1
    >>> t.total_seconds > 0
    True
    """

    __slots__ = ("name", "help", "calls", "total_seconds", "max_seconds",
                 "last_seconds")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.calls = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.last_seconds = 0.0

    def time(self) -> _Timing:
        """A context manager timing one phase execution."""
        return _Timing(self)

    def record(self, seconds: float) -> None:
        """Record one measured interval directly."""
        self.calls += 1
        self.total_seconds += seconds
        self.last_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per call (0.0 when never called)."""
        return self.total_seconds / self.calls if self.calls else 0.0

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulation into this one."""
        self.calls += other.calls
        self.total_seconds += other.total_seconds
        self.last_seconds = other.last_seconds
        if other.max_seconds > self.max_seconds:
            self.max_seconds = other.max_seconds

    def snapshot(self) -> dict:
        """JSON-safe summary."""
        return {
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
        }

    def __repr__(self) -> str:
        return (f"PhaseTimer({self.name!r}, calls={self.calls}, "
                f"total={self.total_seconds:.6f}s)")


class MetricsRegistry:
    """Named instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same
    name with a different kind raises ``ValueError``.  Registries merge
    additively (see :meth:`merge`), so per-worker registries pool into a
    global one without coordination.

    >>> r = MetricsRegistry()
    >>> r.counter("x").inc()
    >>> r.counter("x").value       # same instrument on re-request
    1.0
    >>> with r.phase("setup"):
    ...     pass
    >>> r.timer("setup").calls
    1
    """

    #: Instrument calls guarded by ``if registry.enabled:`` are skipped
    #: entirely on the no-op registry.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, PhaseTimer] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms, "timer": self._timers}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS,
                  help: str = "") -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, bounds, help)
        return instrument

    def timer(self, name: str, help: str = "") -> PhaseTimer:
        """The phase timer called ``name`` (created on first use)."""
        instrument = self._timers.get(name)
        if instrument is None:
            self._claim(name, "timer")
            instrument = self._timers[name] = PhaseTimer(name, help)
        return instrument

    def phase(self, name: str) -> _Timing:
        """Shorthand: a timing context on the timer called ``name``."""
        return self.timer(name).time()

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (additive, like CF vectors)."""
        for name, counter in other._counters.items():
            self.counter(name, counter.help).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name, gauge.help).merge(gauge)
        for name, hist in other._histograms.items():
            self.histogram(name, hist.bounds, hist.help).merge(hist)
        for name, timer in other._timers.items():
            self.timer(name, timer.help).merge(timer)

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument, grouped by kind."""
        return {
            "counters": {n: c.snapshot()
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.snapshot()
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
            "phase_timers": {n: t.snapshot()
                             for n, t in sorted(self._timers.items())},
        }

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, "
                f"timers={len(self._timers)})")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


class _NullTiming:
    __slots__ = ()

    def __enter__(self) -> "_NullTiming":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


class _NullTimer(PhaseTimer):
    __slots__ = ()

    def time(self) -> _NullTiming:
        return _NULL_TIMING

    def record(self, seconds: float) -> None:
        pass


_NULL_TIMING = _NullTiming()


class NullRegistry(MetricsRegistry):
    """The default, disabled registry: every instrument is a shared no-op.

    Instrumented code can call through it safely; nothing is recorded
    and nothing accumulates, so leaving instrumentation compiled into
    hot paths costs (at most) one method call per site — or nothing at
    all behind an ``if registry.enabled:`` guard.

    >>> NULL_REGISTRY.counter("anything").inc(10)
    >>> NULL_REGISTRY.counter("anything").value
    0.0
    >>> NULL_REGISTRY.enabled
    False
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", bounds=(1.0,))
        self._null_timer = _NullTimer("null")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS,
                  help: str = "") -> Histogram:
        return self._null_histogram

    def timer(self, name: str, help: str = "") -> PhaseTimer:
        return self._null_timer

    def phase(self, name: str) -> _NullTiming:
        return _NULL_TIMING

    def merge(self, other: MetricsRegistry) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {},
                "phase_timers": {}}


#: Shared disabled registry — the process-wide default.
NULL_REGISTRY = NullRegistry()
