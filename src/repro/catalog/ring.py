"""Consistent-hash ring: stable key -> shard assignment.

The catalog maps placement units onto shards with a classic
consistent-hash ring (virtual nodes, 64-bit keyed positions).  The
property that matters is *growth stability*: growing ``n -> n + 1``
shards only inserts the new shard's virtual nodes into the ring, so a
key either keeps its owner or moves to the **new** shard — never
between two pre-existing shards — and in expectation only ``~1/(n+1)``
of the keyspace moves at all.  ``tests/property/test_ring_properties.py``
certifies both halves with hypothesis.

Hashing uses :func:`hashlib.blake2b` (8-byte digests), *not* Python's
builtin ``hash``: the builtin is salted per process (``PYTHONHASHSEED``)
and would make shard assignment — and therefore every sharded run —
non-reproducible across processes.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: Ring positions per shard.  More virtual nodes smooth the per-shard
#: key share (relative spread ~ 1/sqrt(vnodes)) at the cost of a larger
#: sorted ring to bisect.
DEFAULT_VNODES = 64

_SPACE = 1 << 64


def _hash64(data: str) -> int:
    """Deterministic 64-bit hash of a string (process-independent)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over ``n_shards`` shards.

    Parameters
    ----------
    n_shards:
        Number of shards (ring owners).
    vnodes:
        Virtual nodes per shard; higher values even out the key
        distribution.  All rings with the same ``vnodes`` share virtual
        node positions for common shards, which is what makes growth
        stable.
    """

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        points = []
        for shard in range(self.n_shards):
            for vnode in range(self.vnodes):
                points.append((_hash64(f"shard-{shard}/vnode-{vnode}"), shard))
        # Ties (64-bit collisions) break toward the lower shard index,
        # deterministically, on every ring size — growth keeps the
        # winner of any pre-existing tie.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_of(self, key: str) -> int:
        """The shard owning ``key``: the first ring point at or past its
        hash, wrapping at the top of the 64-bit space."""
        position = _hash64(key)
        index = bisect.bisect_left(self._points, position)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def unit_phase(self, key: str) -> float:
        """A deterministic phase in ``[0, 1)`` for staggering ``key``'s
        epoch clock.

        Derived from the key alone (under a distinct hash domain, so it
        is independent of the shard assignment) — the phase, and hence
        every epoch firing time, is invariant to the shard count.
        """
        return _hash64(f"phase/{key}") / _SPACE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(n_shards={self.n_shards}, vnodes={self.vnodes})"
