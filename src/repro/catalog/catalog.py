"""The sharded catalog: many keys, per-shard control planes, one budget.

:class:`ShardedCatalog` scales the store along the *object count* axis:
thousands-to-millions of keys are folded into placement groups
(:mod:`repro.catalog.groups`), groups are assigned to shards by a
consistent-hash ring (:mod:`repro.catalog.ring`), and every shard owns
its slice of the control plane:

* a **home coordinator** — ``candidates[shard % n_candidates]`` — that
  anchors each unit's coordinator-election ranking.  Failover (PR 3's
  lease/fencing machinery) is untouched: when the home dies, the
  ranking falls through to the unit's replica holders, the lease term
  advances, and stale epochs are fenced;
* **staggered epoch clocks** — each unit's periodic epoch starts at a
  key-derived phase offset (``epoch_stagger`` scales it) so thousands
  of control-plane barriers spread across the epoch period instead of
  landing on one instant and serializing the batched data plane;
* a slice of the **global migration budget** — one
  ``max_epoch_moves`` pool refilled every epoch window and drained by
  whichever unit's epoch fires next, bounding the catalog-wide
  transfer burst (arXiv:1509.01330's migration-cost concern) without
  per-shard static quotas that would strand budget on idle shards.

Degenerate case: one shard, singleton groups, ``epoch_stagger = 0`` and
no budget is *bitwise identical* to creating each object directly with
``ReplicatedStore.create_object`` — same unit keys, same RNG streams,
same epoch schedule (``tests/integration/test_catalog_equivalence.py``).
Because epoch phases, unit creation order and the budget-drain order
are all derived from unit keys — never from the shard layout — results
are also bitwise-invariant to the shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.catalog.groups import PlacementGroups
from repro.catalog.ring import DEFAULT_VNODES, HashRing
from repro.core.controller import ControllerConfig, EpochReport
from repro.core.migration import MigrationCostModel, MigrationPolicy
from repro.sim.process import PeriodicProcess
from repro.store.kvstore import ReplicatedStore

__all__ = ["CatalogShard", "MigrationBudget", "ShardedCatalog"]


@dataclass
class CatalogShard:
    """One shard's control-plane slice and running totals."""

    index: int
    home: int                       # node id of the home coordinator
    unit_keys: list[str] = field(default_factory=list)
    n_keys: int = 0
    epochs: int = 0
    moves: int = 0

    @property
    def n_units(self) -> int:
        return len(self.unit_keys)


class MigrationBudget:
    """A global per-epoch-window pool of replica moves.

    The window index is ``now // window_ms``; entering a new window
    refills the pool.  Units drain it in epoch-firing order — which is
    key-derived, hence shard-count-invariant — so the budget is
    work-conserving: a quiet shard's unused allowance is available to
    whichever unit fires next, anywhere in the catalog.
    """

    def __init__(self, limit: int, window_ms: float) -> None:
        if limit < 0:
            raise ValueError("migration budget must be non-negative")
        if window_ms <= 0:
            raise ValueError("budget window must be positive")
        self.limit = int(limit)
        self.window_ms = float(window_ms)
        self.total_granted = 0
        self._window: int | None = None
        self._spent = 0

    def _roll(self, now: float) -> None:
        window = int(now // self.window_ms)
        if window != self._window:
            self._window = window
            self._spent = 0

    def remaining(self, now: float) -> int:
        """Moves still available in the window containing ``now``."""
        self._roll(now)
        return max(self.limit - self._spent, 0)

    def charge(self, now: float, moves: int) -> None:
        """Record ``moves`` adopted new sites against the window."""
        self._roll(now)
        self._spent += int(moves)
        self.total_granted += int(moves)


class ShardedCatalog:
    """A consistent-hash-sharded catalog of placement units.

    Parameters
    ----------
    store:
        The (empty slice of a) :class:`ReplicatedStore` the catalog
        populates; one catalog per store.
    keys:
        The member keys to create.  Enumeration order is irrelevant —
        units are created in sorted group-key order, which pins the
        shared ``"initial-placement"`` RNG stream and the epoch
        scheduling order regardless of how the caller enumerates keys.
    groups:
        A :class:`~repro.catalog.groups.PlacementGroups` partition of
        exactly these keys; default one singleton group per key.
    n_shards / vnodes:
        Ring geometry (see :class:`~repro.catalog.ring.HashRing`).
    k / size_gb / read_size_bytes / controller_config / cost_model /
    policy:
        Per-unit creation parameters, as in
        :meth:`ReplicatedStore.create_object`.
    epoch_period_ms:
        Period of every unit's placement epoch (``None`` = no epochs).
    epoch_stagger:
        Fraction of the period (``0..1``) over which per-unit epoch
        phases spread.  ``0`` fires every unit's epoch at the period
        boundary (the single-object schedule); ``1`` spreads them
        uniformly by key hash.
    max_epoch_moves:
        Optional *global* per-window migration budget (requires
        ``epoch_period_ms``); see :class:`MigrationBudget`.
    """

    def __init__(self, store: ReplicatedStore, keys: Sequence[str], *,
                 n_shards: int = 1,
                 groups: PlacementGroups | None = None,
                 k: int = 3, size_gb: float = 1.0,
                 read_size_bytes: int = 64 * 1024,
                 controller_config: ControllerConfig | None = None,
                 cost_model: MigrationCostModel | None = None,
                 policy: MigrationPolicy | None = None,
                 epoch_period_ms: float | None = None,
                 epoch_stagger: float = 0.0,
                 max_epoch_moves: int | None = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        keys = tuple(str(key) for key in keys)
        if not keys:
            raise ValueError("a catalog needs at least one key")
        if len(set(keys)) != len(keys):
            raise ValueError("catalog keys must be distinct")
        if not 0.0 <= epoch_stagger <= 1.0:
            raise ValueError("epoch stagger must lie in [0, 1]")
        if max_epoch_moves is not None and epoch_period_ms is None:
            raise ValueError("a migration budget needs an epoch period")
        self.store = store
        self.groups = groups or PlacementGroups.singletons(keys)
        if set(self.groups.keys) != set(keys):
            raise ValueError("groups must partition exactly the catalog keys")
        self.ring = HashRing(n_shards, vnodes)
        self.epoch_period_ms = epoch_period_ms
        self.epoch_stagger = float(epoch_stagger)
        self.budget = (MigrationBudget(max_epoch_moves, epoch_period_ms)
                       if max_epoch_moves is not None else None)
        self.shards = [
            CatalogShard(index=s,
                         home=store.candidates[s % len(store.candidates)])
            for s in range(self.ring.n_shards)
        ]
        self._shard_of_unit: dict[str, CatalogShard] = {}
        self._processes: list[PeriodicProcess] = []

        # Sorted group order pins (a) the shared "initial-placement" RNG
        # stream consumption and (b) same-instant epoch scheduling order
        # to the keyspace alone — both invariant to the shard count.
        for group_key in self.groups.group_keys:
            members = self.groups.members(group_key)
            shard = self.shards[self.ring.shard_of(group_key)]
            if members == (group_key,):
                store.create_object(
                    group_key, size_gb=size_gb, k=k,
                    read_size_bytes=read_size_bytes,
                    controller_config=controller_config,
                    cost_model=cost_model, policy=policy,
                    home_coordinator=shard.home)
            else:
                store.create_group(
                    group_key, {member: size_gb for member in members},
                    k=k, read_size_bytes=read_size_bytes,
                    controller_config=controller_config,
                    cost_model=cost_model, policy=policy,
                    home_coordinator=shard.home)
            shard.unit_keys.append(group_key)
            shard.n_keys += len(members)
            self._shard_of_unit[group_key] = shard
            if epoch_period_ms is not None:
                phase = self.ring.unit_phase(group_key) * self.epoch_stagger
                process = PeriodicProcess(
                    store.sim, epoch_period_ms,
                    lambda _unit=group_key: self.run_unit_epoch(_unit),
                    start_after=epoch_period_ms * (1.0 + phase))
                store.adopt_epoch_process(group_key, process)
                self._processes.append(process)

        registry = obs.get_registry()
        if registry.enabled:
            for shard in self.shards:
                label = f"catalog.shard{shard.index:02d}"
                registry.gauge(f"{label}.keys").set(shard.n_keys)
                registry.gauge(f"{label}.groups").set(shard.n_units)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.ring.n_shards

    @property
    def n_keys(self) -> int:
        return self.groups.n_keys

    @property
    def n_groups(self) -> int:
        return self.groups.n_groups

    def keys(self) -> tuple[str, ...]:
        """Every member key, in canonical sorted order.

        The canonical order is what workloads should enumerate — it
        makes trace generation independent of construction details.
        """
        return self.groups.keys

    def unit_keys(self) -> tuple[str, ...]:
        """All unit (group) keys in creation order (sorted)."""
        return self.groups.group_keys

    def shard_of_key(self, key: str) -> int:
        """Shard index serving ``key`` (via its group)."""
        return self.ring.shard_of(self.groups.group_of(key))

    def shard_coordinator(self, shard: int) -> int:
        """The home-coordinator node id of a shard."""
        return self.shards[shard].home

    def shard_failovers(self, shard: int) -> int:
        """Coordinator failovers observed across a shard's units."""
        return sum(self.store.controller(unit).failovers
                   for unit in self.shards[shard].unit_keys)

    def stop(self) -> None:
        """Stop every unit's epoch clock."""
        for process in self._processes:
            process.stop()

    # ------------------------------------------------------------------
    def run_unit_epoch(self, unit_key: str) -> EpochReport:
        """One budget-aware placement epoch for one unit."""
        shard = self._shard_of_unit[unit_key]
        now = self.store.sim.now
        max_moves = (self.budget.remaining(now)
                     if self.budget is not None else None)
        registry = obs.get_registry()
        label = f"catalog.shard{shard.index:02d}"
        with registry.phase(f"{label}.epoch"):
            report = self.store.run_epoch(unit_key, max_moves=max_moves)
        shard.epochs += 1
        moves = 0
        if report.migrated:
            moves = len(set(report.proposed_sites)
                        - set(report.previous_sites))
        if moves:
            shard.moves += moves
            if self.budget is not None:
                self.budget.charge(now, moves)
        if registry.enabled:
            registry.counter(f"{label}.epochs").inc()
            if moves:
                registry.counter(f"{label}.moves").inc(moves)
        return report

    # ------------------------------------------------------------------
    def shard_stats(self) -> list[dict]:
        """Per-shard counters (keys, groups, epochs, moves, failovers)."""
        return [
            {
                "shard": shard.index,
                "home": shard.home,
                "groups": shard.n_units,
                "keys": shard.n_keys,
                "epochs": shard.epochs,
                "moves": shard.moves,
                "failovers": self.shard_failovers(shard.index),
            }
            for shard in self.shards
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedCatalog(n_keys={self.n_keys}, "
                f"n_groups={self.n_groups}, n_shards={self.n_shards})")
