"""Placement groups: folding similar-access objects into one unit.

Section II-A: a placement solution "can be applied to a group of data
objects by treating accesses to any object of the group as accesses to
a virtual object that represents all the objects of the group."  The
``examples/object_groups.py`` walkthrough shows the payoff — one
controller, one summary stream and one migration decision per *group*
instead of per key; this module makes the grouping a first-class
catalog concept.

A :class:`PlacementGroups` is a frozen partition of the catalog's keys
into groups.  Naming rule: a **singleton** group is named after its only
member, so a catalog built from singletons creates exactly the same
placement units (same unit keys, same per-unit RNG streams) as calling
``ReplicatedStore.create_object`` per key — that identity is what the
degenerate-case differential test certifies.  Multi-member groups are
named ``grp:<leader>`` after their lexicographically smallest member.

:func:`build_groups` derives a partition from per-key access vectors
(e.g. expected per-region demand) with deterministic greedy leader
clustering on cosine similarity — keys are visited in sorted order, so
the result is independent of input enumeration order.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["PlacementGroups", "build_groups", "keyspace"]


def keyspace(n: int, prefix: str = "obj") -> tuple[str, ...]:
    """The canonical ``n``-key catalog keyspace (``obj-000000`` ...).

    Zero-padded so lexicographic and numeric order agree — every
    sorted-key canonicalization in the catalog then enumerates keys in
    their natural order.
    """
    if n < 1:
        raise ValueError("need at least one key")
    width = max(6, len(str(n - 1)))
    return tuple(f"{prefix}-{i:0{width}d}" for i in range(n))


class PlacementGroups:
    """An immutable partition of catalog keys into placement groups."""

    def __init__(self, groups: Mapping[str, Sequence[str]]) -> None:
        if not groups:
            raise ValueError("need at least one group")
        mapping: dict[str, tuple[str, ...]] = {}
        owner: dict[str, str] = {}
        for group_key, members in groups.items():
            members = tuple(str(m) for m in members)
            if not members:
                raise ValueError(f"group {group_key!r} has no members")
            if len(set(members)) != len(members):
                raise ValueError(f"group {group_key!r} repeats a member")
            for member in members:
                if member in owner:
                    raise ValueError(
                        f"key {member!r} belongs to both "
                        f"{owner[member]!r} and {group_key!r}")
                owner[member] = str(group_key)
            mapping[str(group_key)] = members
        for group_key, members in mapping.items():
            if len(members) == 1 and group_key != members[0]:
                raise ValueError(
                    f"singleton group {group_key!r} must be named after "
                    f"its member {members[0]!r}")
            if len(members) > 1 and group_key in owner and \
                    owner[group_key] != group_key:
                raise ValueError(
                    f"group key {group_key!r} collides with a member of "
                    f"{owner[group_key]!r}")
        self._groups = mapping
        self._owner = owner

    # ------------------------------------------------------------------
    @classmethod
    def singletons(cls, keys: Iterable[str]) -> "PlacementGroups":
        """One group per key, named after the key (the degenerate case)."""
        return cls({str(key): (str(key),) for key in keys})

    @classmethod
    def chunked(cls, keys: Sequence[str], size: int) -> "PlacementGroups":
        """Consecutive runs of ``size`` sorted keys per group.

        A cheap synthetic grouping (no access vectors needed): adjacent
        keys in the canonical :func:`keyspace` order share a group.
        """
        if size < 1:
            raise ValueError("chunk size must be positive")
        ordered = sorted(str(key) for key in keys)
        groups: dict[str, tuple[str, ...]] = {}
        for start in range(0, len(ordered), size):
            members = tuple(ordered[start:start + size])
            name = members[0] if len(members) == 1 else f"grp:{members[0]}"
            groups[name] = members
        return cls(groups)

    @classmethod
    def explicit(cls, groups: Mapping[str, Sequence[str]]) -> "PlacementGroups":
        """A caller-provided partition (validated)."""
        return cls(groups)

    # ------------------------------------------------------------------
    @property
    def groups(self) -> dict[str, tuple[str, ...]]:
        """``group key -> member keys`` (insertion order preserved)."""
        return dict(self._groups)

    @property
    def group_keys(self) -> tuple[str, ...]:
        """Group keys in sorted (canonical creation) order."""
        return tuple(sorted(self._groups))

    @property
    def keys(self) -> tuple[str, ...]:
        """Every member key, sorted."""
        return tuple(sorted(self._owner))

    def members(self, group_key: str) -> tuple[str, ...]:
        return self._groups[group_key]

    def group_of(self, key: str) -> str:
        return self._owner[key]

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    @property
    def n_keys(self) -> int:
        return len(self._owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PlacementGroups(n_groups={self.n_groups}, "
                f"n_keys={self.n_keys})")


def build_groups(vectors: Mapping[str, Sequence[float]],
                 similarity: float = 0.95) -> PlacementGroups:
    """Partition keys by access-vector similarity (greedy, deterministic).

    ``vectors`` maps each key to its access vector — any fixed-length
    demand profile (per-region request shares, per-client-cluster
    weights, ...).  Keys are visited in sorted order; a key joins the
    first existing group whose *leader* vector has cosine similarity
    ``>= similarity``, else it founds a new group with itself as leader.
    Leader (rather than centroid) comparison keeps membership
    independent of arrival order within a group.

    Keys with a zero vector (never accessed) stay singletons — there is
    no evidence they share an audience with anything.
    """
    if not vectors:
        raise ValueError("need at least one access vector")
    if not 0.0 < similarity <= 1.0:
        raise ValueError("similarity threshold must lie in (0, 1]")
    ordered = sorted(vectors)
    width = len(np.atleast_1d(np.asarray(vectors[ordered[0]], dtype=float)))
    leaders: list[tuple[str, np.ndarray]] = []   # (leader key, unit vector)
    membership: dict[str, list[str]] = {}
    for key in ordered:
        vector = np.atleast_1d(np.asarray(vectors[key], dtype=float))
        if vector.shape != (width,):
            raise ValueError(
                f"access vector of {key!r} has shape {vector.shape}, "
                f"expected ({width},)")
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            membership[key] = [key]
            continue
        unit = vector / norm
        for leader_key, leader_unit in leaders:
            if float(unit @ leader_unit) >= similarity:
                membership[leader_key].append(key)
                break
        else:
            leaders.append((key, unit))
            membership[key] = [key]
    groups = {
        (leader if len(members) == 1 else f"grp:{leader}"): tuple(members)
        for leader, members in membership.items()
    }
    return PlacementGroups(groups)
