"""repro.catalog — a sharded multi-object catalog over the store.

The paper places one object; this package scales the machinery to
catalogs of thousands-to-millions of keys:

* :mod:`repro.catalog.ring` — consistent-hash key-to-shard mapping
  whose growth stability the property suite certifies;
* :mod:`repro.catalog.groups` — folding similar-access keys into
  placement groups (the paper's Section II-A "virtual object");
* :mod:`repro.catalog.catalog` — :class:`ShardedCatalog`: per-shard
  home coordinators (PR 3 failover), key-staggered epoch clocks and a
  global migration budget;
* :mod:`repro.catalog.sweep` — the ``repro catalog`` experiment grid.

See ``docs/catalog.md``.
"""

from repro.catalog.catalog import CatalogShard, MigrationBudget, ShardedCatalog
from repro.catalog.groups import PlacementGroups, build_groups, keyspace
from repro.catalog.ring import DEFAULT_VNODES, HashRing
from repro.catalog.sweep import (
    CatalogRunSpec,
    catalog_to_csv,
    format_catalog,
    run_catalog_cell,
    run_catalog_sweep,
)

__all__ = [
    "CatalogShard",
    "MigrationBudget",
    "ShardedCatalog",
    "PlacementGroups",
    "build_groups",
    "keyspace",
    "HashRing",
    "DEFAULT_VNODES",
    "CatalogRunSpec",
    "run_catalog_cell",
    "run_catalog_sweep",
    "format_catalog",
    "catalog_to_csv",
]
