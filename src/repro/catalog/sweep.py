"""Catalog sweeps: the control plane along the key-count axis.

The paper evaluates one object at a time; real deployments place
*catalogs* of objects.  :func:`run_catalog_sweep` drives the live stack
(synthetic PlanetLab world, replicated store, Poisson workload) with a
:class:`~repro.catalog.catalog.ShardedCatalog` over a grid of
``(n_keys, n_shards)`` cells, answering the scaling questions the
single-object sweeps cannot: how does end-to-end latency and
control-plane work evolve as the keyspace grows, and how much does
grouping similar keys into placement units buy?

Cells run through :mod:`repro.runner.pool` — the same parallel /
cached / resumable machinery as the figure sweeps — and seed every
stream from the cell's identity, so a sweep is bit-identical at any
``--jobs`` level.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.runner.jobs import seed_sequence
from repro.runner.pool import execute

__all__ = ["CatalogRunSpec", "run_catalog_cell", "run_catalog_sweep",
           "format_catalog", "catalog_to_csv", "GROUPING_MODES"]

#: Stream tags mixed into seed_sequence keys (match the chaos harness,
#: so a catalog cell and a chaos run with the same seed share a world).
_CANDIDATES_STREAM = 101
_EMBED_STREAM = 102

#: How keys fold into placement units: every key its own unit, fixed
#: chunks of the sorted keyspace, or similarity clustering over
#: synthetic per-key audience vectors (exercises ``build_groups``).
GROUPING_MODES = ("none", "chunked", "audience")


@dataclass(frozen=True)
class CatalogRunSpec:
    """One catalog sweep cell: a keyspace size on a shard count.

    Satisfies the runner's job protocol (``payload`` / ``execute`` /
    ``kind`` / ``setting``) so catalog cells pool, cache and resume
    exactly like every other experiment.
    """

    n_keys: int
    n_shards: int
    grouping: str = "chunked"
    group_size: int = 10
    n_nodes: int = 64
    n_dc: int = 12
    seed: int = 0
    k: int = 3
    rate_per_second: float = 200.0
    duration_ms: float = 60_000.0
    engine: str = "batched"
    epoch_period_ms: float = 10_000.0
    epoch_stagger: float = 1.0
    max_epoch_moves: int | None = None
    # Queueing / selection axes (mirror the chaos scenario's
    # ``[queueing]`` / ``[selection]`` sections).
    strategy: str = "nearest"
    service_model: str = "none"
    service_ms: float = 0.0
    service_sigma: float = 0.5
    queue_capacity: int | None = None

    kind = "catalog-run"
    setting = None                  # the spec carries its own world

    def __post_init__(self) -> None:
        from repro.store.selection import STRATEGIES

        if self.grouping not in GROUPING_MODES:
            raise ValueError(f"unknown grouping {self.grouping!r}; "
                             f"known: {GROUPING_MODES}")
        if self.engine not in ("event", "batched"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown selection strategy "
                             f"{self.strategy!r}; known: {STRATEGIES}")
        self.build_queueing()       # validates the queueing knobs

    def build_queueing(self):
        """Materialize the cell's queueing config (``None`` = legacy)."""
        from repro.store.queueing import QueueingConfig

        return QueueingConfig.from_params(
            service_model=self.service_model, service_ms=self.service_ms,
            service_sigma=self.service_sigma,
            queue_capacity=self.queue_capacity)

    def payload(self) -> dict:
        payload = asdict(self)
        payload["kind"] = self.kind
        return payload

    def execute(self, world=None) -> dict[str, Any]:
        return run_catalog_cell(self)


def _audience_vectors(keys: Sequence[str]) -> dict[str, np.ndarray]:
    """Synthetic one-hot audience vectors: key -> one of 8 audiences.

    The audience is key-derived (via the ring's stable hash), so the
    clustering input — and hence the resulting groups — depends only on
    the keyspace, never on enumeration order or shard layout.
    """
    from repro.catalog.ring import _hash64

    vectors: dict[str, np.ndarray] = {}
    for key in keys:
        vec = np.zeros(8)
        vec[_hash64(f"audience/{key}") % 8] = 1.0
        vectors[key] = vec
    return vectors


def _build_groups(spec: CatalogRunSpec, keys: Sequence[str]):
    from repro.catalog.groups import PlacementGroups, build_groups

    if spec.grouping == "none":
        return PlacementGroups.singletons(keys)
    if spec.grouping == "chunked":
        return PlacementGroups.chunked(keys, spec.group_size)
    return build_groups(_audience_vectors(keys))


def run_catalog_cell(spec: CatalogRunSpec) -> dict[str, Any]:
    """Run one catalog cell end-to-end; return its counters.

    The world derivation (matrix seed, embedding stream, candidate
    stream, simulator seed) mirrors the chaos harness exactly, so the
    same master seed reproduces the same world everywhere.
    """
    from repro.analysis.experiment import draw_candidates
    from repro.catalog.catalog import ShardedCatalog
    from repro.catalog.groups import keyspace
    from repro.coords import embed_matrix
    from repro.net import PlanetLabParams, synthetic_planetlab_matrix
    from repro.sim import Simulator
    from repro.store import ReplicatedStore
    from repro.workloads import AccessWorkload, ClientPopulation

    matrix, _ = synthetic_planetlab_matrix(
        PlanetLabParams(n=spec.n_nodes), seed=spec.seed)
    planar = embed_matrix(
        matrix, rounds=40,
        rng=np.random.default_rng(
            seed_sequence(spec.seed, 0, _EMBED_STREAM)),
    ).coords[:, :3]
    candidates, clients = draw_candidates(
        matrix, spec.n_dc,
        np.random.default_rng(
            seed_sequence(spec.seed, 0, _CANDIDATES_STREAM)))

    sim_seed = int(seed_sequence(spec.seed, 0).generate_state(1)[0])
    sim = Simulator(seed=sim_seed)
    store = ReplicatedStore(sim, matrix, candidates, planar,
                            selection="oracle",
                            queueing=spec.build_queueing(),
                            strategy=spec.strategy)
    keys = keyspace(spec.n_keys)
    catalog = ShardedCatalog(
        store, keys, n_shards=spec.n_shards,
        groups=_build_groups(spec, keys), k=spec.k,
        epoch_period_ms=spec.epoch_period_ms,
        epoch_stagger=spec.epoch_stagger,
        max_epoch_moves=spec.max_epoch_moves)

    if spec.engine == "batched":
        from repro.store.batched import BatchedAccessWorkload
        workload_cls = BatchedAccessWorkload
    else:
        workload_cls = AccessWorkload
    population = ClientPopulation.uniform(clients)
    workload = workload_cls(store, population, list(catalog.keys()),
                            rate_per_second=spec.rate_per_second)

    sim.run_until(spec.duration_ms)

    reads = [r for r in store.log.records if r.kind == "read"]
    units = catalog.unit_keys()
    quantiles = store.log.tail_quantiles("read")
    return {
        "n_keys": spec.n_keys,
        "n_shards": spec.n_shards,
        "grouping": spec.grouping,
        "groups": catalog.n_groups,
        "reads_issued": workload.operations_issued,
        "reads_completed": len(reads),
        "mean_delay_ms": (float(np.mean([r.delay_ms for r in reads]))
                          if reads else 0.0),
        "p50_ms": quantiles["p50"],
        "p99_ms": quantiles["p99"],
        "p999_ms": quantiles["p999"],
        "queue_rejections": store.queue_rejections,
        "epochs": sum(shard.epochs for shard in catalog.shards),
        "moves": sum(shard.moves for shard in catalog.shards),
        "migrations": sum(store.controller(u).tally.migrations
                          for u in units),
        "failovers": sum(catalog.shard_failovers(s)
                         for s in range(catalog.n_shards)),
    }


def run_catalog_sweep(keys_list: Sequence[int],
                      shards_list: Sequence[int], *,
                      grouping: str = "chunked",
                      group_size: int = 10,
                      n_nodes: int = 64, n_dc: int = 12,
                      seed: int = 0, k: int = 3,
                      rate_per_second: float = 200.0,
                      duration_ms: float = 60_000.0,
                      engine: str = "batched",
                      epoch_period_ms: float = 10_000.0,
                      epoch_stagger: float = 1.0,
                      max_epoch_moves: int | None = None,
                      strategy: str = "nearest",
                      service_model: str = "none",
                      service_ms: float = 0.0,
                      service_sigma: float = 0.5,
                      queue_capacity: int | None = None,
                      jobs: int | None = 1,
                      cache_dir: str | None = None,
                      resume: bool = False,
                      chunk_size: int | None = None) -> list[dict[str, Any]]:
    """The ``(n_keys, n_shards)`` grid, through the parallel runner.

    Rows come back in grid order (keys outer, shards inner),
    bit-identical at any ``jobs`` level.
    """
    specs = [
        CatalogRunSpec(
            n_keys=n_keys, n_shards=n_shards, grouping=grouping,
            group_size=group_size, n_nodes=n_nodes, n_dc=n_dc,
            seed=seed, k=k, rate_per_second=rate_per_second,
            duration_ms=duration_ms, engine=engine,
            epoch_period_ms=epoch_period_ms,
            epoch_stagger=epoch_stagger,
            max_epoch_moves=max_epoch_moves,
            strategy=strategy, service_model=service_model,
            service_ms=service_ms, service_sigma=service_sigma,
            queue_capacity=queue_capacity)
        for n_keys in keys_list
        for n_shards in shards_list
    ]
    registry = obs.get_registry()
    with registry.phase("catalog.sweep"):
        rows = execute(specs, jobs=jobs, cache_dir=cache_dir,
                       resume=resume, chunk_size=chunk_size)
    if registry.enabled:
        registry.counter("catalog.cells").inc(len(specs))
    return rows


_COLUMNS = (
    ("keys", "n_keys"), ("shards", "n_shards"), ("groups", "groups"),
    ("reads", "reads_completed"), ("mean delay (ms)", "mean_delay_ms"),
    ("p99 (ms)", "p99_ms"), ("p999 (ms)", "p999_ms"),
    ("epochs", "epochs"), ("moves", "moves"), ("failovers", "failovers"),
)


def format_catalog(rows: Sequence[dict[str, Any]]) -> str:
    """Human-readable table of a catalog sweep."""
    header = " | ".join(f"{label:>15}" for label, _ in _COLUMNS)
    lines = [f"catalog sweep ({len(rows)} cell(s), "
             f"grouping={rows[0]['grouping']})" if rows else
             "catalog sweep (0 cells)",
             "", header, "-" * len(header)]
    for row in rows:
        cells = []
        for _, field_name in _COLUMNS:
            value = row[field_name]
            cells.append(f"{value:>15.2f}" if isinstance(value, float)
                         else f"{value:>15}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def catalog_to_csv(rows: Sequence[dict[str, Any]], path: str) -> None:
    """Export sweep rows as CSV (stable column order)."""
    import csv

    fields = ["n_keys", "n_shards", "grouping", "groups", "reads_issued",
              "reads_completed", "mean_delay_ms", "p50_ms", "p99_ms",
              "p999_ms", "queue_rejections", "epochs", "moves",
              "migrations", "failovers"]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow({name: row[name] for name in fields})
