"""Weighted k-means assignment/update and coordinate-distance kernels.

The assignment kernel materialises the full ``(n, k)`` point-by-centroid
squared-distance matrix; an optional *eligibility* mask excludes
centroids (columns) from the assignment without disturbing the matrix
shape — that is how chaos-degraded epochs (partitioned candidates,
unreachable sites) keep using the same code path.

Every function takes ``backend={"python","numpy"}`` (``None`` resolves
the process-wide switch, see :mod:`repro.kernels`).  The numpy variants
are the production path; the python variants are deliberately scalar
loops — the reference oracle.  All functions return numpy arrays either
way, so callers never branch on the backend themselves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels import resolve_backend

__all__ = [
    "sq_distances",
    "assign_labels",
    "assignment_costs",
    "update_centroids",
    "cross_distances",
    "pairwise_distances",
]


def sq_distances(points: np.ndarray, centers: np.ndarray,
                 *, backend: str | None = None) -> np.ndarray:
    """``(n, k)`` squared Euclidean distances, point row by centroid row."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    if resolve_backend(backend) == "numpy":
        diff = points[:, None, :] - centers[None, :, :]
        return np.einsum("nkd,nkd->nk", diff, diff)
    rows = points.tolist()
    cols = centers.tolist()
    out = [[0.0] * len(cols) for _ in rows]
    for i, p in enumerate(rows):
        row = out[i]
        for j, c in enumerate(cols):
            acc = 0.0
            for a, b in zip(p, c):
                d = a - b
                acc += d * d
            row[j] = acc
    return np.asarray(out, dtype=float)


def assign_labels(sq: np.ndarray, *, eligible: np.ndarray | None = None,
                  backend: str | None = None) -> np.ndarray:
    """Nearest-centroid labels from a squared-distance matrix.

    ``eligible`` is an optional ``(k,)`` boolean mask over centroids;
    ineligible columns can never win the argmin.  Ties resolve to the
    lowest index in both backends (numpy's ``argmin`` rule).
    """
    sq = np.atleast_2d(np.asarray(sq, dtype=float))
    if eligible is not None:
        eligible = np.asarray(eligible, dtype=bool)
        if eligible.shape != (sq.shape[1],):
            raise ValueError(
                f"eligibility mask must be ({sq.shape[1]},), "
                f"got {eligible.shape}")
        if not eligible.any():
            raise ValueError("no centroid is eligible")
    if resolve_backend(backend) == "numpy":
        if eligible is None:
            return np.argmin(sq, axis=1)
        masked = np.where(eligible[None, :], sq, np.inf)
        return np.argmin(masked, axis=1)
    ok = [True] * sq.shape[1] if eligible is None else eligible.tolist()
    labels = []
    for row in sq.tolist():
        best, best_val = -1, math.inf
        for j, val in enumerate(row):
            if ok[j] and val < best_val:
                best, best_val = j, val
        labels.append(best)
    return np.asarray(labels, dtype=int)


def assignment_costs(sq: np.ndarray, labels: np.ndarray, weights: np.ndarray,
                     *, backend: str | None = None) -> np.ndarray:
    """Per-point weighted squared distance to its assigned centroid.

    Summing this vector gives the inertia; its argmax is the point a
    deterministic empty-cluster reseed should grab.
    """
    sq = np.atleast_2d(np.asarray(sq, dtype=float))
    labels = np.asarray(labels, dtype=int)
    weights = np.asarray(weights, dtype=float)
    if resolve_backend(backend) == "numpy":
        return weights * sq[np.arange(labels.size), labels]
    out = [w * row[lab] for row, lab, w in
           zip(sq.tolist(), labels.tolist(), weights.tolist())]
    return np.asarray(out, dtype=float)


def update_centroids(points: np.ndarray, labels: np.ndarray,
                     weights: np.ndarray, centers: np.ndarray,
                     costs: np.ndarray,
                     *, backend: str | None = None) -> np.ndarray:
    """One Lloyd update: weighted means, empty clusters reseeded.

    An empty cluster is reseeded at the point with the largest current
    assignment cost — a deterministic rule driven entirely by the
    inputs, never by hidden RNG state, so ``backend="python"`` runs are
    exactly as seed-stable as the vectorised path.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    labels = np.asarray(labels, dtype=int)
    weights = np.asarray(weights, dtype=float)
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    costs = np.asarray(costs, dtype=float)
    k = centers.shape[0]
    if resolve_backend(backend) == "numpy":
        new_centers = centers.copy()
        for c in range(k):
            mask = labels == c
            mass = weights[mask].sum()
            if mass > 0:
                new_centers[c] = np.average(points[mask], axis=0,
                                            weights=weights[mask])
            else:
                new_centers[c] = points[int(np.argmax(costs))]
        return new_centers
    d = points.shape[1]
    sums = [[0.0] * d for _ in range(k)]
    masses = [0.0] * k
    for p, lab, w in zip(points.tolist(), labels.tolist(), weights.tolist()):
        masses[lab] += w
        row = sums[lab]
        for dim in range(d):
            row[dim] += w * p[dim]
    cost_list = costs.tolist()
    worst = max(range(len(cost_list)), key=lambda i: cost_list[i],
                default=0) if cost_list else 0
    out = []
    for c in range(k):
        if masses[c] > 0:
            out.append([s / masses[c] for s in sums[c]])
        else:
            out.append(list(points[worst]))
    return np.asarray(out, dtype=float)


def cross_distances(a: np.ndarray, b: np.ndarray,
                    b_heights: np.ndarray | None = None,
                    a_heights: np.ndarray | None = None,
                    *, backend: str | None = None) -> np.ndarray:
    """``(na, nb)`` Euclidean distances between row sets, plus heights.

    ``a_heights`` / ``b_heights`` are optional per-row height-vector
    components added to every distance involving that row (the
    Vivaldi/RNP access-link delay model).
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if resolve_backend(backend) == "numpy":
        d = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)
        if a_heights is not None:
            d = d + np.asarray(a_heights, dtype=float)[:, None]
        if b_heights is not None:
            d = d + np.asarray(b_heights, dtype=float)[None, :]
        return d
    ah = ([0.0] * a.shape[0] if a_heights is None
          else np.asarray(a_heights, dtype=float).tolist())
    bh = ([0.0] * b.shape[0] if b_heights is None
          else np.asarray(b_heights, dtype=float).tolist())
    rows = a.tolist()
    cols = b.tolist()
    out = [[0.0] * len(cols) for _ in rows]
    for i, p in enumerate(rows):
        row = out[i]
        for j, q in enumerate(cols):
            acc = 0.0
            for x, y in zip(p, q):
                diff = x - y
                acc += diff * diff
            row[j] = math.sqrt(acc) + ah[i] + bh[j]
    return np.asarray(out, dtype=float)


def pairwise_distances(points: np.ndarray,
                       heights: np.ndarray | None = None,
                       *, backend: str | None = None) -> np.ndarray:
    """All pairwise distances of one row set; zero diagonal.

    With ``heights`` the result is ``planar + h_i + h_j`` off-diagonal —
    the height-vector distance rule — while the diagonal stays zero.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if resolve_backend(backend) == "numpy":
        diff = points[:, None, :] - points[None, :, :]
        d = np.linalg.norm(diff, axis=-1)
        if heights is not None:
            heights = np.asarray(heights, dtype=float)
            d = d + heights[:, None] + heights[None, :]
        np.fill_diagonal(d, 0.0)
        return d
    d = cross_distances(points, points, b_heights=heights, a_heights=heights,
                        backend="python")
    np.fill_diagonal(d, 0.0)
    return d
