"""repro.kernels — the numeric hot-path kernels behind a backend switch.

The control loop is dominated by three numeric kernels:

* **weighted k-means** assignment/update over the pooled ``k*m``
  micro-cluster pseudo-points (:mod:`repro.kernels.wkmeans`),
* **micro-cluster CF maintenance** — absorb/merge/split over
  ``(count, weight, linear_sum, square_sum)`` rows
  (:mod:`repro.kernels.cf`),
* **coordinate-space distances** for candidate ranking and
  migration-gain prediction (:mod:`repro.kernels.wkmeans` cross/pairwise
  distances, memoized by :mod:`repro.kernels.distcache`).

Every kernel exists in two implementations selected by a process-wide
*backend* switch:

``"numpy"``
    Vectorised array kernels — the production path.
``"python"``
    Scalar pure-Python loops — the reference oracle the differential
    test suite checks the vectorised path against, and the baseline the
    ``benchmarks/test_kernels.py`` speedup is measured from.

The switch defaults to ``numpy`` and can be set three ways, in
precedence order: an explicit ``backend=`` argument on a kernel call,
the process-wide :func:`set_backend` / :func:`use_backend` switch, and
the ``REPRO_KERNEL_BACKEND`` environment variable (read once at import,
so subprocess workers spawned by the parallel runner inherit it).

Both backends consume the *same* random stream: seeding, probability
draws and all control flow stay on ``numpy.random.Generator``; only the
arithmetic kernels switch.  That is what makes the differential suite
meaningful — same seed, same decisions, backend-independent.

Examples
--------
>>> from repro import kernels
>>> kernels.get_backend()
'numpy'
>>> with kernels.use_backend("python"):
...     kernels.get_backend()
'python'
>>> kernels.get_backend()
'numpy'
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
]

#: The recognised kernel backends.
BACKENDS = ("python", "numpy")


def _validated(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    return name


_backend = _validated(os.environ.get("REPRO_KERNEL_BACKEND", "numpy"))


def get_backend() -> str:
    """The process-wide default kernel backend."""
    return _backend


def set_backend(name: str) -> None:
    """Set the process-wide default kernel backend."""
    global _backend
    _backend = _validated(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch the process-wide kernel backend."""
    global _backend
    previous = _backend
    _backend = _validated(name)
    try:
        yield _backend
    finally:
        _backend = previous


def resolve_backend(backend: str | None) -> str:
    """An explicit ``backend=`` argument, or the process-wide default."""
    if backend is None:
        return _backend
    return _validated(backend)
