"""Memoized pairwise/cross distance matrices over coordinate space.

Candidate ranking, migration-gain prediction and the accuracy metrics
all keep asking for distance matrices over the *same* coordinate
arrays.  :class:`PairwiseDistanceCache` memoizes those matrices keyed by
the array *contents* (a digest of the raw bytes), so an in-place
coordinate update can never serve a stale matrix — the key changes with
the bytes.  Explicit :meth:`invalidate` exists for coordinate
refinement: a Vivaldi/RNP round moves every node, so each round's
matrices would otherwise pile up as dead entries until FIFO eviction
got to them.

Cache hits return a defensive copy — callers are free to scribble on
the result (mask columns with ``inf``, zero diagonals, …) without
poisoning the memo.  Hit/miss counts flow into the
``kernels.distcache.*`` counters of the active metrics registry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro import obs

__all__ = ["PairwiseDistanceCache"]


def _digest(*arrays: np.ndarray) -> bytes:
    h = hashlib.sha1()
    for arr in arrays:
        arr = np.ascontiguousarray(arr, dtype=float)
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.digest()


class PairwiseDistanceCache:
    """A small FIFO memo for distance matrices.

    Parameters
    ----------
    maxsize:
        Entries retained; the oldest is evicted first.  The working set
        of one experiment is a handful of coordinate arrays (all nodes,
        candidates, clients), so a small cache captures nearly all the
        reuse.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError("cache needs at least one slot")
        self.maxsize = maxsize
        self._entries: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Bumped by :meth:`invalidate`; cheap staleness marker for
        #: callers that want to key their own derived state off it.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key_arrays: tuple[np.ndarray, ...],
               compute: Callable[[], np.ndarray]) -> np.ndarray:
        """The memoized matrix for ``key_arrays``, computing on a miss."""
        key = _digest(*key_arrays)
        registry = obs.get_registry()
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if registry.enabled:
                registry.counter("kernels.distcache.hits").inc()
            return cached.copy()
        self.misses += 1
        if registry.enabled:
            registry.counter("kernels.distcache.misses").inc()
        with registry.phase("kernels.distcache.compute"):
            value = compute()
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value.copy()

    def invalidate(self) -> None:
        """Drop every entry (call after a coordinate-refinement round)."""
        self._entries.clear()
        self.version += 1

    def __repr__(self) -> str:
        return (f"PairwiseDistanceCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
