"""Batched micro-cluster CF kernels.

A micro-cluster batch is four parallel rows-first arrays —
``counts (m,)``, ``weights (m,)``, ``linear (m, d)``, ``square (m, d)``
— one row per cluster feature.  The kernels below implement the paper's
stream-maintenance rule (absorb within one standard deviation, else
spawn and merge the closest pair) over whole blocks of points, plus the
CF vector algebra (merge, split, deviations) the property suite
certifies.

Everything is deterministic and RNG-free: absorb/spawn/merge decisions
depend only on the inputs, and ties resolve to the lowest index in both
backends.  The numpy variants keep all per-point math on arrays; the
python variants are scalar loops — the reference oracle.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.kernels import resolve_backend

__all__ = [
    "deviations",
    "merge_rows",
    "split_row",
    "closest_pair",
    "absorb_stream",
]


def deviations(counts: np.ndarray, linear: np.ndarray, square: np.ndarray,
               *, backend: str | None = None) -> np.ndarray:
    """Per-row RMS deviation ``sqrt(max(sum(E[X^2] - E[X]^2), 0))``.

    The clamp matters: CF subtraction can leave ``square/count`` a few
    ulps below ``mean**2``, and a negative recovered variance would put
    a NaN radius into the absorption rule.
    """
    counts = np.asarray(counts, dtype=float)
    linear = np.atleast_2d(np.asarray(linear, dtype=float))
    square = np.atleast_2d(np.asarray(square, dtype=float))
    if resolve_backend(backend) == "numpy":
        mean = linear / counts[:, None]
        var = square / counts[:, None] - mean ** 2
        return np.sqrt(np.maximum(var.sum(axis=1), 0.0))
    out = []
    for n, ls, ss in zip(counts.tolist(), linear.tolist(), square.tolist()):
        total = 0.0
        for l, s in zip(ls, ss):
            mean = l / n
            total += s / n - mean * mean
        out.append(math.sqrt(max(total, 0.0)))
    return np.asarray(out, dtype=float)


def merge_rows(counts: np.ndarray, weights: np.ndarray, linear: np.ndarray,
               square: np.ndarray, keep: int, drop: int,
               *, backend: str | None = None
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fold row ``drop`` into row ``keep`` and delete it (CFs are additive).

    Deletion shifts the following rows up, preserving insertion order —
    the tie-break order of every later nearest-cluster search depends on
    it.
    """
    if keep == drop:
        raise ValueError("cannot merge a row into itself")
    counts = np.asarray(counts, dtype=float).copy()
    weights = np.asarray(weights, dtype=float).copy()
    linear = np.atleast_2d(np.asarray(linear, dtype=float)).copy()
    square = np.atleast_2d(np.asarray(square, dtype=float)).copy()
    if resolve_backend(backend) == "numpy":
        counts[keep] += counts[drop]
        weights[keep] += weights[drop]
        linear[keep] += linear[drop]
        square[keep] += square[drop]
    else:
        counts[keep] = counts[keep] + counts[drop]
        weights[keep] = weights[keep] + weights[drop]
        for dim in range(linear.shape[1]):
            linear[keep, dim] = float(linear[keep, dim]) + float(linear[drop, dim])
            square[keep, dim] = float(square[keep, dim]) + float(square[drop, dim])
    return (np.delete(counts, drop), np.delete(weights, drop),
            np.delete(linear, drop, axis=0), np.delete(square, drop, axis=0))


def split_row(count: float, weight: float, linear: np.ndarray,
              square: np.ndarray, *, backend: str | None = None
              ) -> tuple[tuple, tuple]:
    """Split one CF row into two halves that sum back to the original.

    The halves sit one recovered standard deviation apart along each
    dimension; counts split as evenly as integer counts allow, weight
    proportionally, and the second half is computed by subtraction.
    ``count`` and ``weight`` are conserved *exactly* (the weight split
    stays within Sterbenz's lemma); ``linear_sum`` round-trips to within
    one ulp and ``square_sum`` to within float error.  Deterministic —
    no RNG.
    """
    count = float(count)
    if count < 2:
        raise ValueError("cannot split a cluster with count < 2")
    linear = np.asarray(linear, dtype=float)
    square = np.asarray(square, dtype=float)
    if float(count).is_integer():
        n1 = float(math.ceil(count / 2))
    else:
        n1 = count / 2.0
    n2 = count - n1
    w1 = weight * (n1 / count)
    w2 = weight - w1
    if resolve_backend(backend) == "numpy":
        mean = linear / count
        var = np.maximum(square / count - mean ** 2, 0.0)
        sigma = np.sqrt(var)
        m1 = mean + sigma * (n2 / count)
        m2 = mean - sigma * (n1 / count)
        ls1 = n1 * m1
        ls2 = linear - ls1
        resid = np.maximum(square - n1 * m1 ** 2 - n2 * m2 ** 2, 0.0)
        ss1 = n1 * m1 ** 2 + resid * (n1 / count)
        ss2 = square - ss1
        return (n1, w1, ls1, ss1), (n2, w2, ls2, ss2)
    d = linear.size
    ls1 = [0.0] * d
    ss1 = [0.0] * d
    for dim in range(d):
        l = float(linear[dim])
        s = float(square[dim])
        mean = l / count
        var = max(s / count - mean * mean, 0.0)
        sigma = math.sqrt(var)
        m1 = mean + sigma * (n2 / count)
        m2 = mean - sigma * (n1 / count)
        ls1[dim] = n1 * m1
        resid = max(s - n1 * m1 * m1 - n2 * m2 * m2, 0.0)
        ss1[dim] = n1 * m1 * m1 + resid * (n1 / count)
    ls1 = np.asarray(ls1)
    ss1 = np.asarray(ss1)
    return (n1, w1, ls1, ss1), (n2, w2, linear - ls1, square - ss1)


def closest_pair(centroids: np.ndarray,
                 *, backend: str | None = None) -> tuple[int, int]:
    """Indices ``(keep, drop)`` of the two closest rows, ``keep < drop``.

    Ties resolve to the first pair in row-major order in both backends.
    """
    centroids = np.atleast_2d(np.asarray(centroids, dtype=float))
    if centroids.shape[0] < 2:
        raise ValueError("need at least two rows")
    if resolve_backend(backend) == "numpy":
        # Direct (m, m, d) broadcast: micro-cluster budgets are small
        # (m <= a few dozen), and the explicit difference keeps the pair
        # distances bitwise-identical to the scalar backend's
        # sum-of-squared-differences — the Gram-matrix trick would not.
        diff = centroids[:, None, :] - centroids[None, :, :]
        dist = np.einsum("ijk,ijk->ij", diff, diff)
        np.fill_diagonal(dist, np.inf)
        i, j = np.unravel_index(np.argmin(dist), dist.shape)
        return (int(i), int(j)) if i < j else (int(j), int(i))
    rows = centroids.tolist()
    best = (0, 1)
    best_val = math.inf
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            acc = 0.0
            for a, b in zip(rows[i], rows[j]):
                diff = a - b
                acc += diff * diff
            if acc < best_val:
                best_val = acc
                best = (i, j)
    return best


def absorb_stream(counts: np.ndarray, weights: np.ndarray,
                  linear: np.ndarray, square: np.ndarray,
                  points: np.ndarray, point_weights: np.ndarray,
                  radius_floor: float, max_clusters: int,
                  *, backend: str | None = None
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                             dict[str, int]]:
    """Run the stream-maintenance rule over a whole block of points.

    Starting from the given CF rows, each point in order is absorbed by
    the nearest cluster when it falls within ``max(deviation,
    radius_floor)`` of its centroid; otherwise it spawns a new cluster,
    and when the budget overflows the two closest clusters merge.
    Returns the updated rows plus ``{"spawned", "absorbed", "merged"}``
    event counts for the metrics registry.
    """
    registry = obs.get_registry()
    with registry.phase("kernels.cf.absorb_stream"):
        if resolve_backend(backend) == "numpy":
            return _absorb_stream_numpy(counts, weights, linear, square,
                                        points, point_weights,
                                        radius_floor, max_clusters)
        return _absorb_stream_python(counts, weights, linear, square,
                                     points, point_weights,
                                     radius_floor, max_clusters)


#: Points per distance-matrix chunk in the numpy absorb kernel.  Large
#: enough to amortize the per-chunk ``np.unique``; small enough that a
#: worst-case all-distinct chunk keeps the matrix and the per-mutation
#: column refresh cheap.
_ABSORB_CHUNK = 4096


def _absorb_stream_numpy(counts, weights, linear, square, points,
                         point_weights, radius_floor, max_clusters):
    # The stream rule is inherently sequential (each decision sees the
    # clusters as the previous point left them), so the loop over points
    # stays in python.  The trick that makes it fast anyway: real access
    # streams draw points from a tiny alphabet (client coordinates, each
    # repeated thousands of times), so the kernel maintains a
    # *unique-point x cluster* squared-distance matrix per chunk and
    # recomputes a single column only when a mutation actually moves
    # that centroid bitwise — absorbing a point into a cluster made of
    # identical points usually leaves ``linear_sum / count`` unchanged,
    # costing no numpy work at all.  Per-point work is then a row argmin
    # plus scalar CF updates on python floats: IEEE scalar arithmetic in
    # the same operation order is bitwise-identical to the numpy
    # elementwise pipeline it replaces and an order of magnitude cheaper
    # than per-point ufunc dispatch.
    #
    # Bitwise parity with the previous per-point einsum (and hence the
    # scalar oracle, for the dimensionalities the suite pins) holds
    # because every matrix entry is produced by the same elementwise
    # subtract-square and the same sequential reduction over the last
    # axis, whether computed as a chunk ("ijk,ijk->ij"), a column
    # ("ij,ij->i") or a row.
    points = np.atleast_2d(np.asarray(points, dtype=float))
    npts, d = points.shape
    cap = max_clusters + 1
    sqrt = math.sqrt
    cnt = np.asarray(counts, dtype=float).tolist()
    wts = np.asarray(weights, dtype=float).tolist()
    if cnt:
        ls = np.atleast_2d(np.asarray(linear, dtype=float)).tolist()
        ss = np.atleast_2d(np.asarray(square, dtype=float)).tolist()
    else:
        ls, ss = [], []
    ctr = [[l / c for l in row] for c, row in zip(cnt, ls)]

    def radius_of(j):
        c = cnt[j]
        total = 0.0
        for l, s in zip(ls[j], ss[j]):
            mean = l / c
            total += s / c - mean * mean
        return max(sqrt(max(total, 0.0)), radius_floor)

    n = len(cnt)
    rad = [radius_of(j) for j in range(n)]
    stats = {"spawned": 0, "absorbed": 0, "merged": 0}
    pw = np.asarray(point_weights, dtype=float).tolist()

    start = 0
    while start < npts:
        stop = min(start + _ABSORB_CHUNK, npts)
        block = points[start:stop]
        upts, uid = np.unique(block, axis=0, return_inverse=True)
        uid = uid.ravel().tolist()
        u = upts.shape[0]
        D = np.empty((u, cap))
        ctrbuf = np.empty((cap, d))  # staging row for column refreshes
        if n:
            ctrbuf[:n] = ctr
            diff = ctrbuf[None, :n, :] - upts[:, None, :]
            D[:, :n] = np.einsum("ijk,ijk->ij", diff, diff)
        scratch = np.empty((u, d))
        planar2 = d == 2  # the simulator's coordinate case, unrolled
        if planar2:
            ux = np.ascontiguousarray(upts[:, 0])
            uy = np.ascontiguousarray(upts[:, 1])
            t0 = np.empty(u)
            t1 = np.empty(u)

        def refresh_col(j):
            if planar2:
                # (c0-x)^2 + (c1-y)^2 elementwise — same products and
                # single-add reduction as the einsum form.
                c0, c1 = ctr[j]
                np.subtract(c0, ux, out=t0)
                np.multiply(t0, t0, out=t0)
                np.subtract(c1, uy, out=t1)
                np.multiply(t1, t1, out=t1)
                np.add(t0, t1, out=D[:, j])
            else:
                ctrbuf[j] = ctr[j]
                diffc = np.subtract(ctrbuf[j], upts, out=scratch)
                np.einsum("ij,ij->i", diffc, diffc, out=D[:, j])

        block_list = block.tolist()
        for i, p in enumerate(block_list):
            w = pw[start + i]
            if n == 0:
                cnt.append(1.0)
                wts.append(w)
                ls.append(list(p))
                ss.append([x * x for x in p])
                ctr.append(list(p))
                rad.append(radius_floor)  # singleton deviation is zero
                n = 1
                refresh_col(0)
                stats["spawned"] += 1
                continue
            row = D[uid[i], :n]
            nearest = int(row.argmin())
            if sqrt(row[nearest]) <= rad[nearest]:
                cnt[nearest] += 1.0
                wts[nearest] += w
                row_ls = ls[nearest]
                row_ss = ss[nearest]
                c = cnt[nearest]
                if planar2:
                    row_ls[0] = l0 = row_ls[0] + p[0]
                    row_ls[1] = l1 = row_ls[1] + p[1]
                    row_ss[0] = s0 = row_ss[0] + p[0] * p[0]
                    row_ss[1] = s1 = row_ss[1] + p[1] * p[1]
                    m0 = l0 / c
                    m1 = l1 / c
                    old = ctr[nearest]
                    if m0 != old[0] or m1 != old[1]:
                        ctr[nearest] = [m0, m1]
                        refresh_col(nearest)
                    # same sequential fold as radius_of, reusing means;
                    # the branches mirror max() exactly (incl. NaN).
                    total = s0 / c - m0 * m0
                    total += s1 / c - m1 * m1
                    if 0.0 > total:
                        total = 0.0
                    dev = sqrt(total)
                    rad[nearest] = (radius_floor if radius_floor > dev
                                    else dev)
                else:
                    for dim, x in enumerate(p):
                        row_ls[dim] += x
                        row_ss[dim] += x * x
                    new_ctr = [l / c for l in row_ls]
                    if new_ctr != ctr[nearest]:
                        ctr[nearest] = new_ctr
                        refresh_col(nearest)
                    rad[nearest] = radius_of(nearest)
                stats["absorbed"] += 1
                continue
            cnt.append(1.0)
            wts.append(w)
            ls.append(list(p))
            ss.append([x * x for x in p])
            ctr.append(list(p))
            rad.append(radius_floor)
            refresh_col(n)
            n += 1
            stats["spawned"] += 1
            if n > max_clusters:
                keep, drop = closest_pair(np.asarray(ctr), backend="numpy")
                cnt[keep] += cnt[drop]
                wts[keep] += wts[drop]
                row_ls = ls[keep]
                row_ss = ss[keep]
                drop_ls = ls[drop]
                drop_ss = ss[drop]
                for dim in range(d):
                    row_ls[dim] += drop_ls[dim]
                    row_ss[dim] += drop_ss[dim]
                for seq in (cnt, wts, ls, ss, ctr, rad):
                    del seq[drop]
                n -= 1
                D[:, drop:n] = D[:, drop + 1:n + 1]
                c = cnt[keep]
                new_ctr = [l / c for l in row_ls]
                if new_ctr != ctr[keep]:
                    ctr[keep] = new_ctr
                    refresh_col(keep)
                rad[keep] = radius_of(keep)
                stats["merged"] += 1
        start = stop
    return (np.asarray(cnt, dtype=float), np.asarray(wts, dtype=float),
            np.asarray(ls, dtype=float).reshape(n, d),
            np.asarray(ss, dtype=float).reshape(n, d),
            stats)


def _absorb_stream_python(counts, weights, linear, square, points,
                          point_weights, radius_floor, max_clusters):
    cnt = [float(c) for c in np.asarray(counts, dtype=float)]
    wts = [float(w) for w in np.asarray(weights, dtype=float)]
    ls = [list(map(float, row)) for row in np.atleast_2d(linear)] if len(cnt) else []
    ss = [list(map(float, row)) for row in np.atleast_2d(square)] if len(cnt) else []
    pts = np.atleast_2d(np.asarray(points, dtype=float)).tolist()
    pws = [float(w) for w in np.asarray(point_weights, dtype=float)]
    ctr = [[l / c for l in row] for c, row in zip(cnt, ls)]
    stats = {"spawned": 0, "absorbed": 0, "merged": 0}
    for p, w in zip(pts, pws):
        if not cnt:
            cnt.append(1.0)
            wts.append(w)
            ls.append(list(p))
            ss.append([x * x for x in p])
            ctr.append(list(p))
            stats["spawned"] += 1
            continue
        nearest, best_sq = 0, math.inf
        for idx, c in enumerate(ctr):
            acc = 0.0
            for a, b in zip(c, p):
                diff = a - b
                acc += diff * diff
            if acc < best_sq:
                nearest, best_sq = idx, acc
        distance = math.sqrt(best_sq)
        total = 0.0
        n_near = cnt[nearest]
        for l, s in zip(ls[nearest], ss[nearest]):
            mean = l / n_near
            total += s / n_near - mean * mean
        deviation = math.sqrt(max(total, 0.0))
        if distance <= max(deviation, radius_floor):
            cnt[nearest] += 1.0
            wts[nearest] += w
            row_ls, row_ss = ls[nearest], ss[nearest]
            for dim, x in enumerate(p):
                row_ls[dim] += x
                row_ss[dim] += x * x
            c = cnt[nearest]
            ctr[nearest] = [l / c for l in row_ls]
            stats["absorbed"] += 1
            continue
        cnt.append(1.0)
        wts.append(w)
        ls.append(list(p))
        ss.append([x * x for x in p])
        ctr.append(list(p))
        stats["spawned"] += 1
        if len(cnt) > max_clusters:
            keep, drop = closest_pair(np.asarray(ctr), backend="python")
            cnt[keep] += cnt[drop]
            wts[keep] += wts[drop]
            for dim in range(len(ls[keep])):
                ls[keep][dim] += ls[drop][dim]
                ss[keep][dim] += ss[drop][dim]
            for seq in (cnt, wts, ls, ss, ctr):
                del seq[drop]
            c = cnt[keep]
            ctr[keep] = [l / c for l in ls[keep]]
            stats["merged"] += 1
    return (np.asarray(cnt, dtype=float), np.asarray(wts, dtype=float),
            np.asarray(ls, dtype=float).reshape(len(cnt), -1),
            np.asarray(ss, dtype=float).reshape(len(cnt), -1),
            stats)
