"""Command-line interface: regenerate the paper's evaluation.

Usage::

    python -m repro figure1 [options]      # Figure 1 sweep
    python -m repro figure2 [options]      # Figure 2 sweep (headline)
    python -m repro figure3 [options]      # Figure 3 micro-cluster sweep
    python -m repro table2  [options]      # Table II cost comparison
    python -m repro coords  [options]      # coordinate-system ablation
    python -m repro sweep SPEC [options]   # declarative sweep (JSON/TOML)
    python -m repro chaos SCENARIO [opts]  # chaos run (faults vs baseline)
    python -m repro catalog [options]      # sharded multi-key catalog sweep
    python -m repro report  --out FILE     # full Markdown reproduction report
    python -m repro matrix  --out FILE     # dump the synthetic RTT matrix

Common options: ``--nodes`` ``--runs`` ``--coord-system`` ``--seed``
``--candidate-mode`` scale the experiment; ``--csv FILE`` exports the
series next to the printed table; ``--metrics-out FILE`` switches on
the :mod:`repro.obs` observability layer for the run and dumps its
metrics registry (counters, histograms, phase timers) plus a trace
summary as JSON (see ``docs/observability.md``); ``--profile`` wraps
the command in :mod:`cProfile` and prints the hottest cumulative
entries alongside the obs phase timers.  ``chaos`` additionally takes
``--engine {event,batched}`` to override the scenario's data-plane
engine (see ``docs/performance.md``).  Defaults reproduce
the paper's full-size setting (226 nodes, 30 runs, RNP coordinates).

Every experiment command executes through :mod:`repro.runner` and takes
``--jobs N`` (worker processes; default: one per CPU; ``1`` = serial),
``--cache-dir DIR`` (persist each finished job) and ``--resume`` (load
cached jobs instead of recomputing — an interrupted sweep restarted
with ``--resume`` only runs what is missing).  Results are bit-identical
at any ``--jobs`` level; see ``docs/runner.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import obs
from repro.analysis import (
    EvaluationSetting,
    format_figure,
    format_table2,
    run_coord_ablation,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)
from repro.analysis.charts import render_chart
from repro.analysis.export import figure_to_csv, metrics_to_json, table2_to_csv
from repro.analysis.reportgen import generate_report
from repro.net import PlanetLabParams, save_matrix, synthetic_planetlab_matrix

__all__ = ["main", "build_parser"]


#: Entries printed by ``--profile`` (cumulative-time order).
_PROFILE_TOP_N = 25


def _add_metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="enable observability and write the metrics "
                             "registry (and trace summary) as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top "
                             f"{_PROFILE_TOP_N} cumulative entries plus the "
                             "obs phase timers after the command")


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the experiment runner "
                             "(default: one per CPU; 1 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist finished jobs to this result cache")
    parser.add_argument("--resume", action="store_true",
                        help="reuse cached jobs from --cache-dir instead "
                             "of recomputing them")
    parser.add_argument("--chunk-size", type=int, default=None, metavar="K",
                        help="jobs per dispatched chunk (default: auto-tuned "
                             "from measured dispatch overhead)")


def _runner_kwargs(args: argparse.Namespace) -> dict:
    if args.resume and not args.cache_dir:
        raise SystemExit("error: --resume requires --cache-dir")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit("error: --chunk-size must be >= 1")
    return {"jobs": args.jobs, "cache_dir": args.cache_dir,
            "resume": args.resume, "chunk_size": args.chunk_size}


def _add_setting_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=226,
                        help="emulated nodes (paper: 226)")
    parser.add_argument("--runs", type=int, default=30,
                        help="runs per configuration (paper: 30)")
    parser.add_argument("--coord-system", default="rnp",
                        choices=("rnp", "vivaldi", "gnp", "mds"),
                        help="network coordinate system")
    parser.add_argument("--candidate-mode", default="dispersed",
                        choices=("dispersed", "uniform"),
                        help="how candidate data centers are drawn")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also export the result as CSV")
    parser.add_argument("--chart", action="store_true",
                        help="also draw an ASCII chart of the series")
    _add_metrics_arg(parser)
    _add_runner_args(parser)


def _setting(args: argparse.Namespace) -> EvaluationSetting:
    return EvaluationSetting(
        n_nodes=args.nodes, n_runs=args.runs,
        coord_system=args.coord_system,
        candidate_mode=args.candidate_mode, seed=args.seed)


def _figure_command(runner: Callable, **extra) -> Callable:
    def command(args: argparse.Namespace) -> int:
        result = runner(_setting(args), **extra, **_runner_kwargs(args))
        print(format_figure(result))
        if getattr(args, "chart", False):
            print()
            print(render_chart(result))
        if args.csv:
            figure_to_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
        return 0
    return command


def _cmd_figure3(args: argparse.Namespace) -> int:
    result = run_figure3(_setting(args), **_runner_kwargs(args))
    print(format_figure(result))
    if getattr(args, "chart", False):
        print()
        print(render_chart(result))
    if args.csv:
        figure_to_csv(result, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = run_table2(n_accesses_list=tuple(args.accesses), k=args.k,
                      m=args.micro_clusters, seed=args.seed,
                      **_runner_kwargs(args))
    print(format_table2(rows))
    if args.csv:
        table2_to_csv(rows, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_coords(args: argparse.Namespace) -> int:
    result = run_coord_ablation(_setting(args), **_runner_kwargs(args))
    print(format_figure(result))
    if args.csv:
        figure_to_csv(result, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = generate_report(_setting(args), **_runner_kwargs(args))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import load_sweep_spec, run_sweep

    spec = load_sweep_spec(args.spec)
    result = run_sweep(spec, **_runner_kwargs(args))
    if spec.kind == "table2":
        print(format_table2(result))
        if args.csv:
            table2_to_csv(result, args.csv)
            print(f"\nwrote {args.csv}")
        return 0
    print(format_figure(result))
    if getattr(args, "chart", False):
        print()
        print(render_chart(result))
    if args.csv:
        figure_to_csv(result, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.chaos import (
        chaos_summary_json,
        format_chaos,
        load_scenario,
        run_chaos,
    )

    scenario = load_scenario(args.scenario)
    if args.engine is not None and args.engine != scenario.engine:
        scenario = replace(scenario, engine=args.engine)
    summary = run_chaos(scenario, **_runner_kwargs(args))
    print(format_chaos(summary))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(chaos_summary_json(summary) + "\n")
        print(f"\nwrote {args.out}")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.catalog import catalog_to_csv, format_catalog, run_catalog_sweep

    rows = run_catalog_sweep(
        args.keys, args.shards, grouping=args.grouping,
        group_size=args.group_size, n_nodes=args.nodes, n_dc=args.dc,
        seed=args.seed, k=args.k, rate_per_second=args.rate,
        duration_ms=args.duration_ms, engine=args.engine,
        epoch_period_ms=args.epoch_period_ms,
        epoch_stagger=args.epoch_stagger,
        max_epoch_moves=args.max_epoch_moves,
        strategy=args.strategy,
        service_model=args.service_model,
        service_ms=args.service_ms,
        service_sigma=args.service_sigma,
        queue_capacity=args.queue_capacity,
        **_runner_kwargs(args))
    print(format_catalog(rows))
    if args.csv:
        catalog_to_csv(rows, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=args.nodes), seed=args.seed)
    save_matrix(matrix, args.out)
    print(f"wrote {matrix.n}x{matrix.n} RTT matrix to {args.out} "
          f"(median {matrix.median():.1f} ms)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Towards Optimal Data Replication Across "
                    "Data Centers' (ICDCS 2011)")
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("figure1", help="delay vs number of data centers")
    _add_setting_args(p1)
    p1.set_defaults(func=_figure_command(run_figure1))

    p2 = sub.add_parser("figure2", help="delay vs degree of replication")
    _add_setting_args(p2)
    p2.set_defaults(func=_figure_command(run_figure2))

    p3 = sub.add_parser("figure3", help="delay vs micro-cluster budget")
    _add_setting_args(p3)
    p3.set_defaults(func=_cmd_figure3)

    pt = sub.add_parser("table2", help="online vs offline clustering cost")
    pt.add_argument("--accesses", type=int, nargs="+",
                    default=[1_000, 10_000, 100_000],
                    help="access volumes to measure")
    pt.add_argument("--k", type=int, default=3, help="degree of replication")
    pt.add_argument("--micro-clusters", type=int, default=100,
                    help="micro-clusters per replica (paper example: 100)")
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--csv", default=None, metavar="FILE")
    _add_metrics_arg(pt)
    _add_runner_args(pt)
    pt.set_defaults(func=_cmd_table2)

    pc = sub.add_parser("coords", help="coordinate-system ablation")
    _add_setting_args(pc)
    pc.set_defaults(func=_cmd_coords)

    pr = sub.add_parser("report",
                        help="full reproduction report (all artifacts)")
    _add_setting_args(pr)
    pr.add_argument("--out", default=None, metavar="FILE",
                    help="write the Markdown report here (default: stdout)")
    pr.set_defaults(func=_cmd_report)

    ps = sub.add_parser("sweep",
                        help="run a declarative sweep spec (JSON/TOML)")
    ps.add_argument("spec", metavar="SPEC",
                    help="sweep spec file (.toml or .json); see "
                         "examples/sweeps/ and docs/runner.md")
    ps.add_argument("--csv", default=None, metavar="FILE",
                    help="also export the result as CSV")
    ps.add_argument("--chart", action="store_true",
                    help="also draw an ASCII chart (figure sweeps only)")
    _add_metrics_arg(ps)
    _add_runner_args(ps)
    ps.set_defaults(func=_cmd_sweep)

    pz = sub.add_parser("chaos",
                        help="run a chaos scenario against the live stack")
    pz.add_argument("scenario", metavar="SCENARIO",
                    help="chaos scenario file (.toml or .json); see "
                         "examples/chaos/ and docs/chaos.md")
    pz.add_argument("--out", default=None, metavar="FILE",
                    help="also write the summary as canonical JSON")
    pz.add_argument("--engine", default=None, choices=("event", "batched"),
                    help="override the scenario's data-plane engine "
                         "(default: the scenario's [workload] engine)")
    _add_metrics_arg(pz)
    _add_runner_args(pz)
    pz.set_defaults(func=_cmd_chaos)

    pg = sub.add_parser("catalog",
                        help="sweep a sharded multi-key catalog over "
                             "keyspace and shard-count grids")
    pg.add_argument("--keys", type=int, nargs="+", default=[100, 1_000],
                    metavar="N", help="keyspace sizes to sweep")
    pg.add_argument("--shards", type=int, nargs="+", default=[1, 4, 16],
                    metavar="N", help="shard counts to sweep")
    pg.add_argument("--grouping", default="chunked",
                    choices=("none", "chunked", "audience"),
                    help="how keys fold into placement groups")
    pg.add_argument("--group-size", type=int, default=10,
                    help="keys per group for --grouping chunked")
    pg.add_argument("--nodes", type=int, default=64,
                    help="emulated nodes in the synthetic world")
    pg.add_argument("--dc", type=int, default=12,
                    help="candidate data centers")
    pg.add_argument("--seed", type=int, default=0, help="master seed")
    pg.add_argument("--k", type=int, default=3, help="degree of replication")
    pg.add_argument("--rate", type=float, default=200.0,
                    help="aggregate request rate (per second)")
    pg.add_argument("--duration-ms", type=float, default=60_000.0,
                    help="simulated horizon per cell")
    pg.add_argument("--engine", default="batched",
                    choices=("event", "batched"),
                    help="data-plane engine (batched scales to large "
                         "keyspaces)")
    pg.add_argument("--epoch-period-ms", type=float, default=10_000.0,
                    help="placement epoch period per unit")
    pg.add_argument("--epoch-stagger", type=float, default=1.0,
                    help="fraction of the period over which per-unit "
                         "epoch phases spread (0..1)")
    pg.add_argument("--max-epoch-moves", type=int, default=None,
                    metavar="N",
                    help="global per-window migration budget across "
                         "all shards")
    pg.add_argument("--strategy", default="nearest",
                    choices=("nearest", "least-pending", "c3"),
                    help="replica selection strategy clients use")
    pg.add_argument("--service-model", default="none",
                    choices=("none", "deterministic", "lognormal"),
                    help="per-server service-time model (none keeps "
                         "instant servers)")
    pg.add_argument("--service-ms", type=float, default=0.0,
                    help="service time in ms (deterministic), or the "
                         "lognormal median")
    pg.add_argument("--service-sigma", type=float, default=0.5,
                    help="lognormal log-space standard deviation")
    pg.add_argument("--queue-capacity", type=int, default=None,
                    metavar="N",
                    help="bound each server's FIFO queue; excess reads "
                         "are rejected and counted")
    pg.add_argument("--csv", default=None, metavar="FILE",
                    help="also export the rows as CSV")
    _add_metrics_arg(pg)
    _add_runner_args(pg)
    pg.set_defaults(func=_cmd_catalog)

    pm = sub.add_parser("matrix", help="dump the synthetic RTT matrix")
    pm.add_argument("--nodes", type=int, default=226)
    pm.add_argument("--seed", type=int, default=0)
    pm.add_argument("--out", required=True, metavar="FILE",
                    help=".npz or text destination")
    _add_metrics_arg(pm)
    pm.set_defaults(func=_cmd_matrix)

    return parser


def _profiled(func: Callable) -> Callable:
    """Wrap a command in cProfile; print top cumulative entries after."""
    def wrapped(args: argparse.Namespace) -> int:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        try:
            return profiler.runcall(func, args)
        finally:
            print(f"\n--- cProfile: top {_PROFILE_TOP_N} by cumulative "
                  "time ---")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(_PROFILE_TOP_N)
    return wrapped


def _format_phase_timers(registry) -> str:
    """The obs phase timers as a small table (for ``--profile``)."""
    timers = registry.snapshot().get("phase_timers", {})
    if not timers:
        return "--- obs phase timers: none recorded ---"
    lines = ["--- obs phase timers ---",
             f"{'phase':<36} {'calls':>8} {'total s':>10} {'mean s':>10}"]
    for name in sorted(timers):
        timer = timers[name]
        lines.append(f"{name:<36} {timer['calls']:>8} "
                     f"{timer['total_seconds']:>10.3f} "
                     f"{timer['mean_seconds']:>10.4f}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code.

    With ``--metrics-out FILE``, observability is switched on for the
    duration of the command and the resulting metrics registry (plus a
    trace summary) is written to ``FILE`` as JSON — even when the
    command itself fails, so a crashed run still leaves its telemetry.
    ``--profile`` additionally wraps the command in :mod:`cProfile` and
    prints the hottest cumulative entries next to the obs phase timers.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    profile = getattr(args, "profile", False)
    command = _profiled(args.func) if profile else args.func
    if not metrics_out and not profile:
        return command(args)
    with obs.observe() as (registry, tracer):
        try:
            code = command(args)
        finally:
            if profile:
                print(_format_phase_timers(registry))
            if metrics_out:
                metrics_to_json(registry, metrics_out, tracer=tracer)
    if metrics_out:
        print(f"wrote {metrics_out}")
    return code


if __name__ == "__main__":
    sys.exit(main())
