"""Migration cost/benefit policy (Section III-C).

The paper migrates replicas only when "the gain in the quality of
service (e.g., reduction in latency) compared to the migration cost is
higher than a certain threshold", citing Amazon's $0.1/GB transfer
pricing.  :class:`MigrationCostModel` prices a proposed move;
:class:`MigrationPolicy` turns predicted delays plus that price into a
go/no-go verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MigrationCostModel", "MigrationPolicy", "MigrationVerdict",
           "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry with exponential backoff + jitter for transfers.

    Applied by the store to migration transfers and micro-cluster
    summary shipping: an unacknowledged transfer is retried after an
    exponentially growing backoff, and abandoned (rolled back) once the
    attempt budget is exhausted.  Jitter is drawn from a simulator RNG
    stream, so runs remain bit-deterministic.

    Parameters
    ----------
    timeout_ms:
        How long to wait for a transfer acknowledgement before the
        attempt is considered failed.
    max_attempts:
        Total attempts (first try included) before giving up.
    base_backoff_ms / backoff_factor / max_backoff_ms:
        Attempt *i* (1-based) waits ``base * factor**(i-1)`` ms after
        its timeout, capped at ``max_backoff_ms``.
    jitter:
        Relative jitter: the backoff is scaled by a uniform draw from
        ``[1 - jitter, 1 + jitter]``.
    """

    timeout_ms: float = 5_000.0
    max_attempts: int = 4
    base_backoff_ms: float = 500.0
    backoff_factor: float = 2.0
    max_backoff_ms: float = 30_000.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def backoff_ms(self, attempt: int,
                   rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = min(self.base_backoff_ms * self.backoff_factor ** (attempt - 1),
                    self.max_backoff_ms)
        if self.jitter > 0 and rng is not None:
            delay *= float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return delay


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices replica movement.

    Parameters
    ----------
    dollars_per_gb:
        Wide-area transfer price (the paper quotes $0.1/GB on EC2).
    object_size_gb:
        Size of the replicated object (or object group).
    """

    dollars_per_gb: float = 0.10
    object_size_gb: float = 1.0

    #: Examples
    #: --------
    #: >>> model = MigrationCostModel(dollars_per_gb=0.10, object_size_gb=5.0)
    #: >>> model.cost_of_move((1, 2), (2, 3))       # one new site, 5 GB
    #: 0.5

    def __post_init__(self) -> None:
        if self.dollars_per_gb < 0:
            raise ValueError("price must be non-negative")
        if self.object_size_gb <= 0:
            raise ValueError("object size must be positive")

    def cost_of_move(self, current: Sequence[int], proposed: Sequence[int]) -> float:
        """Dollar cost of migrating from ``current`` to ``proposed`` sites.

        Each replica created at a site not already holding one is a full
        object transfer; dropped replicas are free.
        """
        return (self.transfers_of_move(current, proposed)
                * self.dollars_per_gb * self.object_size_gb)

    def transfers_of_move(self, current: Sequence[int],
                          proposed: Sequence[int]) -> int:
        """Number of full object transfers the move requires.

        The per-epoch burst metric behind the controller's
        ``max_epoch_moves`` cap: every proposed site not already holding
        a replica must be seeded with one object-sized transfer.
        """
        return len(set(proposed) - set(current))


@dataclass(frozen=True)
class MigrationVerdict:
    """Outcome of a migration decision, kept for reporting."""

    migrate: bool
    gain_ms: float
    relative_gain: float
    cost_dollars: float
    reason: str


class MigrationPolicy:
    """Decides whether a proposed placement is worth migrating to.

    Parameters
    ----------
    min_relative_gain:
        Required relative reduction in predicted mean delay, e.g. ``0.05``
        demands a 5 % improvement.  This is the paper's "threshold"; it
        suppresses oscillation between near-equivalent placements.
    min_absolute_gain_ms:
        Additional absolute floor (milliseconds) so tiny delays don't
        trigger moves on noise.
    max_cost_dollars:
        Optional hard budget per migration; ``None`` disables it.
    """

    def __init__(self, min_relative_gain: float = 0.05,
                 min_absolute_gain_ms: float = 1.0,
                 max_cost_dollars: float | None = None) -> None:
        if min_relative_gain < 0:
            raise ValueError("relative gain threshold must be non-negative")
        if min_absolute_gain_ms < 0:
            raise ValueError("absolute gain threshold must be non-negative")
        if max_cost_dollars is not None and max_cost_dollars < 0:
            raise ValueError("cost budget must be non-negative")
        self.min_relative_gain = min_relative_gain
        self.min_absolute_gain_ms = min_absolute_gain_ms
        self.max_cost_dollars = max_cost_dollars

    def decide(self, current_delay_ms: float, proposed_delay_ms: float,
               cost_model: MigrationCostModel,
               current_sites: Sequence[int],
               proposed_sites: Sequence[int]) -> MigrationVerdict:
        """Compare predicted delays and price; return the verdict."""
        if current_delay_ms < 0 or proposed_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        gain = current_delay_ms - proposed_delay_ms
        relative = gain / current_delay_ms if current_delay_ms > 0 else 0.0
        cost = cost_model.cost_of_move(current_sites, proposed_sites)

        if set(proposed_sites) == set(current_sites):
            return MigrationVerdict(False, gain, relative, 0.0,
                                    "placement unchanged")
        if gain < self.min_absolute_gain_ms:
            return MigrationVerdict(False, gain, relative, cost,
                                    "absolute gain below threshold")
        if relative < self.min_relative_gain:
            return MigrationVerdict(False, gain, relative, cost,
                                    "relative gain below threshold")
        if self.max_cost_dollars is not None and cost > self.max_cost_dollars:
            return MigrationVerdict(False, gain, relative, cost,
                                    "migration cost over budget")
        return MigrationVerdict(True, gain, relative, cost, "gain justifies move")
