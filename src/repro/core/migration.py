"""Migration cost/benefit policy (Section III-C).

The paper migrates replicas only when "the gain in the quality of
service (e.g., reduction in latency) compared to the migration cost is
higher than a certain threshold", citing Amazon's $0.1/GB transfer
pricing.  :class:`MigrationCostModel` prices a proposed move;
:class:`MigrationPolicy` turns predicted delays plus that price into a
go/no-go verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["MigrationCostModel", "MigrationPolicy", "MigrationVerdict"]


@dataclass(frozen=True)
class MigrationCostModel:
    """Prices replica movement.

    Parameters
    ----------
    dollars_per_gb:
        Wide-area transfer price (the paper quotes $0.1/GB on EC2).
    object_size_gb:
        Size of the replicated object (or object group).
    """

    dollars_per_gb: float = 0.10
    object_size_gb: float = 1.0

    #: Examples
    #: --------
    #: >>> model = MigrationCostModel(dollars_per_gb=0.10, object_size_gb=5.0)
    #: >>> model.cost_of_move((1, 2), (2, 3))       # one new site, 5 GB
    #: 0.5

    def __post_init__(self) -> None:
        if self.dollars_per_gb < 0:
            raise ValueError("price must be non-negative")
        if self.object_size_gb <= 0:
            raise ValueError("object size must be positive")

    def cost_of_move(self, current: Sequence[int], proposed: Sequence[int]) -> float:
        """Dollar cost of migrating from ``current`` to ``proposed`` sites.

        Each replica created at a site not already holding one is a full
        object transfer; dropped replicas are free.
        """
        new_sites = set(proposed) - set(current)
        return len(new_sites) * self.dollars_per_gb * self.object_size_gb


@dataclass(frozen=True)
class MigrationVerdict:
    """Outcome of a migration decision, kept for reporting."""

    migrate: bool
    gain_ms: float
    relative_gain: float
    cost_dollars: float
    reason: str


class MigrationPolicy:
    """Decides whether a proposed placement is worth migrating to.

    Parameters
    ----------
    min_relative_gain:
        Required relative reduction in predicted mean delay, e.g. ``0.05``
        demands a 5 % improvement.  This is the paper's "threshold"; it
        suppresses oscillation between near-equivalent placements.
    min_absolute_gain_ms:
        Additional absolute floor (milliseconds) so tiny delays don't
        trigger moves on noise.
    max_cost_dollars:
        Optional hard budget per migration; ``None`` disables it.
    """

    def __init__(self, min_relative_gain: float = 0.05,
                 min_absolute_gain_ms: float = 1.0,
                 max_cost_dollars: float | None = None) -> None:
        if min_relative_gain < 0:
            raise ValueError("relative gain threshold must be non-negative")
        if min_absolute_gain_ms < 0:
            raise ValueError("absolute gain threshold must be non-negative")
        if max_cost_dollars is not None and max_cost_dollars < 0:
            raise ValueError("cost budget must be non-negative")
        self.min_relative_gain = min_relative_gain
        self.min_absolute_gain_ms = min_absolute_gain_ms
        self.max_cost_dollars = max_cost_dollars

    def decide(self, current_delay_ms: float, proposed_delay_ms: float,
               cost_model: MigrationCostModel,
               current_sites: Sequence[int],
               proposed_sites: Sequence[int]) -> MigrationVerdict:
        """Compare predicted delays and price; return the verdict."""
        if current_delay_ms < 0 or proposed_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        gain = current_delay_ms - proposed_delay_ms
        relative = gain / current_delay_ms if current_delay_ms > 0 else 0.0
        cost = cost_model.cost_of_move(current_sites, proposed_sites)

        if set(proposed_sites) == set(current_sites):
            return MigrationVerdict(False, gain, relative, 0.0,
                                    "placement unchanged")
        if gain < self.min_absolute_gain_ms:
            return MigrationVerdict(False, gain, relative, cost,
                                    "absolute gain below threshold")
        if relative < self.min_relative_gain:
            return MigrationVerdict(False, gain, relative, cost,
                                    "relative gain below threshold")
        if self.max_cost_dollars is not None and cost > self.max_cost_dollars:
            return MigrationVerdict(False, gain, relative, cost,
                                    "migration cost over budget")
        return MigrationVerdict(True, gain, relative, cost, "gain justifies move")
