"""Cost accounting behind Table II (Section III-D).

The paper compares the online summary scheme against offline clustering
on two axes:

==================  =================  ===================
overhead            online             offline
==================  =================  ===================
bandwidth           O(k·m)             O(n)
computation         O((km)^k log(km))  O(n^k log n)
==================  =================  ===================

where *k* is the degree of replication, *m* the micro-cluster budget per
replica and *n* the number of client accesses recorded.  This module
provides both the **analytic** formulas (for the table itself) and a
:class:`CostTally` used by the controller and benchmarks to report the
**measured** bytes and wall-clock time of each approach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "online_bandwidth_bytes",
    "offline_bandwidth_bytes",
    "online_compute_ops",
    "offline_compute_ops",
    "CostTally",
]

#: Bytes for one micro-cluster on the wire: count + weight + two float64
#: vectors of dimension ``dim``.  Matches ClusterFeature.wire_size_bytes.
def _micro_cluster_bytes(dim: int) -> int:
    return 16 + 2 * 8 * dim


def online_bandwidth_bytes(k: int, m: int, dim: int = 3) -> int:
    """Bytes shipped per placement epoch by the online scheme: O(k·m).

    Each of the ``k`` replica holders ships at most ``m`` micro-clusters.
    """
    if k < 1 or m < 1 or dim < 1:
        raise ValueError("k, m and dim must be positive")
    return k * m * _micro_cluster_bytes(dim)


def offline_bandwidth_bytes(n_accesses: int, dim: int = 3) -> int:
    """Bytes shipped per epoch by offline clustering: O(n).

    The coordinates of every recorded access must reach the central
    server (one float64 vector each).
    """
    if n_accesses < 0 or dim < 1:
        raise ValueError("n_accesses must be non-negative, dim positive")
    return n_accesses * 8 * dim


def online_compute_ops(k: int, m: int) -> float:
    """Clustering work of the online scheme: O((km)^k log(km)).

    This is the paper's cited complexity for k-means over the ``k·m``
    pseudo-points (via its reference [23]).
    """
    if k < 1 or m < 1:
        raise ValueError("k and m must be positive")
    km = k * m
    return float(km ** k * math.log(max(km, 2)))


def offline_compute_ops(n_accesses: int, k: int) -> float:
    """Clustering work of the offline scheme: O(n^k log n)."""
    if n_accesses < 1 or k < 1:
        raise ValueError("n_accesses and k must be positive")
    return float(n_accesses ** k * math.log(max(n_accesses, 2)))


@dataclass
class CostTally:
    """Measured costs accumulated while a strategy runs.

    ``summary_bytes`` counts placement-control traffic (micro-cluster or
    raw-coordinate shipping); ``clustering_seconds`` the wall-clock time
    spent inside clustering calls; ``migrations`` and
    ``migration_dollars`` the executed data movements.
    """

    summary_bytes: int = 0
    clustering_seconds: float = 0.0
    migrations: int = 0
    migration_dollars: float = 0.0
    epochs: int = 0
    notes: list[str] = field(default_factory=list)

    def merge(self, other: "CostTally") -> "CostTally":
        """Combine two tallies (e.g. across simulation runs)."""
        return CostTally(
            summary_bytes=self.summary_bytes + other.summary_bytes,
            clustering_seconds=self.clustering_seconds + other.clustering_seconds,
            migrations=self.migrations + other.migrations,
            migration_dollars=self.migration_dollars + other.migration_dollars,
            epochs=self.epochs + other.epochs,
            notes=self.notes + other.notes,
        )
