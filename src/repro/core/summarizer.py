"""Per-replica user coordinate summaries (Section III-B).

Every server holding a data replica keeps a :class:`ReplicaAccessSummary`.
On each client access it folds the client's network coordinates (and the
bytes exchanged) into at most *m* micro-clusters; the summary can then be
snapshotted and shipped to the coordinator in ``m × wire_size`` bytes —
the whole point of the technique is that this is independent of the
number of accesses.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.stream import ClusterFeature, OnlineClusterer

__all__ = ["ReplicaAccessSummary"]


class ReplicaAccessSummary:
    """Online summary of the users that recently accessed one replica.

    Parameters
    ----------
    max_micro_clusters:
        The paper's *m* — the micro-cluster budget for this replica.
    radius_floor:
        Minimum absorption radius in coordinate units (milliseconds);
        see :class:`~repro.clustering.stream.OnlineClusterer`.
    decay:
        Optional exponential decay in ``(0, 1]`` applied to all cluster
        statistics at every :meth:`age` call.  ``1.0`` (default) keeps
        the paper's plain accumulate-then-reset behaviour; smaller values
        let a long-lived summary track shifting populations, which the
        controller uses between placement epochs.
    backend:
        Kernel backend for the micro-cluster maths (``"python"`` or
        ``"numpy"``); ``None`` follows the process-wide
        :mod:`repro.kernels` switch.
    """

    def __init__(self, max_micro_clusters: int = 100,
                 radius_floor: float = 5.0, decay: float = 1.0,
                 backend: str | None = None) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        self._clusterer = OnlineClusterer(max_micro_clusters, radius_floor,
                                          backend=backend)
        self.decay = decay
        self.accesses = 0
        self.bytes_served = 0.0

    # ------------------------------------------------------------------
    # Recording accesses
    # ------------------------------------------------------------------
    def record_access(self, client_coords: np.ndarray,
                      bytes_exchanged: float = 1.0) -> None:
        """Fold one client access into the summary.

        ``client_coords`` are the client's network coordinates at access
        time (the planar part; heights carry no clustering information
        and callers should strip them — see
        :meth:`ReplicationController.clustering_coords`).
        """
        if bytes_exchanged < 0:
            raise ValueError("bytes exchanged must be non-negative")
        self._clusterer.add(np.asarray(client_coords, dtype=float),
                            weight=bytes_exchanged)
        self.accesses += 1
        self.bytes_served += bytes_exchanged

    def record_batch(self, client_coords: np.ndarray,
                     bytes_exchanged: np.ndarray | None = None) -> None:
        """Fold a whole block of accesses into the summary at once.

        Equivalent to calling :meth:`record_access` per row of
        ``client_coords`` (in order), but the maintenance rule runs
        inside the batched :func:`repro.kernels.cf.absorb_stream`
        kernel.  ``bytes_exchanged`` is a per-row weight vector; ``None``
        means one unit per access.
        """
        points = np.atleast_2d(np.asarray(client_coords, dtype=float))
        n = points.shape[0]
        if n == 0:
            return
        if bytes_exchanged is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(bytes_exchanged, dtype=float)
            if weights.shape != (n,):
                raise ValueError(f"expected {n} byte counts, "
                                 f"got shape {weights.shape}")
            if np.any(weights < 0):
                raise ValueError("bytes exchanged must be non-negative")
        self._clusterer.extend(points, weights)
        self.accesses += n
        self.bytes_served += float(weights.sum())

    def age(self) -> None:
        """Apply one step of exponential decay to the retained statistics.

        With ``decay == 1`` this is a no-op.  Counts are scaled rather
        than truncated so centroids and deviations are unchanged; clusters
        whose decayed count drops below a small threshold are dropped.
        """
        if self.decay == 1.0:
            return
        survivors = []
        for cluster in self._clusterer.clusters:
            cluster.count = cluster.count * self.decay
            cluster.weight *= self.decay
            cluster.linear_sum *= self.decay
            cluster.square_sum *= self.decay
            if cluster.count >= 0.05:
                survivors.append(cluster)
        self._clusterer.replace_clusters(survivors)

    # ------------------------------------------------------------------
    # Introspection / shipping
    # ------------------------------------------------------------------
    @property
    def micro_clusters(self) -> list[ClusterFeature]:
        """Live view of the current micro-clusters."""
        return self._clusterer.clusters

    def __len__(self) -> int:
        return len(self._clusterer)

    @property
    def max_micro_clusters(self) -> int:
        """The budget *m*."""
        return self._clusterer.max_clusters

    def snapshot(self) -> list[ClusterFeature]:
        """Deep copies of the micro-clusters, ready to ship."""
        return self._clusterer.snapshot()

    def wire_size_bytes(self) -> int:
        """Bytes needed to ship the snapshot to the coordinator."""
        return sum(c.wire_size_bytes for c in self._clusterer.clusters)

    def reset(self) -> None:
        """Start a fresh summary window (after a placement epoch)."""
        self._clusterer.reset()
        self.accesses = 0
        self.bytes_served = 0.0
