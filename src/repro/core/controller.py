"""The replica placement control loop (Section III-C).

A :class:`ReplicationController` owns, for each current replica site, a
:class:`~repro.core.summarizer.ReplicaAccessSummary`.  The storage layer
reports every client access to it; periodically (the paper suggests
daily or weekly epochs) :meth:`run_epoch` gathers the summaries, runs
Algorithm 1 to propose new sites, prices the move, and migrates only if
the :class:`~repro.core.migration.MigrationPolicy` approves.  The
controller can also adapt the degree of replication *k* to demand.

The controller is deliberately simulator-agnostic: it neither schedules
events nor sends messages.  :class:`~repro.store.kvstore.ReplicatedStore`
wires it to the simulator, charges the summary shipping to the network
and calls :meth:`run_epoch` from a periodic process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.clustering.stream import ClusterFeature
from repro.coords.space import EuclideanSpace
from repro.core.costs import CostTally
from repro.core.macro import estimate_average_delay, place_replicas
from repro.core.migration import MigrationCostModel, MigrationPolicy, MigrationVerdict
from repro.core.readwrite import estimate_rw_cost, place_replicas_rw
from repro.core.summarizer import ReplicaAccessSummary
from repro.net.domains import FailureDomains
from repro.placement.availability import bound_transfers, refine_for_availability

__all__ = ["ControllerConfig", "EpochReport", "ReplicationController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the control loop.

    Attributes
    ----------
    k:
        Initial degree of replication.
    max_micro_clusters:
        Per-replica micro-cluster budget *m*.
    radius_floor:
        Micro-cluster absorption floor (coordinate units = ms).
    use_bytes_weight:
        Weight macro-clustering by bytes instead of access counts.
    adaptive_k / k_min / k_max:
        Enable demand-driven adjustment of *k* within ``[k_min, k_max]``.
    demand_high / demand_low:
        Accesses per epoch above/below which *k* grows/shrinks by one.
    summary_decay:
        Exponential decay applied to summaries at each epoch instead of a
        full reset (``None`` reproduces the paper's reset behaviour).
    write_aware:
        Summarize writes separately and place with
        :func:`~repro.core.readwrite.place_replicas_rw`, pricing update
        fan-out between replicas.  ``False`` (default) reproduces the
        paper's read-mostly model, folding all accesses into one stream.
    availability_lambda:
        Weight λ (milliseconds per unit of pairwise co-failure risk) of
        the availability term added to the placement objective when the
        controller was built with a
        :class:`~repro.net.domains.FailureDomains` annotation.  ``0.0``
        (the default) reproduces the paper's latency-only decisions
        bit-for-bit — no refinement runs, no objective term is added.
    max_epoch_moves:
        Optional cap on the number of *new* replica sites one epoch may
        adopt, bounding the per-epoch migration burst a swing toward
        safer domains could otherwise demand.  ``None`` leaves bursts
        unbounded (the paper's behaviour).
    """

    k: int = 3
    max_micro_clusters: int = 100
    radius_floor: float = 5.0
    use_bytes_weight: bool = False
    adaptive_k: bool = False
    k_min: int = 1
    k_max: int = 7
    demand_high: int = 10_000
    demand_low: int = 100
    summary_decay: float | None = None
    write_aware: bool = False
    availability_lambda: float = 0.0
    max_epoch_moves: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.max_micro_clusters < 1:
            raise ValueError("micro-cluster budget must be positive")
        if self.adaptive_k:
            if not 1 <= self.k_min <= self.k <= self.k_max:
                raise ValueError("need k_min <= k <= k_max with k_min >= 1")
            if self.demand_low >= self.demand_high:
                raise ValueError("demand_low must be below demand_high")
        if self.summary_decay is not None and not 0.0 < self.summary_decay <= 1.0:
            raise ValueError("summary decay must lie in (0, 1]")
        if self.availability_lambda < 0:
            raise ValueError("availability lambda must be non-negative")
        if self.max_epoch_moves is not None and self.max_epoch_moves < 1:
            raise ValueError("max_epoch_moves must be at least 1")


@dataclass(frozen=True)
class EpochReport:
    """What one placement epoch observed and decided.

    The trailing fields describe fault-tolerance state (docs/chaos.md):
    ``coordinator`` is the elected coordinator position and ``lease``
    its term; ``reachable_sites`` is the subset of replica sites whose
    summaries the coordinator could pool (``None`` = no restriction);
    ``degraded`` flags an epoch that ran without full visibility;
    ``stale_summaries_dropped`` counts replica sites whose pending
    summaries were discarded because the site was unreachable when the
    epoch ran; ``rejected`` marks a stale-lease epoch that was fenced
    off without running (its ``epoch`` repeats the last completed
    epoch's number, since the counter never advanced).
    """

    epoch: int
    k: int
    accesses: int
    previous_sites: tuple[int, ...]
    proposed_sites: tuple[int, ...]
    verdict: MigrationVerdict
    current_predicted_delay: float
    proposed_predicted_delay: float
    summary_bytes: int
    coordinator: int | None = None
    lease: int = 0
    reachable_sites: tuple[int, ...] | None = None
    degraded: bool = False
    stale_summaries_dropped: int = 0
    rejected: bool = False

    @property
    def migrated(self) -> bool:
        """Whether the proposed placement was adopted."""
        return self.verdict.migrate


class ReplicationController:
    """Runs the paper's gradual-migration loop for one data object.

    Parameters
    ----------
    dc_coords:
        ``(n_dc, d)`` *planar* coordinates of all candidate data centers
        (see :meth:`clustering_coords` for stripping height components).
    initial_sites:
        Candidate indices currently holding replicas; their count sets
        the initial ``k`` unless ``config.k`` disagrees, in which case
        ``config.k`` wins and sites are truncated/padded arbitrarily.
    config:
        :class:`ControllerConfig`.
    cost_model / policy:
        Migration pricing and go/no-go thresholds.
    on_migrate:
        Optional callback ``(old_sites, new_sites)`` fired after a
        migration is adopted — the storage layer moves the data there.
    domains:
        Optional :class:`~repro.net.domains.FailureDomains` annotation
        over the candidate positions.  Required for
        ``config.availability_lambda > 0`` (the λ-objective needs a
        co-failure model); ignored at λ = 0.
    """

    def __init__(self, dc_coords: np.ndarray,
                 initial_sites: Sequence[int],
                 config: ControllerConfig | None = None,
                 cost_model: MigrationCostModel | None = None,
                 policy: MigrationPolicy | None = None,
                 on_migrate: Callable[[tuple[int, ...], tuple[int, ...]], None]
                 | None = None,
                 domains: FailureDomains | None = None) -> None:
        self.dc_coords = np.atleast_2d(np.asarray(dc_coords, dtype=float))
        self.config = config or ControllerConfig()
        self.domains = domains
        if domains is not None and domains.n != self.dc_coords.shape[0]:
            raise ValueError(
                f"domains annotate {domains.n} positions but there are "
                f"{self.dc_coords.shape[0]} candidates")
        if self.config.availability_lambda > 0 and domains is None:
            raise ValueError(
                "availability_lambda > 0 needs a FailureDomains annotation")
        self.cost_model = cost_model or MigrationCostModel()
        self.policy = policy or MigrationPolicy()
        self.on_migrate = on_migrate
        self.tally = CostTally()
        self.k = self.config.k
        self.epoch = 0
        #: Elected coordinator (a site position) and its lease term.
        #: ``None`` until the first election; legacy callers that never
        #: elect keep running exactly as before.
        self.coordinator: int | None = None
        self.lease = 0
        self.failovers = 0

        sites = list(dict.fromkeys(int(s) for s in initial_sites))
        if not sites:
            raise ValueError("at least one initial replica site required")
        for s in sites:
            if not 0 <= s < self.dc_coords.shape[0]:
                raise ValueError(f"initial site {s} is not a candidate")
        self.sites: tuple[int, ...] = tuple(sites[:self.k])
        self._summaries: dict[int, ReplicaAccessSummary] = {}
        self._write_summaries: dict[int, ReplicaAccessSummary] = {}
        for s in self.sites:
            self._summaries[s] = self._new_summary()
            self._write_summaries[s] = self._new_summary()

    def sync_sites(self, sites: Sequence[int]) -> None:
        """Adopt an externally changed replica set (repair, recovery).

        The storage layer may add or remove replicas outside the epoch
        loop — e.g. re-replicating after a site failure.  Summaries of
        retained sites are kept; new sites start fresh ones.
        """
        new_sites = tuple(dict.fromkeys(int(s) for s in sites))
        if not new_sites:
            raise ValueError("a replica set cannot be empty")
        for s in new_sites:
            if not 0 <= s < self.dc_coords.shape[0]:
                raise ValueError(f"site {s} is not a candidate")
        self._summaries = {
            s: self._summaries.get(s) or self._new_summary()
            for s in new_sites
        }
        self._write_summaries = {
            s: self._write_summaries.get(s) or self._new_summary()
            for s in new_sites
        }
        self.sites = new_sites

    # ------------------------------------------------------------------
    # Access recording
    # ------------------------------------------------------------------
    def record_access(self, site: int, client_coords: np.ndarray,
                      bytes_exchanged: float = 1.0,
                      kind: str = "read") -> None:
        """Report that a client accessed the replica at ``site``.

        ``kind`` is ``"read"`` or ``"write"``.  Writes feed a separate
        summary stream only in write-aware mode; otherwise every access
        informs the single read-placement stream, as in the paper.
        """
        if kind not in ("read", "write"):
            raise ValueError("kind must be 'read' or 'write'")
        if site not in self._summaries:
            raise KeyError(f"site {site} does not hold a replica")
        if kind == "write" and self.config.write_aware:
            self._write_summaries[site].record_access(client_coords,
                                                      bytes_exchanged)
        else:
            self._summaries[site].record_access(client_coords,
                                                bytes_exchanged)

    def record_batch(self, site: int, client_coords: np.ndarray,
                     bytes_exchanged: np.ndarray | None = None,
                     kind: str = "read") -> None:
        """Report a whole block of accesses to the replica at ``site``.

        Equivalent to calling :meth:`record_access` once per row of
        ``client_coords`` (in order) with the matching entry of
        ``bytes_exchanged`` — the rows must already be in fold order.
        Raises the same :class:`KeyError` as the scalar path *before*
        folding anything, so a retired site's batch is dropped whole.
        """
        if kind not in ("read", "write"):
            raise ValueError("kind must be 'read' or 'write'")
        if site not in self._summaries:
            raise KeyError(f"site {site} does not hold a replica")
        if kind == "write" and self.config.write_aware:
            self._write_summaries[site].record_batch(client_coords,
                                                     bytes_exchanged)
        else:
            self._summaries[site].record_batch(client_coords,
                                               bytes_exchanged)

    @staticmethod
    def clustering_coords(coords: np.ndarray, space: EuclideanSpace) -> np.ndarray:
        """Planar part of raw coordinates, for clustering and placement.

        Height components model per-node access delay, not position, so
        clustering uses only the planar embedding.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        return coords[:, :space.dim] if space.use_height else coords

    # ------------------------------------------------------------------
    # Coordinator failover
    # ------------------------------------------------------------------
    def elect_coordinator(self, ranking: Sequence[int]) -> tuple[int, int]:
        """Adopt the first position of ``ranking`` as coordinator.

        ``ranking`` is the caller's deterministic successor order over
        live positions — typically the default coordinator first, then
        the live replica holders in sorted order (the storage layer
        builds it from its failure detector).  When the winner differs
        from the incumbent, the lease term advances, which fences any
        epoch still presented under the old term (see :meth:`run_epoch`'s
        ``lease`` parameter).  Returns ``(coordinator, lease)``.
        """
        candidates = [int(p) for p in ranking]
        if not candidates:
            raise ValueError("cannot elect from an empty ranking")
        winner = candidates[0]
        if winner != self.coordinator:
            if self.coordinator is not None:
                self.failovers += 1
                registry = obs.get_registry()
                if registry.enabled:
                    registry.counter("controller.failovers").inc()
            self.coordinator = winner
            self.lease += 1
        return self.coordinator, self.lease

    # ------------------------------------------------------------------
    # The epoch
    # ------------------------------------------------------------------
    def run_epoch(self, rng: np.random.Generator | None = None, *,
                  reachable: Sequence[int] | None = None,
                  eligible: Sequence[int] | None = None,
                  lease: int | None = None,
                  max_moves: int | None = None) -> EpochReport:
        """Collect summaries, run Algorithm 1, migrate if justified.

        Parameters
        ----------
        rng:
            Randomness for the clustering step.
        reachable:
            Site positions the coordinator can currently reach.  Only
            their summaries are pooled; summaries of unreachable sites
            are *discarded* (never shipped late into a future epoch —
            the "silently using stale summaries" failure mode).
            ``None`` (the default) means full visibility.
        eligible:
            Candidate positions that may receive replicas this epoch
            (e.g. the data centers reachable from the coordinator).
            When fewer than ``k`` candidates are eligible, the epoch
            completes without migrating rather than shedding replicas
            because of a partition.  ``None`` means all candidates.
        lease:
            The coordinator lease term this epoch runs under.  A term
            older than the controller's current lease identifies a
            stale coordinator re-entering after a failover; its epoch
            is rejected without touching any state.
        max_moves:
            One-epoch override of ``config.max_epoch_moves`` — a
            sharded catalog passes what is left of a *global* migration
            budget here.  ``0`` (an exhausted budget) forbids adopting
            any new site this epoch while still allowing shrinks, which
            transfer nothing.  ``None`` (the default) defers to the
            static configuration.
        """
        registry = obs.get_registry()
        if lease is not None and lease < self.lease:
            if registry.enabled:
                registry.counter("controller.stale_epochs_rejected").inc()
            verdict = MigrationVerdict(
                False, 0.0, 0.0, 0.0,
                f"stale coordinator lease {lease} rejected "
                f"(current {self.lease})")
            return EpochReport(self.epoch, self.k, 0, self.sites, self.sites,
                               verdict, 0.0, 0.0, 0,
                               coordinator=self.coordinator, lease=self.lease,
                               rejected=True)

        rng = rng or np.random.default_rng(self.epoch)
        self.epoch += 1
        self.tally.epochs += 1

        reachable_sites: tuple[int, ...] | None = None
        stale_dropped = 0
        if reachable is not None:
            reachable_set = {int(s) for s in reachable} & set(self.sites)
            reachable_sites = tuple(s for s in self.sites
                                    if s in reachable_set)
            for site in self.sites:
                if site in reachable_set:
                    continue
                # Unreachable this epoch: its summary covers a window the
                # coordinator never saw end-to-end — discard rather than
                # let it leak, stale, into a later epoch.  Counted once
                # per site, even when both a read and a write stream held
                # data.
                had_data = False
                for summaries in (self._summaries, self._write_summaries):
                    summary = summaries[site]
                    if summary.accesses > 0:
                        had_data = True
                    summary.reset()
                if had_data:
                    stale_dropped += 1
            if registry.enabled and stale_dropped:
                registry.counter(
                    "controller.stale_summaries_dropped").inc(stale_dropped)
            pooled_from = reachable_set
        else:
            pooled_from = set(self.sites)

        accesses = sum(s.accesses for site, s in self._summaries.items()
                       if site in pooled_from)
        accesses += sum(s.accesses
                        for site, s in self._write_summaries.items()
                        if site in pooled_from)
        summary_bytes = sum(s.wire_size_bytes()
                            for site, s in self._summaries.items()
                            if site in pooled_from)
        summary_bytes += sum(s.wire_size_bytes()
                             for site, s in self._write_summaries.items()
                             if site in pooled_from)
        self.tally.summary_bytes += summary_bytes
        pooled: list[ClusterFeature] = []
        for site, summary in self._summaries.items():
            if site in pooled_from:
                pooled.extend(summary.snapshot())
        pooled_writes: list[ClusterFeature] = []
        for site, summary in self._write_summaries.items():
            if site in pooled_from:
                pooled_writes.extend(summary.snapshot())
        if not self.config.write_aware:
            # Paper mode: writes (if any were recorded) already live in
            # the read stream; nothing extra to pool.
            pooled_writes = []

        if self.config.adaptive_k:
            self._adapt_k(accesses)

        eligible_idx: np.ndarray | None = None
        if eligible is not None:
            eligible_idx = np.array(sorted({int(p) for p in eligible}),
                                    dtype=int)
            if eligible_idx.size and (
                    eligible_idx.min() < 0
                    or eligible_idx.max() >= self.dc_coords.shape[0]):
                raise ValueError("eligible positions outside candidates")
        degraded = ((reachable_sites is not None
                     and set(reachable_sites) != set(self.sites))
                    or (eligible_idx is not None
                        and eligible_idx.size < self.dc_coords.shape[0]))
        if registry.enabled and degraded:
            registry.counter("controller.epochs_degraded").inc()

        previous_sites = self.sites
        extra = dict(coordinator=self.coordinator,
                     lease=self.lease if lease is None else lease,
                     reachable_sites=reachable_sites, degraded=degraded,
                     stale_summaries_dropped=stale_dropped)
        if not pooled and not pooled_writes:
            # Nobody (reachable) accessed the object this epoch.
            reason = ("no reachable summaries this epoch"
                      if reachable_sites is not None and not reachable_sites
                      else "no accesses observed")
            verdict = MigrationVerdict(False, 0.0, 0.0, 0.0, reason)
            report = EpochReport(self.epoch, self.k, 0, previous_sites,
                                 previous_sites, verdict, 0.0, 0.0, 0,
                                 **extra)
            self._roll_summaries(migrated=False)
            return report

        if eligible_idx is not None and eligible_idx.size < self.k:
            # A partition has hidden too many candidates: degrade to a
            # no-op epoch instead of shedding replicas we still own.
            verdict = MigrationVerdict(
                False, 0.0, 0.0, 0.0,
                f"only {eligible_idx.size} reachable candidates for k={self.k}")
            report = EpochReport(self.epoch, self.k, accesses, previous_sites,
                                 previous_sites, verdict, 0.0, 0.0,
                                 summary_bytes, **extra)
            self._roll_summaries(migrated=False)
            return report

        placement_coords = (self.dc_coords if eligible_idx is None
                            else self.dc_coords[eligible_idx])
        started = time.perf_counter()
        if self.config.write_aware:
            rw_decision = place_replicas_rw(pooled, pooled_writes, self.k,
                                            placement_coords, rng)
            proposed_sites = rw_decision.data_centers
            proposed_delay = rw_decision.predicted_cost
            current_delay = estimate_rw_cost(
                pooled, pooled_writes,
                self.dc_coords[np.array(previous_sites)])[0]
        else:
            decision = place_replicas(pooled, self.k, placement_coords, rng,
                                      self.config.use_bytes_weight)
            proposed_sites = decision.data_centers
            proposed_delay = decision.predicted_delay
            current_delay = estimate_average_delay(
                pooled, self.dc_coords[np.array(previous_sites)])
        if eligible_idx is not None:
            # Map positions within the eligible subset back to candidate
            # positions — a migration can never target a partitioned-away
            # data center, by construction.
            proposed_sites = tuple(int(eligible_idx[p])
                                   for p in proposed_sites)

        lam = self.config.availability_lambda
        refining = lam > 0.0 and self.domains is not None
        cap = (self.config.max_epoch_moves if max_moves is None
               else max(int(max_moves), 0))
        if refining or cap is not None:
            if self.config.write_aware:
                def predicted_delay_of(positions: list[int]) -> float:
                    return float(estimate_rw_cost(
                        pooled, pooled_writes,
                        self.dc_coords[np.array(positions)])[0])
            else:
                def predicted_delay_of(positions: list[int]) -> float:
                    return float(estimate_average_delay(
                        pooled, self.dc_coords[np.array(positions)]))

            def combined_objective(positions: list[int]) -> float:
                value = predicted_delay_of(positions)
                if refining:
                    value += lam * self.domains.cofailure_risk(positions)
                return value

        if refining:
            refined = refine_for_availability(
                list(proposed_sites), predicted_delay_of, self.domains, lam,
                eligible=(None if eligible_idx is None
                          else eligible_idx.tolist()))
            if tuple(refined) != proposed_sites:
                proposed_sites = tuple(int(p) for p in refined)
                proposed_delay = predicted_delay_of(list(proposed_sites))
        if cap is not None:
            if cap < 1:
                # Exhausted budget: no new sites may be adopted at all.
                # ``bound_transfers`` cannot express a zero cap, so the
                # proposal collapses to the current placement unless it
                # is a pure shrink/reorder (which transfers nothing).
                if set(proposed_sites) - set(previous_sites):
                    proposed_sites = tuple(previous_sites)
                    proposed_delay = predicted_delay_of(list(proposed_sites))
            else:
                trimmed = bound_transfers(previous_sites,
                                          list(proposed_sites),
                                          cap, combined_objective)
                if tuple(trimmed) != proposed_sites:
                    proposed_sites = tuple(int(p) for p in trimmed)
                    proposed_delay = predicted_delay_of(list(proposed_sites))
        self.tally.clustering_seconds += time.perf_counter() - started
        if len(proposed_sites) < len(previous_sites):
            # Shedding replicas can never *reduce* delay, so the latency
            # threshold would block it forever.  A shrink is a cost
            # decision (demand fell below the watermark): adopt the
            # proposal outright — dropping replicas is free.
            verdict = MigrationVerdict(
                True,
                current_delay - proposed_delay,
                0.0,
                self.cost_model.cost_of_move(previous_sites,
                                             proposed_sites),
                "degree of replication reduced to match demand",
            )
        else:
            # Under the λ-objective the policy must weigh the *combined*
            # costs, or a move that pays a little latency for a lot of
            # safety would always be vetoed.  At λ = 0 this branch is
            # never taken and the paper's pure-latency comparison runs
            # untouched.
            if refining:
                decide_current = (current_delay
                                  + lam * self.domains.cofailure_risk(
                                      previous_sites))
                decide_proposed = (proposed_delay
                                   + lam * self.domains.cofailure_risk(
                                       proposed_sites))
            else:
                decide_current = current_delay
                decide_proposed = proposed_delay
            verdict = self.policy.decide(decide_current,
                                         decide_proposed,
                                         self.cost_model, previous_sites,
                                         proposed_sites)
        if verdict.migrate:
            self.sites = proposed_sites
            self.tally.migrations += 1
            self.tally.migration_dollars += verdict.cost_dollars
            if self.on_migrate is not None:
                self.on_migrate(previous_sites, self.sites)

        report = EpochReport(
            epoch=self.epoch,
            k=self.k,
            accesses=accesses,
            previous_sites=previous_sites,
            proposed_sites=proposed_sites,
            verdict=verdict,
            current_predicted_delay=current_delay,
            proposed_predicted_delay=proposed_delay,
            summary_bytes=summary_bytes,
            **extra,
        )
        self._roll_summaries(migrated=verdict.migrate)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_summary(self) -> ReplicaAccessSummary:
        decay = self.config.summary_decay or 1.0
        return ReplicaAccessSummary(self.config.max_micro_clusters,
                                    self.config.radius_floor, decay)

    def _roll_summaries(self, migrated: bool) -> None:
        """Refresh per-site summaries after an epoch.

        On migration every new site starts a fresh summary.  Otherwise
        the paper's default is a reset (a new observation window); with
        ``summary_decay`` configured, statistics are decayed instead so
        slow-moving populations persist across epochs.
        """
        if migrated:
            self._summaries = {s: self._new_summary() for s in self.sites}
            self._write_summaries = {s: self._new_summary()
                                     for s in self.sites}
            return
        for summaries in (self._summaries, self._write_summaries):
            for summary in summaries.values():
                if self.config.summary_decay is None:
                    summary.reset()
                else:
                    summary.age()

    def _adapt_k(self, accesses: int) -> None:
        if accesses >= self.config.demand_high and self.k < self.config.k_max:
            self.k += 1
            self.tally.notes.append(
                f"epoch {self.epoch}: demand {accesses} high, k -> {self.k}"
            )
        elif accesses <= self.config.demand_low and self.k > self.config.k_min:
            self.k -= 1
            self.tally.notes.append(
                f"epoch {self.epoch}: demand {accesses} low, k -> {self.k}"
            )
