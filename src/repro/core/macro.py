"""Macro-clustering and replica-site selection (Algorithm 1).

The coordinator collects the micro-clusters from every replica holder,
merges them into *k* macro-clusters with weighted k-means (each
micro-cluster is a pseudo-point at its centroid, weighted by access
count), and maps each macro-cluster to the nearest candidate data
center.  The same module provides the predicted-delay estimator the
migration policy uses to compare placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.clustering.kmeans import weighted_kmeans
from repro.clustering.stream import ClusterFeature
from repro.kernels import wkmeans as _wk

__all__ = [
    "MacroCluster",
    "PlacementDecision",
    "macro_cluster",
    "place_replicas",
    "estimate_average_delay",
]


@dataclass(frozen=True)
class MacroCluster:
    """One major user population identified by Algorithm 1."""

    centroid: np.ndarray
    count: float
    weight: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "centroid",
                           np.asarray(self.centroid, dtype=float))


@dataclass(frozen=True)
class PlacementDecision:
    """Output of :func:`place_replicas`.

    Attributes
    ----------
    data_centers:
        Chosen candidate indices (into the ``dc_coords`` the caller
        supplied), one per macro-cluster, all distinct.
    macro_clusters:
        The macro-clusters, in the same order as ``data_centers``.
    predicted_delay:
        Access-count-weighted mean distance from micro-cluster centroids
        to their nearest chosen data center — the coordinator's estimate
        of the average access delay this placement achieves.
    """

    data_centers: tuple[int, ...]
    macro_clusters: tuple[MacroCluster, ...]
    predicted_delay: float


def _pseudo_points(micro_clusters: Sequence[ClusterFeature],
                   use_bytes_weight: bool) -> tuple[np.ndarray, np.ndarray]:
    """Centroids and weights of the micro-clusters."""
    if not micro_clusters:
        raise ValueError("no micro-clusters supplied")
    points = np.stack([c.centroid for c in micro_clusters])
    if use_bytes_weight:
        weights = np.array([c.weight for c in micro_clusters], dtype=float)
    else:
        weights = np.array([c.count for c in micro_clusters], dtype=float)
    if weights.sum() <= 0:
        # Degenerate but possible (e.g. zero-byte accesses with byte
        # weighting): fall back to uniform pseudo-point weights.
        weights = np.ones(len(micro_clusters))
    return points, weights


def macro_cluster(micro_clusters: Sequence[ClusterFeature], k: int,
                  rng: np.random.Generator | None = None,
                  use_bytes_weight: bool = False,
                  backend: str | None = None) -> list[MacroCluster]:
    """Merge micro-clusters into ``k`` macro-clusters (Algorithm 1, line 2).

    Parameters
    ----------
    micro_clusters:
        The pooled micro-clusters from all replica holders.
    k:
        Target degree of replication.
    use_bytes_weight:
        Weight pseudo-points by bytes exchanged instead of access count
        (the paper mentions both; count is the default).
    backend:
        Kernel backend for the k-means maths; ``None`` follows the
        process-wide :mod:`repro.kernels` switch.
    """
    if k < 1:
        raise ValueError("k must be positive")
    rng = rng or np.random.default_rng(0)
    points, weights = _pseudo_points(micro_clusters, use_bytes_weight)
    result = weighted_kmeans(points, k, weights=weights, rng=rng,
                             backend=backend)

    counts = np.array([c.count for c in micro_clusters], dtype=float)
    byte_weights = np.array([c.weight for c in micro_clusters], dtype=float)
    macros = []
    for c in range(result.k):
        mask = result.labels == c
        if not np.any(mask):
            continue
        macros.append(MacroCluster(
            centroid=result.centroids[c],
            count=float(counts[mask].sum()),
            weight=float(byte_weights[mask].sum()),
        ))
    return macros


def _check_heights(heights: np.ndarray | None, n: int) -> np.ndarray:
    if heights is None:
        return np.zeros(n)
    heights = np.asarray(heights, dtype=float)
    if heights.shape != (n,):
        raise ValueError(f"expected {n} heights, got shape {heights.shape}")
    if np.any(heights < 0):
        raise ValueError("heights must be non-negative")
    return heights


def place_replicas(micro_clusters: Sequence[ClusterFeature], k: int,
                   dc_coords: np.ndarray,
                   rng: np.random.Generator | None = None,
                   use_bytes_weight: bool = False,
                   dc_heights: np.ndarray | None = None,
                   refine_swaps: bool = True,
                   dc_capacities: np.ndarray | None = None,
                   eligible: np.ndarray | None = None,
                   backend: str | None = None) -> PlacementDecision:
    """Algorithm 1: choose ``k`` distinct data centers for the replicas.

    Parameters
    ----------
    micro_clusters:
        Pooled micro-clusters from the current replica holders.
    k:
        Target degree of replication (capped by the number of candidate
        data centers).
    dc_coords:
        ``(n_dc, d)`` coordinates of the candidate data centers, in the
        same (planar) coordinate space as the micro-cluster centroids.
    dc_heights:
        Optional per-candidate height-vector components (ms).  In a
        height-augmented coordinate space (Vivaldi/RNP) a node's height
        models its access-link delay; serving any client from candidate
        *d* costs ``planar distance + height(d)``, so the assignment
        step adds it.  ``None`` means a pure planar space.
    refine_swaps:
        After the nearest-centroid mapping, greedily swap chosen sites
        for unused candidates while the *estimated* average delay
        improves.  The paper's coordinator explicitly "identif[ies] the
        most beneficial replica locations (i.e., those that are expected
        to minimize the overall data access delay)"; nearest-centroid
        alone can propose a set whose estimated delay is worse than the
        incumbent placement (k-means optimizes squared planar distance,
        not the min-over-replicas objective), which would stall the
        gradual-migration loop.  The refinement costs
        ``O(k · n_dc · k · m)`` distance evaluations per round — still
        independent of the number of accesses.
    dc_capacities:
        Optional per-candidate capacity in *accesses per epoch*.
        Section II-A assumes "candidate replica locations are
        considered only when they can handle the expected user
        requests"; with capacities given, that assumption becomes a
        constraint: a macro-cluster claims the nearest candidate whose
        remaining capacity covers its access count (falling back to the
        largest-remaining candidate when none fits), and refinement
        swaps are accepted only if the resulting per-site loads —
        every micro-cluster routed to its nearest chosen site — stay
        within capacity.
    eligible:
        Optional ``(n_dc,)`` boolean mask over the candidates.  An
        ineligible candidate (partitioned away, failed, fenced off by a
        chaos scenario) keeps its column in every distance matrix —
        same shapes, same code path — but can never be chosen or
        swapped in.  ``k`` is capped at the number of eligible
        candidates.
    backend:
        Kernel backend for the distance/k-means maths; ``None`` follows
        the process-wide :mod:`repro.kernels` switch.

    Notes
    -----
    The paper assigns each macro-cluster the closest data center.  Two
    macro-clusters can share a closest candidate; to always return ``k``
    distinct sites we process macro-clusters in decreasing weight order
    and give each the nearest *unused* candidate — the heaviest
    population wins the contended site, later ones take the runner-up.
    """
    registry = obs.get_registry()
    with registry.phase("macro.place_replicas"):
        decision = _place_replicas(micro_clusters, k, dc_coords, rng,
                                   use_bytes_weight, dc_heights,
                                   refine_swaps, dc_capacities,
                                   eligible, backend)
    if registry.enabled:
        registry.counter("macro.rounds").inc()
        obs.get_tracer().record(
            obs.MACRO_ROUND, k=len(decision.data_centers),
            micro_clusters=len(micro_clusters),
            predicted_delay=decision.predicted_delay)
    return decision


def _place_replicas(micro_clusters: Sequence[ClusterFeature], k: int,
                    dc_coords: np.ndarray,
                    rng: np.random.Generator | None,
                    use_bytes_weight: bool,
                    dc_heights: np.ndarray | None,
                    refine_swaps: bool,
                    dc_capacities: np.ndarray | None,
                    eligible: np.ndarray | None = None,
                    backend: str | None = None) -> PlacementDecision:
    dc_coords = np.atleast_2d(np.asarray(dc_coords, dtype=float))
    n_dc = dc_coords.shape[0]
    if n_dc == 0:
        raise ValueError("no candidate data centers")
    heights = _check_heights(dc_heights, n_dc)
    capacities = None
    if dc_capacities is not None:
        capacities = np.asarray(dc_capacities, dtype=float)
        if capacities.shape != (n_dc,):
            raise ValueError(f"expected {n_dc} capacities")
        if np.any(capacities <= 0):
            raise ValueError("capacities must be positive")
    if eligible is not None:
        eligible = np.asarray(eligible, dtype=bool)
        if eligible.shape != (n_dc,):
            raise ValueError(f"expected ({n_dc},) eligibility mask, "
                             f"got {eligible.shape}")
        if not eligible.any():
            raise ValueError("no candidate data center is eligible")
        k = min(k, int(eligible.sum()))
    k = min(k, n_dc)
    macros = macro_cluster(micro_clusters, k, rng, use_bytes_weight,
                           backend=backend)

    order = sorted(range(len(macros)),
                   key=lambda i: macros[i].count, reverse=True)
    chosen: list[int] = []
    ordered_macros: list[MacroCluster] = []
    used = np.zeros(n_dc, dtype=bool)
    remaining = capacities.copy() if capacities is not None else None
    for idx in order:
        macro = macros[idx]
        dists = _wk.cross_distances(macro.centroid[None, :], dc_coords,
                                    b_heights=heights, backend=backend)[0]
        dists[used] = np.inf
        if eligible is not None:
            dists[~eligible] = np.inf
        if remaining is not None:
            # Nearest candidate that can absorb this population; if none
            # fits, the roomiest one takes the overload.
            feasible = dists.copy()
            feasible[remaining < macro.count] = np.inf
            if np.isfinite(feasible).any():
                site = int(np.argmin(feasible))
            else:
                blocked = used if eligible is None else (used | ~eligible)
                unused_room = np.where(blocked, -np.inf, remaining)
                site = int(np.argmax(unused_room))
            remaining[site] -= macro.count
        else:
            site = int(np.argmin(dists))
        used[site] = True
        chosen.append(site)
        ordered_macros.append(macro)

    # Fewer macro-clusters than k can emerge when k-means leaves empty
    # clusters on tiny inputs; pad with the candidates closest to the
    # heaviest macro-cluster so the degree of replication is honoured.
    while len(chosen) < k:
        anchor = ordered_macros[0].centroid
        dists = _wk.cross_distances(anchor[None, :], dc_coords,
                                    b_heights=heights, backend=backend)[0]
        dists[used] = np.inf
        if eligible is not None:
            dists[~eligible] = np.inf
        site = int(np.argmin(dists))
        used[site] = True
        chosen.append(site)

    if refine_swaps:
        chosen = _refine_by_swaps(micro_clusters, chosen, dc_coords, heights,
                                  capacities=capacities,
                                  use_bytes_weight=use_bytes_weight,
                                  eligible=eligible, backend=backend)

    picks = np.array(chosen)
    predicted = estimate_average_delay(micro_clusters, dc_coords[picks],
                                       replica_heights=heights[picks],
                                       backend=backend)
    return PlacementDecision(tuple(chosen), tuple(ordered_macros), predicted)


def _refine_by_swaps(micro_clusters: Sequence[ClusterFeature],
                     chosen: list[int], dc_coords: np.ndarray,
                     heights: np.ndarray, max_rounds: int = 8,
                     capacities: np.ndarray | None = None,
                     use_bytes_weight: bool = False,
                     eligible: np.ndarray | None = None,
                     backend: str | None = None) -> list[int]:
    """Greedy site swaps that improve the summary-estimated delay.

    Works entirely on the micro-cluster summaries (centroids weighted by
    access count) and candidate coordinates — the only information the
    coordinator has.  With ``capacities`` given, a swap is accepted only
    if every site's routed load stays within its capacity (the starting
    placement is exempt: if it already overloads, improving delay without
    worsening feasibility is still allowed via the no-worse rule below).
    """
    centroids = np.stack([c.centroid for c in micro_clusters])
    counts = np.array([c.count for c in micro_clusters], dtype=float)
    if counts.sum() <= 0:
        counts = np.ones(len(micro_clusters))
    if use_bytes_weight:
        mass = np.array([c.weight for c in micro_clusters], dtype=float)
        if mass.sum() <= 0:
            mass = counts
    else:
        mass = counts
    weights = mass / mass.sum()
    # (micro-cluster, candidate) predicted serving cost.
    cost = _wk.cross_distances(centroids, dc_coords, b_heights=heights,
                               backend=backend)

    chosen = list(chosen)
    n_dc = dc_coords.shape[0]

    def estimated(sites: list[int]) -> float:
        return float(weights @ cost[:, sites].min(axis=1))

    def overload(sites: list[int]) -> float:
        """Total routed load above capacity (0 when feasible)."""
        if capacities is None:
            return 0.0
        routed = np.argmin(cost[:, sites], axis=1)
        loads = np.bincount(routed, weights=counts, minlength=len(sites))
        return float(np.maximum(loads - capacities[list(sites)], 0.0).sum())

    best = estimated(chosen)
    best_overload = overload(chosen)
    for _ in range(max_rounds):
        improved = False
        for i in range(len(chosen)):
            in_use = set(chosen)
            for candidate in range(n_dc):
                if candidate in in_use:
                    continue
                if eligible is not None and not eligible[candidate]:
                    continue
                trial = chosen.copy()
                trial[i] = candidate
                trial_overload = overload(trial)
                if trial_overload > best_overload + 1e-12:
                    continue
                value = estimated(trial)
                if (value < best - 1e-12
                        or trial_overload < best_overload - 1e-12):
                    chosen, best = trial, value
                    best_overload = trial_overload
                    improved = True
                    in_use = set(chosen)
        if not improved:
            break
    return chosen


def estimate_average_delay(micro_clusters: Sequence[ClusterFeature],
                           replica_coords: np.ndarray,
                           replica_heights: np.ndarray | None = None,
                           backend: str | None = None) -> float:
    """Predicted mean access delay of a placement, from summaries alone.

    Each micro-cluster contributes ``count`` accesses at its centroid;
    every access is served by the nearest replica (in coordinate space,
    plus the replica's height when heights are in play), so the estimate
    is the count-weighted mean of ``min_r (dist(centroid, r) + h_r)``.
    """
    if not micro_clusters:
        raise ValueError("no micro-clusters supplied")
    replica_coords = np.atleast_2d(np.asarray(replica_coords, dtype=float))
    if replica_coords.shape[0] == 0:
        raise ValueError("no replica coordinates supplied")
    heights = _check_heights(replica_heights, replica_coords.shape[0])
    centroids = np.stack([c.centroid for c in micro_clusters])
    counts = np.array([c.count for c in micro_clusters], dtype=float)
    if counts.sum() <= 0:
        counts = np.ones(len(micro_clusters))
    dists = _wk.cross_distances(centroids, replica_coords, b_heights=heights,
                                backend=backend).min(axis=1)
    return float(np.average(dists, weights=counts))
