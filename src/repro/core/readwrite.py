"""Read/write-aware placement (extension; paper §II-A + §V-B).

The paper assumes read-mostly objects and "the cost of propagating
updates among data replicas is ignored"; its related work (notably
Sivasubramanian et al., AAA-IDEA 2006) takes the read-write ratio into
account.  This module builds that extension on top of the same
micro-cluster machinery:

* the storage layer already summarizes reads and writes separately
  (two :class:`~repro.core.summarizer.ReplicaAccessSummary` streams);
* a write is served by the *closest* replica and then propagated to
  every other replica, so its cost is
  ``dist(writer, nearest) + update_fanout_cost(nearest -> others)``;
* :func:`estimate_rw_cost` prices a placement under that model, and
  :func:`place_replicas_rw` optimizes it with the same
  k-means-then-swap-refinement pipeline as Algorithm 1.

The visible behavioural consequence (checked by the tests and the
write-fraction bench): as the write share grows, the optimizer pulls
replicas *closer together* — update fan-out punishes spread — and in
the limit collapses toward a single master near the writers, exactly
the design point the related work argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.clustering.stream import ClusterFeature
from repro.core.macro import MacroCluster, macro_cluster, _check_heights

__all__ = ["RWPlacementDecision", "estimate_rw_cost", "place_replicas_rw"]


@dataclass(frozen=True)
class RWPlacementDecision:
    """Outcome of :func:`place_replicas_rw`."""

    data_centers: tuple[int, ...]
    read_macro_clusters: tuple[MacroCluster, ...]
    predicted_cost: float
    predicted_read_delay: float
    predicted_write_delay: float


def _pseudo(micro_clusters: Sequence[ClusterFeature]
            ) -> tuple[np.ndarray, np.ndarray]:
    centroids = np.stack([c.centroid for c in micro_clusters])
    counts = np.array([c.count for c in micro_clusters], dtype=float)
    if counts.sum() <= 0:
        counts = np.ones(len(micro_clusters))
    return centroids, counts


def estimate_rw_cost(read_clusters: Sequence[ClusterFeature],
                     write_clusters: Sequence[ClusterFeature],
                     replica_coords: np.ndarray,
                     replica_heights: np.ndarray | None = None
                     ) -> tuple[float, float, float]:
    """Predicted (total, read, write) mean delays of a placement.

    Read cost per access: distance to the nearest replica.  Write cost
    per access: distance to the nearest replica *plus* the mean
    distance from that replica to every other replica (asynchronous
    propagation still consumes wide-area transfers; the mean makes the
    number an average per-message delay rather than a fan-out sum, so
    read and write costs stay on the same ms scale).

    Returns ``(combined, read_only, write_only)`` where ``combined``
    weighs the two by their access counts.  Empty ``write_clusters``
    reduce to the paper's read-only estimator.
    """
    replica_coords = np.atleast_2d(np.asarray(replica_coords, dtype=float))
    r = replica_coords.shape[0]
    if r == 0:
        raise ValueError("no replica coordinates supplied")
    heights = _check_heights(replica_heights, r)
    if not read_clusters and not write_clusters:
        raise ValueError("no micro-clusters supplied")

    # Pairwise replica-to-replica propagation cost.
    inter = np.linalg.norm(
        replica_coords[:, None, :] - replica_coords[None, :, :], axis=-1
    ) + heights[None, :]
    np.fill_diagonal(inter, 0.0)
    # Mean propagation cost per update accepted at replica i.
    fanout = inter.sum(axis=1) / max(r - 1, 1)

    read_total = 0.0
    read_count = 0.0
    if read_clusters:
        centroids, counts = _pseudo(read_clusters)
        dists = (np.linalg.norm(
            centroids[:, None, :] - replica_coords[None, :, :], axis=-1
        ) + heights[None, :]).min(axis=1)
        read_total = float(counts @ dists)
        read_count = float(counts.sum())

    write_total = 0.0
    write_count = 0.0
    if write_clusters:
        centroids, counts = _pseudo(write_clusters)
        to_replicas = np.linalg.norm(
            centroids[:, None, :] - replica_coords[None, :, :], axis=-1
        ) + heights[None, :]
        nearest = np.argmin(to_replicas, axis=1)
        per_write = (to_replicas[np.arange(len(counts)), nearest]
                     + fanout[nearest])
        write_total = float(counts @ per_write)
        write_count = float(counts.sum())

    total_count = read_count + write_count
    combined = (read_total + write_total) / total_count
    read_mean = read_total / read_count if read_count else 0.0
    write_mean = write_total / write_count if write_count else 0.0
    return combined, read_mean, write_mean


def place_replicas_rw(read_clusters: Sequence[ClusterFeature],
                      write_clusters: Sequence[ClusterFeature],
                      k: int, dc_coords: np.ndarray,
                      rng: np.random.Generator | None = None,
                      dc_heights: np.ndarray | None = None,
                      max_rounds: int = 8) -> RWPlacementDecision:
    """Choose ``k`` sites minimizing the combined read+write estimate.

    Seeding follows Algorithm 1 on the *read* population (macro-cluster
    centroids mapped to nearest candidates); greedy single-site swaps
    then optimize :func:`estimate_rw_cost`, which is where write
    propagation pulls the solution together.
    """
    dc_coords = np.atleast_2d(np.asarray(dc_coords, dtype=float))
    n_dc = dc_coords.shape[0]
    if n_dc == 0:
        raise ValueError("no candidate data centers")
    heights = _check_heights(dc_heights, n_dc)
    k = min(k, n_dc)
    rng = rng or np.random.default_rng(0)

    seed_clusters = list(read_clusters) or list(write_clusters)
    macros = macro_cluster(seed_clusters, k, rng)
    used = np.zeros(n_dc, dtype=bool)
    chosen: list[int] = []
    for macro in sorted(macros, key=lambda m: m.count, reverse=True):
        dists = np.linalg.norm(dc_coords - macro.centroid[None, :],
                               axis=1) + heights
        dists[used] = np.inf
        site = int(np.argmin(dists))
        used[site] = True
        chosen.append(site)
    while len(chosen) < k:
        dists = np.linalg.norm(
            dc_coords - macros[0].centroid[None, :], axis=1) + heights
        dists[used] = np.inf
        site = int(np.argmin(dists))
        used[site] = True
        chosen.append(site)

    def cost_of(sites: list[int]) -> float:
        picks = np.array(sites)
        return estimate_rw_cost(read_clusters, write_clusters,
                                dc_coords[picks], heights[picks])[0]

    best = cost_of(chosen)
    for _ in range(max_rounds):
        improved = False
        for i in range(len(chosen)):
            in_use = set(chosen)
            for candidate in range(n_dc):
                if candidate in in_use:
                    continue
                trial = chosen.copy()
                trial[i] = candidate
                value = cost_of(trial)
                if value < best - 1e-12:
                    chosen, best = trial, value
                    improved = True
                    in_use = set(chosen)
        if not improved:
            break

    picks = np.array(chosen)
    combined, read_mean, write_mean = estimate_rw_cost(
        read_clusters, write_clusters, dc_coords[picks], heights[picks])
    return RWPlacementDecision(tuple(chosen), tuple(macros), combined,
                               read_mean, write_mean)
