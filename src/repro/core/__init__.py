"""The paper's contribution: online clustering replica placement.

This package implements Sections III-B through III-D:

* :class:`ReplicaAccessSummary` — the per-replica online summary of user
  coordinates: at most *m* micro-clusters, updated on every access with
  O(m) work and shipped in under 1 KB per cluster (Section III-B);
* :func:`macro_cluster` and :func:`place_replicas` — Algorithm 1: merge
  the collected micro-clusters into *k* macro-clusters with weighted
  k-means and map each to its nearest candidate data center
  (Section III-C);
* :func:`estimate_average_delay` — predicted mean access delay of a
  placement, the quantity the migration policy compares;
* :class:`MigrationCostModel` / :class:`MigrationPolicy` — migrate only
  when the latency gain justifies the transfer cost (Section III-C);
* :mod:`repro.core.costs` — the analytic and empirical bandwidth/compute
  accounting behind Table II;
* :class:`ReplicationController` — the periodic control loop that ties
  summaries, placement and migration together on the simulator, with
  optional demand-driven adaptation of the replication degree *k*.

``MicroCluster`` is re-exported here under the paper's name; it is the
generic :class:`~repro.clustering.stream.ClusterFeature`.
"""

from repro.clustering.stream import ClusterFeature as MicroCluster
from repro.core.summarizer import ReplicaAccessSummary
from repro.core.macro import (
    MacroCluster,
    PlacementDecision,
    estimate_average_delay,
    macro_cluster,
    place_replicas,
)
from repro.core.migration import MigrationCostModel, MigrationPolicy, MigrationVerdict
from repro.core.readwrite import (
    RWPlacementDecision,
    estimate_rw_cost,
    place_replicas_rw,
)
from repro.core.costs import (
    CostTally,
    offline_bandwidth_bytes,
    offline_compute_ops,
    online_bandwidth_bytes,
    online_compute_ops,
)
from repro.core.controller import ControllerConfig, EpochReport, ReplicationController

__all__ = [
    "MicroCluster",
    "ReplicaAccessSummary",
    "MacroCluster",
    "PlacementDecision",
    "estimate_average_delay",
    "macro_cluster",
    "place_replicas",
    "MigrationCostModel",
    "MigrationPolicy",
    "MigrationVerdict",
    "RWPlacementDecision",
    "estimate_rw_cost",
    "place_replicas_rw",
    "CostTally",
    "online_bandwidth_bytes",
    "offline_bandwidth_bytes",
    "online_compute_ops",
    "offline_compute_ops",
    "ControllerConfig",
    "EpochReport",
    "ReplicationController",
]
