"""Availability-aware replica placement over hierarchical failure domains.

The paper's strategies (Section IV) minimize predicted mean access
latency and nothing else, so on a world where the closest candidates
share a rack they will happily stack every replica into one blast
radius.  Following Mills et al. (and the Availability Aware Continuous
Replica Placement Problem line of work), this module re-scores a
latency-only placement under the combined objective

    objective(sites) = predicted_mean_delay(sites)
                       + λ · cofailure_risk(sites)

where :meth:`repro.net.domains.FailureDomains.cofailure_risk` is the
mean pairwise co-failure probability of the placement and λ (in
milliseconds per unit of risk) prices how much extra latency one is
willing to pay to move a replica pair out of a shared failure domain.
λ = 0 is a hard contract, not a tendency: the refinement is skipped
entirely and the latency-only decision is returned bit-for-bit.

Three entry points, one per layer:

* :func:`refine_for_availability` — the greedy swap search itself, in
  the caller's position frame (used by the epoch controller);
* :class:`AvailabilityAwarePlacement` — a strategy wrapper for the
  offline evaluation path (:mod:`repro.placement`);
* :func:`bound_transfers` — caps the number of *new* sites a proposed
  placement may introduce over the incumbent, trading the least
  objective value for the smallest migration burst (used by the
  controller's ``max_epoch_moves`` knob).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.net.domains import FailureDomains
from repro.placement.base import (
    PlacementProblem,
    PlacementStrategy,
    average_access_delay,
)

__all__ = [
    "AvailabilityAwarePlacement",
    "bound_transfers",
    "refine_for_availability",
]

#: Improvement tolerance of the swap search — same epsilon as the
#: latency-only local search in :func:`repro.core.macro._refine_by_swaps`,
#: so a swap must beat the incumbent by more than float noise.
_TOL = 1e-12


def refine_for_availability(
        sites: Sequence[int],
        delay_of: Callable[[list[int]], float],
        domains: FailureDomains,
        lam: float,
        *,
        eligible: Sequence[int] | None = None,
        max_rounds: int = 8) -> list[int]:
    """Greedy single-swap descent on ``delay + λ·risk``.

    Parameters
    ----------
    sites:
        Starting placement, as positions in ``domains``'s frame (for the
        controller that is the candidate-position frame).
    delay_of:
        Callable returning the predicted mean delay of a position list —
        the *same* estimator that produced the latency-only proposal, so
        λ prices risk against exactly the quantity the migration policy
        reasons about.
    eligible:
        Optional iterable of positions that may host a replica (down or
        fenced sites excluded).  Defaults to every position.

    With ``lam <= 0`` the input is returned unchanged (λ=0 bit-identity
    contract).  Otherwise each round tries to swap every chosen site for
    every unused eligible position, taking any swap that improves the
    combined objective by more than the shared ``1e-12`` tolerance, until
    a full round passes without improvement or ``max_rounds`` is hit.
    """
    chosen = [int(s) for s in sites]
    if lam <= 0.0 or not chosen:
        return chosen
    if len(set(chosen)) != len(chosen):
        raise ValueError("placement sites must be distinct")
    if eligible is None:
        pool = list(range(domains.n))
    else:
        pool = sorted({int(p) for p in eligible})
    for p in chosen:
        if not 0 <= p < domains.n:
            raise ValueError(f"position {p} outside {domains.n} domains")

    def objective(candidate: list[int]) -> float:
        return delay_of(candidate) + lam * domains.cofailure_risk(candidate)

    best = objective(chosen)
    for _ in range(max_rounds):
        improved = False
        for slot in range(len(chosen)):
            in_use = set(chosen)
            for position in pool:
                if position in in_use:
                    continue
                trial = list(chosen)
                trial[slot] = position
                value = objective(trial)
                if value < best - _TOL:
                    best = value
                    chosen = trial
                    in_use = set(chosen)
                    improved = True
        if not improved:
            break
    return chosen


def bound_transfers(
        previous: Sequence[int],
        proposed: Sequence[int],
        limit: int | None,
        objective: Callable[[list[int]], float]) -> list[int]:
    """Cap how many *new* sites ``proposed`` introduces over ``previous``.

    Every site in the proposal that is not already installed costs one
    full object transfer when adopted (:meth:`MigrationCostModel
    .transfers_of_move`), so a placement that swings far toward safer
    domains can demand an unbounded migration burst in a single epoch.
    While the proposal exceeds ``limit`` new sites, the (new site,
    previously-installed site) substitution with the smallest combined-
    objective value is applied — ties broken by lowest site pair, so the
    trim is deterministic.  Growth proposals whose extra sites cannot be
    matched by droppable incumbents (``proposed`` larger than
    ``previous``) are left to exceed the cap by the growth amount.
    """
    result = [int(p) for p in proposed]
    if limit is None:
        return result
    if limit < 1:
        raise ValueError("transfer limit must be at least 1")
    prev = [int(p) for p in previous]
    while True:
        added = sorted(set(result) - set(prev))
        if len(added) <= limit:
            return result
        droppable = sorted(set(prev) - set(result))
        if not droppable:
            return result
        best: tuple[float, int, int] | None = None
        for new_site in added:
            slot = result.index(new_site)
            for keep_site in droppable:
                trial = list(result)
                trial[slot] = keep_site
                key = (objective(trial), new_site, keep_site)
                if best is None or key < best:
                    best = key
        _, new_site, keep_site = best
        result[result.index(new_site)] = keep_site


class AvailabilityAwarePlacement(PlacementStrategy):
    """Wrap any latency-only strategy with the λ-availability refinement.

    The base strategy proposes sites; with λ > 0 the proposal is refined
    by :func:`refine_for_availability` against the true-RTT mean delay
    (the same yardstick :func:`average_access_delay` reports), using a
    :class:`FailureDomains` annotation over the problem's candidate
    positions.  With λ = 0 the base strategy's answer is returned
    untouched — bit-for-bit the latency-only decision.
    """

    def __init__(self, base: PlacementStrategy, domains: FailureDomains,
                 availability_lambda: float, *, max_rounds: int = 8) -> None:
        if availability_lambda < 0:
            raise ValueError("availability_lambda must be non-negative")
        self.base = base
        self.domains = domains
        self.availability_lambda = float(availability_lambda)
        self.max_rounds = int(max_rounds)
        self.name = (f"availability({base.name}, "
                     f"lam={self.availability_lambda:g})")

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        sites = self.base.place(problem, rng)
        if self.availability_lambda == 0.0:
            return sites
        if self.domains.n != len(problem.candidates):
            raise ValueError(
                f"domains annotate {self.domains.n} positions but the "
                f"problem has {len(problem.candidates)} candidates")
        position_of = {node: pos
                       for pos, node in enumerate(problem.candidates)}

        def delay_of(positions: list[int]) -> float:
            chosen = [problem.candidates[p] for p in positions]
            return average_access_delay(problem.matrix, problem.clients,
                                        chosen)

        refined = refine_for_availability(
            [position_of[s] for s in sites], delay_of, self.domains,
            self.availability_lambda, max_rounds=self.max_rounds)
        return self._check(
            problem, tuple(problem.candidates[p] for p in refined))
