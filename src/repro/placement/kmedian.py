"""Offline k-median placement by local search (Arya et al., STOC 2001).

The replica placement objective (Section II-B) *is* the metric k-median
problem: choose k facilities (candidate sites) minimizing the summed
client-to-nearest-facility distance.  Single-swap local search is the
classic approximation (factor 5 for one swap); here it runs on network
coordinates (plus candidate heights), i.e. on the same information the
clustering strategies use — but over **every client coordinate**, so
like offline k-means it costs O(n) state and bandwidth and serves as an
upper baseline for what coordinate-based placement can achieve without
summarization.
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["KMedianPlacement"]


class KMedianPlacement(PlacementStrategy):
    """Single-swap local search on the coordinate-space k-median objective.

    Parameters
    ----------
    max_rounds:
        Full sweeps over (chosen, candidate) swap pairs; the search
        almost always converges in two or three.
    restarts:
        Independent random initialisations; best final objective wins.
    """

    name = "offline k-median"

    def __init__(self, max_rounds: int = 10, restarts: int = 2) -> None:
        if max_rounds < 1 or restarts < 1:
            raise ValueError("rounds and restarts must be positive")
        self.max_rounds = max_rounds
        self.restarts = restarts

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        client_coords = problem.client_coords()
        candidate_coords = problem.candidate_coords()
        heights = problem.candidate_heights()
        k = problem.effective_k
        n_candidates = len(problem.candidates)

        # Predicted cost of serving each client from each candidate.
        cost = np.linalg.norm(
            client_coords[:, None, :] - candidate_coords[None, :, :], axis=-1
        ) + heights[None, :]

        def objective(sites: list[int]) -> float:
            return float(cost[:, sites].min(axis=1).sum())

        best_sites: list[int] | None = None
        best_value = np.inf
        for _ in range(self.restarts):
            sites = list(rng.choice(n_candidates, size=k, replace=False))
            value = objective(sites)
            for _ in range(self.max_rounds):
                improved = False
                for i in range(k):
                    in_use = set(sites)
                    for candidate in range(n_candidates):
                        if candidate in in_use:
                            continue
                        trial = sites.copy()
                        trial[i] = candidate
                        trial_value = objective(trial)
                        if trial_value < value - 1e-12:
                            sites, value = trial, trial_value
                            improved = True
                            in_use = set(sites)
                if not improved:
                    break
            if value < best_value:
                best_sites, best_value = sites, value
        assert best_sites is not None
        return self._check(problem,
                           [problem.candidates[p] for p in best_sites])
