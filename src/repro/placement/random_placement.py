"""Random placement: the paper's uninformed baseline."""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["RandomPlacement"]


class RandomPlacement(PlacementStrategy):
    """Pick ``k`` candidate data centers uniformly at random.

    This is what storage systems that ignore the placement problem
    effectively do; the paper's headline result is a ≥ 35 % latency
    reduction over it.
    """

    name = "random"

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        chosen = rng.choice(len(problem.candidates), size=problem.effective_k,
                            replace=False)
        sites = [problem.candidates[int(i)] for i in chosen]
        return self._check(problem, sites)
