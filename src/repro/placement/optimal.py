"""Optimal placement by exhaustive search (the paper's oracle).

Enumerates every ``C(|candidates|, k)`` combination, computes the true
average access delay of each on the RTT matrix, and returns the best.
"Impractical" in deployment (it needs every client's latency to every
candidate) but exact — the paper includes it purely as the yardstick the
other strategies are measured against.

The scan is vectorised: the ``clients × candidates`` RTT block is built
once and each combination is a column-subset ``min``; the paper's scales
(C(30, 3) = 4 060, C(20, 7) = 77 520) take well under a second.
"""

from __future__ import annotations

from itertools import combinations, islice as itertools_islice

import numpy as np

from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["OptimalPlacement"]


class OptimalPlacement(PlacementStrategy):
    """Exhaustive minimisation of the true average access delay.

    Parameters
    ----------
    max_combinations:
        Safety valve: refuse instances whose search space exceeds this
        (the benchmark sizes stay far below the default).
    """

    name = "optimal"

    def __init__(self, max_combinations: int = 5_000_000) -> None:
        self.max_combinations = max_combinations

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        k = problem.effective_k
        n_candidates = len(problem.candidates)
        space_size = _n_combinations(n_candidates, k)
        if space_size > self.max_combinations:
            raise ValueError(
                f"search space C({n_candidates},{k}) = {space_size} exceeds "
                f"max_combinations={self.max_combinations}"
            )

        block = problem.matrix.rows(problem.clients, problem.candidates)
        best_positions: tuple[int, ...] | None = None
        best_total = np.inf
        # Chunked vectorised scan: gather (clients, chunk, k) RTTs, take
        # the per-client min over the k columns, sum over clients.
        chunk_size = max(1, 4_000_000 // (block.shape[0] * k))
        combo_iter = combinations(range(n_candidates), k)
        while True:
            chunk = list(itertools_islice(combo_iter, chunk_size))
            if not chunk:
                break
            idx = np.array(chunk, dtype=int)          # (c, k)
            totals = block[:, idx].min(axis=2).sum(axis=0)
            pos = int(np.argmin(totals))
            if totals[pos] < best_total:
                best_total = float(totals[pos])
                best_positions = tuple(int(x) for x in idx[pos])
        assert best_positions is not None
        sites = [problem.candidates[p] for p in best_positions]
        return self._check(problem, sites)


def _n_combinations(n: int, k: int) -> int:
    from math import comb
    return comb(n, k)
