"""Common interface and evaluation for placement strategies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.net.latency import LatencyMatrix

__all__ = ["PlacementProblem", "PlacementStrategy", "average_access_delay"]


@dataclass(frozen=True)
class PlacementProblem:
    """One instance of the replica placement problem (Section II-B).

    Attributes
    ----------
    matrix:
        Ground-truth RTTs over all nodes.
    candidates:
        Node indices that may host a replica (the available data
        centers, the paper's set *C*).
    clients:
        Node indices that access the object (the paper's *U*); disjoint
        from ``candidates`` in the paper's setup, though overlap is
        allowed.
    k:
        Target degree of replication.
    coords:
        Optional ``(n, d)`` *planar* network coordinates for every node
        in the matrix; required by the coordinate-based strategies.
    heights:
        Optional ``(n,)`` height-vector components (Vivaldi/RNP model of
        per-node access delay, in ms).  When present, the predicted cost
        of serving from node *j* is ``planar distance + heights[j]``
        (the requester's own height is the same for every choice, so it
        never affects a comparison).
    """

    matrix: LatencyMatrix
    candidates: tuple[int, ...]
    clients: tuple[int, ...]
    k: int
    coords: np.ndarray | None = field(default=None)
    heights: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if not self.candidates:
            raise ValueError("at least one candidate data center required")
        if not self.clients:
            raise ValueError("at least one client required")
        n = self.matrix.n
        for idx in (*self.candidates, *self.clients):
            if not 0 <= idx < n:
                raise ValueError(f"node index {idx} outside matrix of size {n}")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("candidate indices must be distinct")
        object.__setattr__(self, "candidates", tuple(int(c) for c in self.candidates))
        object.__setattr__(self, "clients", tuple(int(c) for c in self.clients))
        if self.coords is not None:
            coords = np.asarray(self.coords, dtype=float)
            if coords.ndim != 2 or coords.shape[0] != n:
                raise ValueError(
                    f"coords must be (n={n}, d), got {coords.shape}"
                )
            object.__setattr__(self, "coords", coords)
        if self.heights is not None:
            heights = np.asarray(self.heights, dtype=float)
            if heights.shape != (n,):
                raise ValueError(
                    f"heights must be (n={n},), got {heights.shape}"
                )
            if np.any(heights < 0):
                raise ValueError("heights must be non-negative")
            object.__setattr__(self, "heights", heights)

    @property
    def effective_k(self) -> int:
        """k capped at the number of candidates."""
        return min(self.k, len(self.candidates))

    def require_coords(self) -> np.ndarray:
        """Coordinates, or a clear error for strategies that need them."""
        if self.coords is None:
            raise ValueError(
                "this strategy requires network coordinates "
                "(set PlacementProblem.coords)"
            )
        return self.coords

    def candidate_coords(self) -> np.ndarray:
        """Coordinates of the candidate data centers."""
        return self.require_coords()[list(self.candidates)]

    def client_coords(self) -> np.ndarray:
        """Coordinates of the clients."""
        return self.require_coords()[list(self.clients)]

    def candidate_heights(self) -> np.ndarray:
        """Height components of the candidates (zeros when unset)."""
        if self.heights is None:
            return np.zeros(len(self.candidates))
        return self.heights[list(self.candidates)]


class PlacementStrategy(ABC):
    """A replica placement algorithm.

    Subclasses set :attr:`name` (used in reports) and implement
    :meth:`place`, returning ``problem.effective_k`` *distinct* candidate
    node indices (values from ``problem.candidates``, not positions).
    """

    name: str = "abstract"

    @abstractmethod
    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        """Choose replica sites for ``problem``."""

    def _check(self, problem: PlacementProblem,
               sites: Sequence[int]) -> tuple[int, ...]:
        """Validate a raw site list before returning it."""
        sites = tuple(int(s) for s in sites)
        if len(sites) != problem.effective_k:
            raise AssertionError(
                f"{self.name} returned {len(sites)} sites, "
                f"expected {problem.effective_k}"
            )
        if len(set(sites)) != len(sites):
            raise AssertionError(f"{self.name} returned duplicate sites")
        candidate_set = set(problem.candidates)
        for s in sites:
            if s not in candidate_set:
                raise AssertionError(f"{self.name} chose non-candidate {s}")
        return sites

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def average_access_delay(matrix: LatencyMatrix, clients: Sequence[int],
                         sites: Sequence[int]) -> float:
    """True mean access delay: each client reads its closest replica.

    This is the paper's objective ``l(o)/|U|`` computed on ground-truth
    RTTs (Section II-B) — the yardstick every figure reports.
    """
    clients = list(clients)
    sites = list(sites)
    if not clients or not sites:
        raise ValueError("clients and sites must be non-empty")
    block = matrix.rows(clients, sites)
    per_client = block.min(axis=1)
    registry = obs.get_registry()
    if registry.enabled:
        registry.counter("accesses.served").inc(len(clients))
        registry.histogram("access.delay_ms").observe_many(per_client)
    return float(per_client.mean())
