"""Greedy placement (Qiu, Padmanabhan & Voelker, INFOCOM 2002).

The classic related-work baseline: add replicas one at a time, each time
choosing the candidate that most reduces the total access delay of all
clients given the replicas already chosen.  Quality is typically within
a few percent of optimal, but — as the paper notes — it "effectively
reduces latency at a high computation cost": every step scans every
remaining candidate against every client, and it needs per-client
latency knowledge (O(n) state), which is exactly what the online
summary scheme avoids.
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["GreedyPlacement"]


class GreedyPlacement(PlacementStrategy):
    """Iteratively add the candidate with the largest marginal gain.

    Parameters
    ----------
    use_coords:
        ``False`` (default) evaluates marginal gains on true RTTs — the
        literature's formulation, which presumes measured client-to-
        candidate latencies.  ``True`` evaluates them on network
        coordinates (plus candidate heights), the information a
        deployable system actually has; quality then degrades with
        embedding error like the clustering strategies.
    """

    name = "greedy"

    def __init__(self, use_coords: bool = False) -> None:
        self.use_coords = use_coords
        if use_coords:
            self.name = "greedy (coords)"

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        k = problem.effective_k
        if self.use_coords:
            client_coords = problem.client_coords()
            candidate_coords = problem.candidate_coords()
            block = np.linalg.norm(
                client_coords[:, None, :] - candidate_coords[None, :, :],
                axis=-1,
            ) + problem.candidate_heights()[None, :]
        else:
            block = problem.matrix.rows(problem.clients, problem.candidates)
        n_clients, n_candidates = block.shape

        chosen: list[int] = []
        current_best = np.full(n_clients, np.inf)
        remaining = set(range(n_candidates))
        for _ in range(k):
            best_pos = -1
            best_total = np.inf
            for pos in remaining:
                total = np.minimum(current_best, block[:, pos]).sum()
                if total < best_total:
                    best_total = total
                    best_pos = pos
            chosen.append(best_pos)
            remaining.discard(best_pos)
            current_best = np.minimum(current_best, block[:, best_pos])

        sites = [problem.candidates[p] for p in chosen]
        return self._check(problem, sites)
