"""Replica placement strategies (Section IV's four contenders, plus two).

Every strategy consumes a :class:`PlacementProblem` — candidate data
centers, the client population, the target degree of replication *k*,
ground-truth RTTs and (for the informed strategies) network coordinates —
and returns *k* candidate indices.  Placements are always *evaluated* on
true RTTs via :func:`average_access_delay`, exactly as the paper does.

Implemented strategies:

* :class:`RandomPlacement` — the paper's ``random`` baseline;
* :class:`OfflineKMeansPlacement` — ``offline k-means clustering``:
  records every client coordinate centrally, clusters them, and picks
  the candidate nearest each centroid;
* :class:`OnlineClusteringPlacement` — the paper's contribution: builds
  per-replica micro-cluster summaries from a simulated access stream and
  runs Algorithm 1, optionally iterating to model gradual migration;
* :class:`OptimalPlacement` — exhaustive search over all
  ``C(|candidates|, k)`` placements (the paper's impractical oracle);
* :class:`GreedyPlacement` — the classic greedy heuristic of Qiu et al.
  (INFOCOM 2002), an informed related-work baseline;
* :class:`HotZonePlacement` — the cell-density heuristic of Szymaniak et
  al. (SAINT 2005), the related-work baseline the paper criticises for
  ignoring all but the most crowded cells;
* :class:`KMedianPlacement` — offline single-swap local search on the
  coordinate-space k-median objective (Arya et al.), the strongest
  baseline that, like offline k-means, needs every client coordinate;
* :class:`CodedPlacement` — erasure-coded object splitting after Chandy
  (2008): n fragments, any k reconstruct, delay = k-th order statistic
  (evaluate with :func:`coded_access_delay`).
"""

from repro.placement.base import (
    PlacementProblem,
    PlacementStrategy,
    average_access_delay,
)
from repro.placement.random_placement import RandomPlacement
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement
from repro.placement.optimal import OptimalPlacement
from repro.placement.greedy import GreedyPlacement
from repro.placement.hotzone import HotZonePlacement
from repro.placement.kmedian import KMedianPlacement
from repro.placement.coded import CodedPlacement, coded_access_delay
from repro.placement.availability import (
    AvailabilityAwarePlacement,
    bound_transfers,
    refine_for_availability,
)

__all__ = [
    "PlacementProblem",
    "PlacementStrategy",
    "average_access_delay",
    "AvailabilityAwarePlacement",
    "bound_transfers",
    "refine_for_availability",
    "RandomPlacement",
    "OfflineKMeansPlacement",
    "OnlineClusteringPlacement",
    "OptimalPlacement",
    "GreedyPlacement",
    "HotZonePlacement",
    "KMedianPlacement",
    "CodedPlacement",
    "coded_access_delay",
]
