"""Coded (split-object) placement — after Chandy's generalized strategy.

The paper's related work ([11], Chandy 2008) "solves the problem from a
different perspective by splitting each data object and ... plac[ing]
the pieces onto servers in a greedy way that minimizes data access
latency".  The modern form of object splitting is erasure coding: the
object becomes ``n`` fragments of which any ``k_required`` reconstruct
it, stored at ``n`` distinct sites for a storage overhead of
``n / k_required`` (versus ``r`` for ``r``-way replication).

A reading client fetches all fragments in parallel and completes when
the ``k_required``-th fragment arrives, so its delay is the
``k_required``-th smallest RTT among the fragment sites — an *order
statistic*, not a minimum.  At equal storage overhead this can beat
replication in the tail (more sites to be near) or lose in the median
(must wait for several), which is exactly the trade this module lets
the benchmarks measure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["CodedPlacement", "coded_access_delay"]


def coded_access_delay(matrix: LatencyMatrix, clients: Sequence[int],
                       sites: Sequence[int], k_required: int) -> float:
    """Mean delay when each read must reach ``k_required`` of ``sites``.

    With ``k_required == 1`` this is exactly
    :func:`~repro.placement.base.average_access_delay`.
    """
    clients = list(clients)
    sites = list(sites)
    if not clients or not sites:
        raise ValueError("clients and sites must be non-empty")
    if not 1 <= k_required <= len(sites):
        raise ValueError("k_required must lie in [1, len(sites)]")
    block = matrix.rows(clients, sites)
    kth = np.partition(block, k_required - 1, axis=1)[:, k_required - 1]
    return float(kth.mean())


class CodedPlacement(PlacementStrategy):
    """Place ``n_fragments`` coded fragments; reads need ``k_required``.

    The strategy optimizes the coordinate-predicted mean of the
    ``k_required``-th order statistic by greedy construction plus
    single-swap local search — the "greedy way" of [11], lifted to the
    coded objective.  ``problem.k`` is ignored; the fragment count is a
    property of the code, set at construction.

    Evaluate the result with :func:`coded_access_delay` (NOT the plain
    ``average_access_delay``, which assumes one fragment suffices).
    """

    name = "coded"

    def __init__(self, n_fragments: int = 6, k_required: int = 3,
                 max_rounds: int = 8) -> None:
        if n_fragments < 1 or not 1 <= k_required <= n_fragments:
            raise ValueError("need 1 <= k_required <= n_fragments")
        if max_rounds < 1:
            raise ValueError("rounds must be positive")
        self.n_fragments = n_fragments
        self.k_required = k_required
        self.max_rounds = max_rounds
        self.name = f"coded {k_required}-of-{n_fragments}"

    @property
    def storage_overhead(self) -> float:
        """Stored bytes relative to the object size."""
        return self.n_fragments / self.k_required

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        client_coords = problem.client_coords()
        candidate_coords = problem.candidate_coords()
        heights = problem.candidate_heights()
        n_candidates = len(problem.candidates)
        n = min(self.n_fragments, n_candidates)
        k_req = min(self.k_required, n)

        cost = np.linalg.norm(
            client_coords[:, None, :] - candidate_coords[None, :, :], axis=-1
        ) + heights[None, :]

        def objective(site_positions: list[int]) -> float:
            block = cost[:, site_positions]
            kth = np.partition(block, k_req - 1, axis=1)[:, k_req - 1]
            return float(kth.mean())

        # Greedy construction: each added fragment minimizes the
        # objective of the partial set (with k capped by the set size).
        chosen: list[int] = []
        for _ in range(n):
            best_pos, best_value = -1, np.inf
            partial_k = min(k_req, len(chosen) + 1)
            for candidate in range(n_candidates):
                if candidate in chosen:
                    continue
                block = cost[:, chosen + [candidate]]
                kth = np.partition(block, partial_k - 1,
                                   axis=1)[:, partial_k - 1]
                value = float(kth.mean())
                if value < best_value:
                    best_value, best_pos = value, candidate
            chosen.append(best_pos)

        # Single-swap local search on the full objective.
        best = objective(chosen)
        for _ in range(self.max_rounds):
            improved = False
            for i in range(len(chosen)):
                in_use = set(chosen)
                for candidate in range(n_candidates):
                    if candidate in in_use:
                        continue
                    trial = chosen.copy()
                    trial[i] = candidate
                    value = objective(trial)
                    if value < best - 1e-12:
                        chosen, best = trial, value
                        improved = True
                        in_use = set(chosen)
            if not improved:
                break

        sites = tuple(problem.candidates[p] for p in chosen)
        if len(set(sites)) != len(sites):
            raise AssertionError("coded placement chose duplicate sites")
        return sites
