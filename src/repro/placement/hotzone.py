"""HotZone-style cell-density placement (Szymaniak et al., SAINT 2005).

Related-work baseline: divide the coordinate space into a grid of cells,
rank cells by how many clients fall inside, and place one replica near
each of the *k* most crowded cells.  The paper points out the inherent
limitation this reproduction makes observable: every client outside the
top-k cells is ignored when choosing sites, so dispersed populations are
served poorly compared to clustering approaches.
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["HotZonePlacement"]


class HotZonePlacement(PlacementStrategy):
    """Place replicas at candidates nearest the most crowded grid cells.

    Parameters
    ----------
    cells_per_axis:
        Grid resolution; the coordinate bounding box of the clients is
        split into this many cells per dimension.
    """

    name = "hotzone"

    def __init__(self, cells_per_axis: int = 8) -> None:
        if cells_per_axis < 1:
            raise ValueError("grid needs at least one cell per axis")
        self.cells_per_axis = cells_per_axis

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        client_coords = problem.client_coords()
        candidate_coords = problem.candidate_coords()
        k = problem.effective_k

        lo = client_coords.min(axis=0)
        hi = client_coords.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        # Cell index per client, flattened to a single key per cell.
        scaled = (client_coords - lo) / span * self.cells_per_axis
        cell_idx = np.clip(scaled.astype(int), 0, self.cells_per_axis - 1)
        keys = np.ravel_multi_index(
            cell_idx.T, (self.cells_per_axis,) * client_coords.shape[1]
        )

        unique_keys, counts = np.unique(keys, return_counts=True)
        order = np.argsort(-counts)
        cell_width = span / self.cells_per_axis

        chosen: list[int] = []
        heights = problem.candidate_heights()
        used = np.zeros(len(problem.candidates), dtype=bool)
        for rank in order:
            if len(chosen) >= k:
                break
            key = unique_keys[rank]
            cell = np.array(np.unravel_index(
                key, (self.cells_per_axis,) * client_coords.shape[1]
            ))
            center = lo + (cell + 0.5) * cell_width
            dists = np.linalg.norm(candidate_coords - center[None, :],
                                   axis=1) + heights
            dists[used] = np.inf
            pos = int(np.argmin(dists))
            used[pos] = True
            chosen.append(pos)

        # Fewer occupied cells than k: fill with random unused candidates
        # (the heuristic has no further information to offer).
        if len(chosen) < k:
            unused = [p for p in range(len(problem.candidates)) if not used[p]]
            extra = rng.choice(len(unused), size=k - len(chosen), replace=False)
            chosen.extend(unused[int(e)] for e in extra)

        sites = [problem.candidates[p] for p in chosen]
        return self._check(problem, sites)
