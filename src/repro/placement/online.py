"""Online clustering placement — the paper's contribution (Section III).

The strategy reproduces how the deployed system behaves, compressed into
a batch call so it can be compared head-to-head with the alternatives:

1. replicas start at random candidate sites (there is no information
   yet, matching the paper's gradual-migration story);
2. an access stream runs: every client accesses its closest current
   replica, and that replica folds the client's coordinates into its
   :class:`~repro.core.summarizer.ReplicaAccessSummary` (at most *m*
   micro-clusters per replica);
3. the coordinator pools the summaries and runs Algorithm 1
   (:func:`~repro.core.macro.place_replicas`) to propose new sites;
4. steps 2–3 repeat for ``migration_rounds`` rounds, modelling the
   periodic epochs by which replicas gradually migrate.

Only ``k·m`` micro-clusters ever travel to the coordinator per round —
the bandwidth accounting is exposed through :attr:`last_summary_bytes`
and feeds the Table II benchmark.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.macro import place_replicas
from repro.core.summarizer import ReplicaAccessSummary
from repro.kernels import resolve_backend
from repro.kernels import wkmeans as _wk
from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["OnlineClusteringPlacement"]


class OnlineClusteringPlacement(PlacementStrategy):
    """The paper's online micro-cluster placement algorithm.

    Parameters
    ----------
    micro_clusters:
        Per-replica budget *m* (the paper finds m ≈ 4 already near-
        optimal; its cost examples use 100).
    migration_rounds:
        Placement epochs to run; each epoch observes a fresh access
        stream against the current sites then migrates.
    accesses_per_client:
        Accesses each client issues per epoch.
    radius_floor:
        Micro-cluster absorption floor (ms), see
        :class:`~repro.clustering.stream.OnlineClusterer`.
    selection:
        How clients choose which replica to access while summaries are
        being built: ``"coords"`` (predict with network coordinates, the
        deployable behaviour) or ``"true"`` (oracle lowest-latency).
    summary_loss:
        Probability that a replica's summary is lost on its way to the
        coordinator each round (a lossy wide-area control channel, the
        batch analogue of the chaos harness's flaky links).  A lost
        summary's micro-clusters simply do not inform that round's
        placement; its bytes are still charged — the transmission
        happened, the delivery did not.  ``0.0`` is the paper's
        fault-free behaviour.
    backend:
        Kernel backend for the numeric hot paths (micro-cluster
        absorption, k-means, candidate distances): ``"python"`` or
        ``"numpy"``; ``None`` follows the process-wide
        :mod:`repro.kernels` switch.
    """

    name = "online clustering"

    def __init__(self, micro_clusters: int = 10, migration_rounds: int = 2,
                 accesses_per_client: int = 3, radius_floor: float = 5.0,
                 selection: str = "coords",
                 summary_loss: float = 0.0,
                 backend: str | None = None) -> None:
        if micro_clusters < 1:
            raise ValueError("micro-cluster budget must be positive")
        if migration_rounds < 1:
            raise ValueError("need at least one migration round")
        if accesses_per_client < 1:
            raise ValueError("clients must access at least once")
        if selection not in ("coords", "true"):
            raise ValueError("selection must be 'coords' or 'true'")
        if not 0.0 <= summary_loss < 1.0:
            raise ValueError("summary loss must lie in [0, 1)")
        self.micro_clusters = micro_clusters
        self.migration_rounds = migration_rounds
        self.accesses_per_client = accesses_per_client
        self.radius_floor = radius_floor
        self.selection = selection
        self.summary_loss = summary_loss
        self.backend = None if backend is None else resolve_backend(backend)
        #: Control-plane bytes shipped during the most recent place().
        self.last_summary_bytes = 0
        #: Summaries dropped by the lossy channel in the last place().
        self.last_summaries_lost = 0

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        registry = obs.get_registry()
        with registry.phase("placement.online.place"):
            sites = self._place(problem, rng)
        if registry.enabled:
            registry.counter("placement.online.rounds").inc(
                self.migration_rounds)
            registry.counter("placement.online.summary_bytes").inc(
                self.last_summary_bytes)
            if self.last_summaries_lost:
                registry.counter("placement.online.summaries_lost").inc(
                    self.last_summaries_lost)
        return sites

    def _place(self, problem: PlacementProblem,
               rng: np.random.Generator) -> tuple[int, ...]:
        coords = problem.require_coords()
        candidate_coords = problem.candidate_coords()
        client_coords = problem.client_coords()
        k = problem.effective_k

        # Epoch 0: random initial sites (positions into candidates).
        positions = list(rng.choice(len(problem.candidates), size=k,
                                    replace=False))
        self.last_summary_bytes = 0
        self.last_summaries_lost = 0

        for _ in range(self.migration_rounds):
            summaries = {pos: ReplicaAccessSummary(self.micro_clusters,
                                                   self.radius_floor,
                                                   backend=self.backend)
                         for pos in positions}
            choice = self._client_choices(problem, positions)
            # Batched equivalent of recording each client's accesses one
            # by one: per replica, its clients in row order, each row
            # repeated accesses_per_client times — the same absorption
            # sequence, run through the block kernel.
            for pos in positions:
                rows = np.nonzero(choice == pos)[0]
                if rows.size:
                    block = np.repeat(client_coords[rows],
                                      self.accesses_per_client, axis=0)
                    summaries[pos].record_batch(block)

            pooled = []
            for summary in summaries.values():
                self.last_summary_bytes += summary.wire_size_bytes()
                if (self.summary_loss > 0.0
                        and rng.random() < self.summary_loss):
                    self.last_summaries_lost += 1
                    continue
                pooled.extend(summary.snapshot())
            if not pooled:
                # Every summary was lost: nothing to learn this round,
                # keep the current placement rather than moving blind.
                continue
            decision = place_replicas(pooled, k, candidate_coords, rng,
                                      dc_heights=problem.candidate_heights(),
                                      backend=self.backend)
            positions = list(decision.data_centers)

        sites = [problem.candidates[p] for p in positions]
        return self._check(problem, sites)

    def _client_choices(self, problem: PlacementProblem,
                        positions: list[int]) -> np.ndarray:
        """Which current replica (by position list index) each client uses."""
        site_nodes = [problem.candidates[p] for p in positions]
        if self.selection == "true":
            block = problem.matrix.rows(problem.clients, site_nodes)
            return np.asarray(positions)[np.argmin(block, axis=1)]
        client_coords = problem.client_coords()
        coords = problem.require_coords()
        site_coords = coords[site_nodes]
        site_heights = (np.zeros(len(site_nodes)) if problem.heights is None
                        else problem.heights[site_nodes])
        dists = _wk.cross_distances(client_coords, site_coords,
                                    b_heights=site_heights,
                                    backend=self.backend)
        return np.asarray(positions)[np.argmin(dists, axis=1)]
