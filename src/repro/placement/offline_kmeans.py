"""Offline k-means placement: the paper's centralized, unscalable rival.

Every client coordinate is recorded at a central server (O(n) bandwidth);
k-means clusters them and each cluster centroid claims the nearest unused
candidate data center.  Near-optimal quality, but cost grows with the
number of accesses — exactly the trade-off Table II contrasts with the
online scheme.

All distance and k-means maths run through :mod:`repro.kernels`
(``backend={"python","numpy"}``, ``None`` following the process-wide
switch), so this strategy participates in the backend-equivalence suite
like the online scheme.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import weighted_kmeans
from repro.kernels import resolve_backend
from repro.kernels import wkmeans as _wk
from repro.placement.base import PlacementProblem, PlacementStrategy

__all__ = ["OfflineKMeansPlacement", "assign_centroids_to_candidates"]


def assign_centroids_to_candidates(centroids: np.ndarray,
                                   centroid_weights: np.ndarray,
                                   candidate_coords: np.ndarray,
                                   k: int,
                                   candidate_heights: np.ndarray | None = None,
                                   backend: str | None = None
                                   ) -> list[int]:
    """Map cluster centroids to distinct candidate positions.

    Heaviest centroid first, nearest unused candidate each — the same
    tie-break rule Algorithm 1 uses, so the offline and online schemes
    differ only in how they summarize clients.  ``candidate_heights``
    (when given) are added to the planar distances, pricing in each
    candidate's access-link delay.  Returns *positions* into
    ``candidate_coords``; pads with candidates nearest the heaviest
    centroid if fewer centroids than ``k`` were supplied.
    """
    n_candidates = candidate_coords.shape[0]
    heights = (np.zeros(n_candidates) if candidate_heights is None
               else np.asarray(candidate_heights, dtype=float))
    k = min(k, n_candidates)
    used = np.zeros(n_candidates, dtype=bool)
    order = np.argsort(-np.asarray(centroid_weights, dtype=float))
    chosen: list[int] = []
    for idx in order:
        if len(chosen) >= k:
            break
        dists = _wk.cross_distances(centroids[idx][None, :], candidate_coords,
                                    b_heights=heights, backend=backend)[0]
        dists[used] = np.inf
        pos = int(np.argmin(dists))
        used[pos] = True
        chosen.append(pos)
    while len(chosen) < k:
        anchor = centroids[order[0]]
        dists = _wk.cross_distances(anchor[None, :], candidate_coords,
                                    b_heights=heights, backend=backend)[0]
        dists[used] = np.inf
        pos = int(np.argmin(dists))
        used[pos] = True
        chosen.append(pos)
    return chosen


class OfflineKMeansPlacement(PlacementStrategy):
    """Cluster all recorded client coordinates; place at the centroids."""

    name = "offline k-means"

    def __init__(self, n_init: int = 4, backend: str | None = None) -> None:
        self.n_init = n_init
        self.backend = None if backend is None else resolve_backend(backend)

    def place(self, problem: PlacementProblem,
              rng: np.random.Generator) -> tuple[int, ...]:
        client_coords = problem.client_coords()
        k = problem.effective_k
        result = weighted_kmeans(client_coords, k, rng=rng,
                                 n_init=self.n_init, backend=self.backend)
        weights = result.cluster_weights()
        positions = assign_centroids_to_candidates(
            result.centroids, weights, problem.candidate_coords(), k,
            problem.candidate_heights(), backend=self.backend,
        )
        sites = [problem.candidates[p] for p in positions]
        return self._check(problem, sites)
