"""Timeline experiments: access delay over time under shifting demand.

The paper's figures are steady-state averages; the *dynamic* story —
gradual migration chasing a moving population — only shows up over
time.  :func:`run_timeline` runs the full simulated store under a
temporal pattern for each policy configuration and returns time-binned
mean read delays, ready for the timeline bench, examples, or plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.experiment import draw_candidates
from repro.coords.embedding import embed_matrix
from repro.core.controller import ControllerConfig
from repro.core.migration import MigrationPolicy
from repro.net.latency import LatencyMatrix
from repro.net.planetlab import PlanetLabParams, synthetic_planetlab_matrix
from repro.net.topology import GeoTopology
from repro.sim.simulator import Simulator
from repro.store.kvstore import ReplicatedStore
from repro.workloads.access import AccessWorkload
from repro.workloads.population import ClientPopulation
from repro.workloads.temporal import TemporalPattern

__all__ = ["TimelinePolicy", "TimelineResult", "run_timeline"]


@dataclass(frozen=True)
class TimelinePolicy:
    """One store configuration to run the timeline under.

    ``epoch_period_ms=None`` disables placement epochs entirely (the
    static baseline); otherwise the controller runs with the given
    migration threshold.
    """

    name: str
    epoch_period_ms: float | None = 30_000.0
    min_relative_gain: float = 0.05
    k: int = 2

    def __post_init__(self) -> None:
        if self.epoch_period_ms is not None and self.epoch_period_ms <= 0:
            raise ValueError("epoch period must be positive")
        if self.k < 1:
            raise ValueError("k must be positive")


@dataclass(frozen=True)
class TimelineResult:
    """Binned mean read delays per policy."""

    bin_edges_ms: tuple[float, ...]
    series: dict[str, list[float]]          # policy name -> mean per bin
    migrations: dict[str, int]

    @property
    def bin_centers_s(self) -> list[float]:
        """Bin centers in seconds, for plotting."""
        edges = self.bin_edges_ms
        return [(a + b) / 2000.0 for a, b in zip(edges, edges[1:])]


def run_timeline(pattern_factory, policies: Sequence[TimelinePolicy],
                 n_nodes: int = 80, n_dc: int = 12,
                 duration_ms: float = 240_000.0,
                 bin_ms: float = 20_000.0,
                 rate_per_second: float = 150.0,
                 seed: int = 0) -> TimelineResult:
    """Run the same shifting workload under each policy.

    Parameters
    ----------
    pattern_factory:
        ``(topology) -> TemporalPattern`` — built per run because
        patterns usually need the topology (e.g. regional shifts).
    policies:
        Store configurations to compare; each sees an *identical* world
        (same matrix, coordinates, candidates, workload seed).
    """
    if duration_ms <= 0 or bin_ms <= 0 or duration_ms < bin_ms:
        raise ValueError("need duration >= bin size > 0")
    matrix, topology = synthetic_planetlab_matrix(
        PlanetLabParams(n=n_nodes), seed=seed)
    embedding = embed_matrix(matrix, system="rnp", rounds=100,
                             rng=np.random.default_rng(seed + 1))
    planar = embedding.coords[:, :embedding.space.dim]
    candidates, clients = draw_candidates(matrix, n_dc,
                                          np.random.default_rng(seed + 2))

    edges = tuple(np.arange(0.0, duration_ms + bin_ms / 2, bin_ms))
    series: dict[str, list[float]] = {}
    migrations: dict[str, int] = {}
    for policy in policies:
        sim = Simulator(seed=seed)
        store = ReplicatedStore(sim, matrix, candidates, planar,
                                selection="oracle")
        store.create_object(
            "obj", k=policy.k,
            controller_config=ControllerConfig(k=policy.k,
                                               max_micro_clusters=10),
            policy=MigrationPolicy(
                min_relative_gain=policy.min_relative_gain,
                min_absolute_gain_ms=0.0),
            epoch_period_ms=policy.epoch_period_ms,
        )
        pattern: TemporalPattern = pattern_factory(topology)
        AccessWorkload(store, ClientPopulation.uniform(clients), ["obj"],
                       rate_per_second=rate_per_second, pattern=pattern)
        sim.run_until(duration_ms)

        reads = [(r.time, r.delay_ms) for r in store.log.records
                 if r.kind == "read"]
        bins: list[float] = []
        for lo, hi in zip(edges, edges[1:]):
            window = [d for t, d in reads if lo <= t < hi]
            bins.append(float(np.mean(window)) if window else float("nan"))
        series[policy.name] = bins
        migrations[policy.name] = sum(
            1 for r in store.epoch_reports("obj") if r.migrated)
    return TimelineResult(edges, series, migrations)
