"""Export experiment results: CSV for plotting, JSON for archiving.

CSV is long-form and lossy-but-convenient; the JSON round-trip
(:func:`figure_to_json` / :func:`figure_from_json`) is lossless for a
:class:`~repro.analysis.experiment.FigureResult`, so a regenerated
figure can be diffed against an archived run.

:func:`metrics_to_json` / :func:`metrics_to_csv` export a
:class:`~repro.obs.MetricsRegistry` (and optionally a
:class:`~repro.obs.Tracer` summary) — the ``--metrics-out`` CLI flag
and the benchmark harness go through them.  The JSON document carries a
``schema`` marker (``repro.obs/v1``) so downstream tooling can detect
format drift.
"""

from __future__ import annotations

import csv
import json
from typing import Sequence

from repro.analysis.experiment import FigureResult, Table2Row
from repro.analysis.stats import SeriesPoint, Summary
from repro.obs import MetricsRegistry, Tracer

__all__ = ["figure_to_csv", "table2_to_csv", "figure_to_json",
           "figure_from_json", "metrics_to_json", "metrics_to_csv",
           "METRICS_SCHEMA"]

#: Schema marker written into every metrics JSON document.
METRICS_SCHEMA = "repro.obs/v1"


def figure_to_csv(result: FigureResult, path: str) -> None:
    """Write a figure as long-form CSV.

    Columns: ``series, x, mean, std, ci95_half_width, n`` — one row per
    (series, x) point, ready for pandas/gnuplot/matplotlib.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "x", "mean_ms", "std_ms",
                         "ci95_half_width_ms", "n_runs"])
        for name, points in result.series.items():
            for point in points:
                s = point.summary
                writer.writerow([name, point.x, f"{s.mean:.6f}",
                                 f"{s.std:.6f}", f"{s.ci95_half_width:.6f}",
                                 s.n])


def figure_to_json(result: FigureResult, path: str) -> None:
    """Persist a figure losslessly as JSON."""
    payload = {
        "name": result.name,
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "series": {
            name: [
                {"x": p.x, "mean": p.summary.mean, "std": p.summary.std,
                 "ci95_half_width": p.summary.ci95_half_width,
                 "n": p.summary.n}
                for p in points
            ]
            for name, points in result.series.items()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def figure_from_json(path: str) -> FigureResult:
    """Load a figure previously saved with :func:`figure_to_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    for field in ("name", "xlabel", "ylabel", "series"):
        if field not in payload:
            raise ValueError(f"figure JSON missing field {field!r}")
    series = {
        name: [
            SeriesPoint(float(p["x"]),
                        Summary(float(p["mean"]), float(p["std"]),
                                float(p["ci95_half_width"]), int(p["n"])))
            for p in points
        ]
        for name, points in payload["series"].items()
    }
    return FigureResult(payload["name"], payload["xlabel"],
                        payload["ylabel"], series)


def metrics_to_json(registry: MetricsRegistry, path: str,
                    tracer: Tracer | None = None,
                    include_spans: bool = False) -> None:
    """Write a metrics registry (and optional trace summary) as JSON.

    The document layout::

        {
          "schema": "repro.obs/v1",
          "counters":     {name: value, ...},
          "gauges":       {name: value, ...},
          "histograms":   {name: {bounds, bucket_counts, count, total,
                                  mean, min, max, p50, p99, p999}, ...},
          "phase_timers": {name: {calls, total_seconds, mean_seconds,
                                  max_seconds}, ...},
          "trace":        {capacity, recorded, retained, dropped,
                           kinds: {...}}        # when a tracer is given
        }
    """
    payload: dict = {"schema": METRICS_SCHEMA, **registry.snapshot()}
    if tracer is not None:
        payload["trace"] = tracer.snapshot(include_spans=include_spans)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def metrics_to_csv(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics registry as long-form CSV.

    Columns: ``kind, name, field, value`` — counters and gauges get one
    ``value`` row; histograms and timers one row per scalar statistic,
    plus ``bucket_le_<bound>`` rows for histogram buckets.
    """
    snap = registry.snapshot()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "field", "value"])
        for name, value in snap["counters"].items():
            writer.writerow(["counter", name, "value", value])
        for name, value in snap["gauges"].items():
            writer.writerow(["gauge", name, "value", value])
        for name, hist in snap["histograms"].items():
            for stat in ("count", "total", "mean", "min", "max",
                         "p50", "p99", "p999"):
                writer.writerow(["histogram", name, stat, hist[stat]])
            bounds = [*hist["bounds"], "inf"]
            for bound, count in zip(bounds, hist["bucket_counts"]):
                writer.writerow(["histogram", name, f"bucket_le_{bound}",
                                 count])
        for name, timer in snap["phase_timers"].items():
            for stat in ("calls", "total_seconds", "mean_seconds",
                         "max_seconds"):
                writer.writerow(["phase_timer", name, stat, timer[stat]])


def table2_to_csv(rows: Sequence[Table2Row], path: str) -> None:
    """Write Table II measurements as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "n_accesses", "k", "m",
            "online_bytes", "offline_bytes",
            "online_seconds", "offline_seconds", "online_ingest_seconds",
            "online_bytes_analytic", "offline_bytes_analytic",
        ])
        for row in rows:
            writer.writerow([
                row.n_accesses, row.k, row.m,
                row.online_bytes, row.offline_bytes,
                f"{row.online_seconds:.6f}", f"{row.offline_seconds:.6f}",
                f"{row.online_ingest_seconds:.6f}",
                row.online_bytes_analytic, row.offline_bytes_analytic,
            ])
