"""Experiment harness: the paper's evaluation, reproducible.

:mod:`repro.analysis.experiment` contains one entry point per evaluation
artifact (Figures 1–3, Table II, plus this repo's ablations); every
entry point averages over seeded runs exactly as the paper does
("averaged over 30 simulation runs each of which began with different
candidate replica locations").  :mod:`repro.analysis.report` renders the
results as the text tables the benchmark harness prints, and
:mod:`repro.analysis.stats` provides the summary statistics.
"""

from repro.analysis.stats import (
    PairedComparison,
    SeriesPoint,
    Summary,
    compare_paired,
    summarize,
)
from repro.analysis.experiment import (
    EvaluationSetting,
    FigureResult,
    Table2Row,
    compute_table2_row,
    default_strategies,
    draw_candidates,
    run_comparison,
    run_coord_ablation,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)
from repro.analysis.charts import render_chart
from repro.analysis.report import format_figure, format_table2
from repro.analysis.reportgen import generate_report
from repro.analysis.timeline import TimelinePolicy, TimelineResult, run_timeline

__all__ = [
    "PairedComparison",
    "SeriesPoint",
    "Summary",
    "compare_paired",
    "summarize",
    "EvaluationSetting",
    "FigureResult",
    "Table2Row",
    "compute_table2_row",
    "default_strategies",
    "draw_candidates",
    "run_comparison",
    "run_coord_ablation",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_table2",
    "format_figure",
    "format_table2",
    "render_chart",
    "generate_report",
    "TimelinePolicy",
    "TimelineResult",
    "run_timeline",
]
