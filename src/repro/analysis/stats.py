"""Summary statistics and significance tests for experiment results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["Summary", "SeriesPoint", "summarize", "PairedComparison",
           "compare_paired"]


@dataclass(frozen=True)
class Summary:
    """Mean with dispersion for a set of run outcomes."""

    mean: float
    std: float
    ci95_half_width: float
    n: int

    @property
    def ci95(self) -> tuple[float, float]:
        """95 % confidence interval for the mean."""
        return (self.mean - self.ci95_half_width,
                self.mean + self.ci95_half_width)


@dataclass(frozen=True)
class SeriesPoint:
    """One x-position of a figure series."""

    x: float
    summary: Summary

    @property
    def mean(self) -> float:
        return self.summary.mean


def summarize(values: Sequence[float]) -> Summary:
    """Mean, standard deviation and t-based 95 % CI half-width.

    Examples
    --------
    >>> s = summarize([10.0, 20.0, 30.0])
    >>> s.mean, s.n
    (20.0, 3)
    >>> s.std
    10.0
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(mean, 0.0, 0.0, 1)
    std = float(arr.std(ddof=1))
    sem = std / np.sqrt(arr.size)
    t = float(scipy_stats.t.ppf(0.975, df=arr.size - 1))
    return Summary(mean, std, t * sem, int(arr.size))


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired significance test between two strategies.

    ``mean_difference`` is ``a - b`` (negative = a is faster);
    ``p_value`` is from the two-sided paired t-test; ``significant`` is
    judged at the given alpha.
    """

    mean_a: float
    mean_b: float
    mean_difference: float
    p_value: float
    significant: bool
    n: int

    @property
    def a_is_better(self) -> bool:
        """Whether a achieved the lower mean delay, significantly."""
        return self.significant and self.mean_difference < 0


def compare_paired(a: Sequence[float], b: Sequence[float],
                   alpha: float = 0.01) -> PairedComparison:
    """Paired two-sided t-test between per-run delays of two strategies.

    The experiment harness evaluates every strategy on the *same* run
    splits (`run_comparison` is paired by construction), so the paired
    test is the right one: it cancels the run-to-run variance of the
    candidate draws, which dwarfs the strategy effect.
    """
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.shape != b_arr.shape or a_arr.size < 2:
        raise ValueError("need two equally sized samples with n >= 2")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must lie in (0, 1)")
    differences = a_arr - b_arr
    if np.allclose(differences, 0.0):
        # Identical runs: no evidence of any difference.
        return PairedComparison(float(a_arr.mean()), float(b_arr.mean()),
                                0.0, 1.0, False, int(a_arr.size))
    spread = float(differences.std(ddof=1))
    if spread < 1e-12 * max(abs(float(differences.mean())), 1.0):
        # A perfectly consistent non-zero difference: the t statistic is
        # unbounded; report maximal significance rather than warn.
        p_value = 0.0
    else:
        result = scipy_stats.ttest_rel(a_arr, b_arr)
        p_value = float(result.pvalue)
    return PairedComparison(
        mean_a=float(a_arr.mean()),
        mean_b=float(b_arr.mean()),
        mean_difference=float(differences.mean()),
        p_value=p_value,
        significant=p_value < alpha,
        n=int(a_arr.size),
    )
