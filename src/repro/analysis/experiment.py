"""The paper's evaluation, as callable experiments.

The methodology mirrors Section IV-A: one 226-node matrix (synthetic
PlanetLab; see DESIGN.md §2), network coordinates assigned once, then for
each configuration ``n_runs`` independent draws of candidate replica
locations; the remaining nodes are the clients, every client reads its
closest replica, and the reported number is the true mean access delay.

Every runner in this module executes through :mod:`repro.runner`: the
sweep grid is decomposed into independent *(sweep point, strategy, run)*
jobs whose random streams derive from the job identity alone, so
``jobs=4`` produces bit-identical series to ``jobs=1`` and an
interrupted sweep resumes from its result cache (``cache_dir=...,
resume=True``).  See ``docs/runner.md``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro import obs

from repro.clustering.kmeans import weighted_kmeans
from repro.coords.embedding import embed_matrix
from repro.core.costs import offline_bandwidth_bytes, online_bandwidth_bytes
from repro.core.summarizer import ReplicaAccessSummary
from repro.core.macro import place_replicas
from repro.net.latency import LatencyMatrix
from repro.net.planetlab import PlanetLabParams, synthetic_planetlab_matrix
from repro.placement.base import PlacementStrategy
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement
from repro.placement.optimal import OptimalPlacement
from repro.placement.random_placement import RandomPlacement
from repro.analysis.stats import SeriesPoint, summarize

__all__ = [
    "EvaluationSetting",
    "FigureResult",
    "Table2Row",
    "compute_table2_row",
    "default_strategies",
    "draw_candidates",
    "run_comparison",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_table2",
    "run_coord_ablation",
]


@dataclass(frozen=True)
class EvaluationSetting:
    """The shared experimental setting of Section IV-A.

    Attributes
    ----------
    n_nodes:
        Total nodes emulated (paper: 226 PlanetLab hosts).
    n_runs:
        Independent candidate draws per configuration (paper: 30).
    coord_system:
        How nodes get coordinates: ``"rnp"`` (the paper's system;
        default), ``"vivaldi"``, ``"gnp"`` or ``"mds"``.  The
        decentralized systems carry height vectors, which the placement
        strategies use to price per-node access delay.
    embed_rounds:
        Gossip rounds for the decentralized systems.
    candidate_mode:
        How each run draws its candidate data centers: ``"dispersed"``
        (the paper's geographically diverse sites) or ``"uniform"``.
    seed:
        Master seed: drives the matrix, the embedding and every run.
    """

    n_nodes: int = 226
    n_runs: int = 30
    coord_system: str = "rnp"
    embed_rounds: int = 100
    candidate_mode: str = "dispersed"
    seed: int = 0

    def build(self) -> tuple[LatencyMatrix, np.ndarray, np.ndarray | None]:
        """Materialize (matrix, planar coordinates, heights-or-None)."""
        matrix, _ = synthetic_planetlab_matrix(
            PlanetLabParams(n=self.n_nodes), seed=self.seed)
        result = embed_matrix(matrix, system=self.coord_system,
                              rounds=self.embed_rounds,
                              rng=np.random.default_rng(self.seed + 1))
        planar = result.coords[:, :result.space.dim]
        heights = (result.coords[:, -1] if result.space.use_height else None)
        return matrix, planar, heights


@dataclass(frozen=True)
class FigureResult:
    """Series data for one reproduced figure."""

    name: str
    xlabel: str
    ylabel: str
    series: dict[str, list[SeriesPoint]]

    def means(self, series_name: str) -> list[float]:
        """Mean values of one series, in x order."""
        return [p.mean for p in self.series[series_name]]

    def xs(self, series_name: str) -> list[float]:
        """x positions of one series."""
        return [p.x for p in self.series[series_name]]


def default_strategies(micro_clusters: int = 10) -> list[PlacementStrategy]:
    """The paper's four contenders, in its presentation order."""
    return [
        RandomPlacement(),
        OfflineKMeansPlacement(),
        OnlineClusteringPlacement(micro_clusters=micro_clusters),
        OptimalPlacement(),
    ]


def draw_candidates(matrix: LatencyMatrix, n_dc: int,
                     rng: np.random.Generator,
                     mode: str = "dispersed"
                     ) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """One run's split into candidate data centers and clients.

    ``mode="dispersed"`` (default) reproduces the paper's setup: the
    candidate nodes are "dispersed at diverse geographic locations",
    each representing a different data center.  Candidates are drawn by
    randomized farthest-point sampling on true RTTs (probability
    proportional to squared distance from the already-chosen set), so
    every run gets a different but always geographically diverse set.
    ``mode="uniform"`` draws candidates uniformly from the nodes, i.e.
    proportional to client density — a harsher setting for the paper's
    claims, kept for the sensitivity benchmarks.
    """
    n_nodes = matrix.n
    if mode == "uniform":
        picks = rng.choice(n_nodes, size=n_dc, replace=False)
        candidates = tuple(int(p) for p in picks)
    elif mode == "dispersed":
        first = int(rng.integers(0, n_nodes))
        chosen = [first]
        min_dist = matrix.rtt[first].copy()
        for _ in range(n_dc - 1):
            weights = min_dist ** 2
            weights[chosen] = 0.0
            total = weights.sum()
            if total <= 0:  # degenerate matrix: fall back to uniform
                remaining = [i for i in range(n_nodes) if i not in set(chosen)]
                chosen.append(int(rng.choice(remaining)))
            else:
                nxt = int(rng.choice(n_nodes, p=weights / total))
                chosen.append(nxt)
                min_dist = np.minimum(min_dist, matrix.rtt[nxt])
        candidates = tuple(chosen)
    else:
        raise ValueError(f"unknown candidate mode {mode!r}")
    taken = set(candidates)
    clients = tuple(i for i in range(n_nodes) if i not in taken)
    return candidates, clients


def _world_digest(matrix: LatencyMatrix, coords: np.ndarray,
                  heights: np.ndarray | None) -> str:
    """Content digest of an explicitly supplied world, for cache keys."""
    digest = hashlib.sha256()
    rtt = np.ascontiguousarray(matrix.rtt)
    digest.update(repr(rtt.shape).encode())
    digest.update(rtt.tobytes())
    coords = np.ascontiguousarray(coords)
    digest.update(repr(coords.shape).encode())
    digest.update(coords.tobytes())
    if heights is not None:
        digest.update(np.ascontiguousarray(heights).tobytes())
    return digest.hexdigest()


def run_comparison(matrix: LatencyMatrix, coords: np.ndarray,
                   strategies: Sequence[PlacementStrategy],
                   n_dc: int, k: int, n_runs: int,
                   seed: int = 0,
                   heights: np.ndarray | None = None,
                   candidate_mode: str = "dispersed", *,
                   jobs: int | None = 1,
                   cache_dir: str | None = None,
                   resume: bool = False,
                   chunk_size: int | None = None) -> dict[str, list[float]]:
    """Mean access delay per strategy over ``n_runs`` candidate draws.

    Every strategy sees the *same* candidate/client split in each run,
    so the comparison is paired (as in the paper's simulator): each
    (strategy, run) cell re-derives the run's candidate stream from
    ``(seed, run)``, independent of which worker executes it or in what
    order.  ``jobs`` fans the cells out over worker processes
    (``None`` = one per CPU); results are bit-identical at any
    parallelism.
    """
    if n_dc >= matrix.n:
        raise ValueError("need at least one client node")
    from repro.runner import PlacementRunSpec, as_job_strategy, execute
    world = (matrix, coords, heights)
    world_key = (_world_digest(matrix, coords, heights)
                 if cache_dir is not None else None)
    specs = [
        PlacementRunSpec(
            sweep="comparison", series=strategy.name, x=float(k),
            run_index=run, n_dc=n_dc, k=k,
            strategy=as_job_strategy(strategy), seed=seed,
            candidate_mode=candidate_mode, world_key=world_key)
        for strategy in strategies for run in range(n_runs)
    ]
    results = execute(specs, jobs=jobs, cache_dir=cache_dir, resume=resume,
                      world=world, chunk_size=chunk_size)
    delays: dict[str, list[float]] = {s.name: [] for s in strategies}
    for spec, delay in zip(specs, results):
        delays[spec.series].append(delay)
    return delays


def _sweep(setting: EvaluationSetting,
           strategies_for_x: Callable[[float], Sequence[PlacementStrategy]],
           xs: Sequence[float], n_dc_for_x: Callable[[float], int],
           k_for_x: Callable[[float], int], *,
           sweep_name: str,
           jobs: int | None = 1,
           cache_dir: str | None = None,
           resume: bool = False,
           chunk_size: int | None = None) -> dict[str, list[SeriesPoint]]:
    """Fan one figure sweep out over the runner and reassemble its series.

    Workers materialize the world from ``setting`` themselves (memoized
    per process), so a fully cached resume never even builds the matrix.
    """
    from repro.runner import PlacementRunSpec, as_job_strategy, execute
    specs: list[PlacementRunSpec] = []
    series_order: list[str] = []
    xs_by_series: dict[str, list[float]] = {}
    for x in xs:
        if n_dc_for_x(x) >= setting.n_nodes:
            raise ValueError("need at least one client node")
        for strategy in strategies_for_x(x):
            name = strategy.name
            if name not in xs_by_series:
                series_order.append(name)
                xs_by_series[name] = []
            xs_by_series[name].append(float(x))
            job_strategy = as_job_strategy(strategy)
            for run in range(setting.n_runs):
                specs.append(PlacementRunSpec(
                    sweep=sweep_name, series=name, x=float(x),
                    run_index=run, n_dc=n_dc_for_x(x), k=k_for_x(x),
                    strategy=job_strategy, seed=setting.seed,
                    candidate_mode=setting.candidate_mode, setting=setting))
    results = execute(specs, jobs=jobs, cache_dir=cache_dir, resume=resume,
                      chunk_size=chunk_size)
    delays: dict[tuple[str, float], list[float]] = {}
    for spec, delay in zip(specs, results):
        delays.setdefault((spec.series, spec.x), []).append(delay)
    return {
        name: [SeriesPoint(x, summarize(delays[(name, x)]))
               for x in xs_by_series[name]]
        for name in series_order
    }


def run_figure1(setting: EvaluationSetting | None = None,
                datacenter_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
                k: int = 3,
                micro_clusters: int = 10, *,
                jobs: int | None = 1,
                cache_dir: str | None = None,
                resume: bool = False,
                chunk_size: int | None = None) -> FigureResult:
    """Figure 1: impact of the number of available data centers (k = 3)."""
    setting = setting or EvaluationSetting()
    series = _sweep(
        setting,
        strategies_for_x=lambda _x: default_strategies(micro_clusters),
        xs=datacenter_counts,
        n_dc_for_x=int,
        k_for_x=lambda _x: k,
        sweep_name="figure1",
        jobs=jobs, cache_dir=cache_dir, resume=resume,
        chunk_size=chunk_size,
    )
    return FigureResult(
        name="Figure 1",
        xlabel=f"number of data centers ({k} replicas)",
        ylabel="average access delay (ms)",
        series=series,
    )


def run_figure2(setting: EvaluationSetting | None = None,
                replica_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
                n_dc: int = 20,
                micro_clusters: int = 10, *,
                jobs: int | None = 1,
                cache_dir: str | None = None,
                resume: bool = False,
                chunk_size: int | None = None) -> FigureResult:
    """Figure 2: impact of the degree of replication (20 data centers)."""
    setting = setting or EvaluationSetting()
    series = _sweep(
        setting,
        strategies_for_x=lambda _x: default_strategies(micro_clusters),
        xs=replica_counts,
        n_dc_for_x=lambda _x: n_dc,
        k_for_x=int,
        sweep_name="figure2",
        jobs=jobs, cache_dir=cache_dir, resume=resume,
        chunk_size=chunk_size,
    )
    return FigureResult(
        name="Figure 2",
        xlabel=f"number of replicas ({n_dc} data centers)",
        ylabel="average access delay (ms)",
        series=series,
    )


def run_figure3(setting: EvaluationSetting | None = None,
                micro_cluster_counts: Sequence[int] = (1, 2, 4, 7, 11),
                replica_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
                n_dc: int = 20, *,
                jobs: int | None = 1,
                cache_dir: str | None = None,
                resume: bool = False,
                chunk_size: int | None = None) -> FigureResult:
    """Figure 3: online clustering delay vs. k, one series per m.

    Unlike Figures 1–2 the series are *micro-cluster budgets* of the
    same strategy, so the cells are built directly rather than through
    :func:`_sweep` (which keys series by strategy name).
    """
    setting = setting or EvaluationSetting()
    if n_dc >= setting.n_nodes:
        raise ValueError("need at least one client node")
    from repro.runner import PlacementRunSpec, execute, strategy_spec
    specs: list[PlacementRunSpec] = []
    for m in micro_cluster_counts:
        job_strategy = strategy_spec("online", micro_clusters=int(m))
        for k in replica_counts:
            for run in range(setting.n_runs):
                specs.append(PlacementRunSpec(
                    sweep="figure3", series=f"{m} micro-clusters",
                    x=float(k), run_index=run, n_dc=n_dc, k=int(k),
                    strategy=job_strategy, seed=setting.seed,
                    candidate_mode=setting.candidate_mode, setting=setting))
    results = execute(specs, jobs=jobs, cache_dir=cache_dir, resume=resume,
                      chunk_size=chunk_size)
    delays: dict[tuple[str, float], list[float]] = {}
    for spec, delay in zip(specs, results):
        delays.setdefault((spec.series, spec.x), []).append(delay)
    series: dict[str, list[SeriesPoint]] = {}
    for m in micro_cluster_counts:
        name = f"{m} micro-clusters"
        series[name] = [
            SeriesPoint(float(k), summarize(delays[(name, float(k))]))
            for k in replica_counts
        ]
    return FigureResult(
        name="Figure 3",
        xlabel=f"number of replicas ({n_dc} data centers)",
        ylabel="average access delay (ms)",
        series=series,
    )


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    """Measured online-vs-offline costs for one access volume.

    ``online_seconds`` / ``offline_seconds`` time the *coordinator's*
    clustering step — the quantity Table II bounds (O((km)^k log km) vs
    O(n^k log n)).  ``online_ingest_seconds`` is the per-replica stream
    maintenance, which is O(m) per access and distributed across the
    replica servers, reported for completeness.
    """

    n_accesses: int
    k: int
    m: int
    online_bytes: int
    offline_bytes: int
    online_seconds: float
    offline_seconds: float
    online_ingest_seconds: float
    online_bytes_analytic: int
    offline_bytes_analytic: int


def compute_table2_row(n_accesses: int, k: int, m: int, dim: int,
                       seed: int) -> Table2Row:
    """One Table II row, independently seeded and timed with phase timers.

    The row's random streams derive from ``(seed, n_accesses)``, so rows
    are independent of each other — the property that lets
    :func:`run_table2` farm them out to workers and cache them
    individually.  Wall-clock costs are measured with
    :class:`repro.obs.PhaseTimer` (``table2.online_ingest`` /
    ``table2.online_cluster`` / ``table2.offline_cluster``) on a local
    registry that is merged into the active one, so the numbers flow
    through the same metrics pipeline (``--metrics-out``, benchmark
    exports) as every other timing in the repo.
    """
    from repro.runner import seed_sequence
    timers = obs.MetricsRegistry()
    rng = np.random.default_rng(seed_sequence(seed, n_accesses))
    blob_centers = rng.uniform(-200, 200, size=(max(k, 2), dim))
    assignment = rng.integers(0, blob_centers.shape[0], size=n_accesses)
    points = blob_centers[assignment] + rng.normal(0, 15,
                                                   size=(n_accesses, dim))

    # Online: k summaries, each sees one shard of the stream.
    summaries = [ReplicaAccessSummary(m, radius_floor=10.0)
                 for _ in range(k)]
    shard = rng.integers(0, k, size=n_accesses)
    with timers.phase("table2.online_ingest"):
        for point, s in zip(points, shard):
            summaries[s].record_access(point)
    pooled = [c for summary in summaries for c in summary.snapshot()]
    with timers.phase("table2.online_cluster"):
        place_replicas(pooled, k, blob_centers, np.random.default_rng(seed))
    online_bytes = sum(s.wire_size_bytes() for s in summaries)

    # Offline: ship every coordinate, cluster them all.
    with timers.phase("table2.offline_cluster"):
        weighted_kmeans(points, k, rng=np.random.default_rng(seed))

    row = Table2Row(
        n_accesses=n_accesses, k=k, m=m,
        online_bytes=online_bytes,
        offline_bytes=points.nbytes,
        online_seconds=timers.timer("table2.online_cluster").last_seconds,
        offline_seconds=timers.timer("table2.offline_cluster").last_seconds,
        online_ingest_seconds=timers.timer(
            "table2.online_ingest").last_seconds,
        online_bytes_analytic=online_bandwidth_bytes(k, m, dim),
        offline_bytes_analytic=offline_bandwidth_bytes(n_accesses, dim),
    )
    obs.get_registry().merge(timers)
    return row


def run_table2(n_accesses_list: Sequence[int] = (1_000, 10_000, 100_000),
               k: int = 3, m: int = 100, dim: int = 3,
               seed: int = 0, *,
               jobs: int | None = 1,
               cache_dir: str | None = None,
               resume: bool = False,
               chunk_size: int | None = None) -> list[Table2Row]:
    """Table II: bandwidth and computation, online vs. offline.

    For each access volume *n*: draw *n* client coordinates from ``k``
    population blobs, (a) feed them through per-replica summaries and
    cluster the micro-clusters (online), (b) record all of them and run
    k-means directly (offline).  Bytes are what each approach must ship
    to the coordinator; seconds are measured clustering time (phase
    timers — see :func:`compute_table2_row`).  Rows are independent
    jobs: ``jobs`` parallelizes across access volumes (note that
    co-scheduled rows contend for CPU, so keep ``jobs=1`` when the
    absolute timings matter) and ``cache_dir``/``resume`` skip rows a
    previous invocation already measured.
    """
    from repro.runner import Table2Spec, execute
    specs = [Table2Spec(n_accesses=int(n), k=k, m=m, dim=dim, seed=seed)
             for n in n_accesses_list]
    return execute(specs, jobs=jobs, cache_dir=cache_dir, resume=resume,
                   chunk_size=chunk_size)


def run_coord_ablation(setting: EvaluationSetting | None = None,
                       systems: Sequence[str] = ("mds", "rnp", "vivaldi", "gnp"),
                       n_dc: int = 20, k: int = 3,
                       micro_clusters: int = 10, *,
                       jobs: int | None = 1,
                       cache_dir: str | None = None,
                       resume: bool = False,
                       chunk_size: int | None = None) -> FigureResult:
    """Ablation: how the coordinate system affects online placement.

    Each coordinate system is its own :class:`EvaluationSetting` (same
    matrix seed, different embedding), so workers build each system's
    world once and the embeddings themselves run in parallel across
    workers.
    """
    setting = setting or EvaluationSetting()
    if n_dc >= setting.n_nodes:
        raise ValueError("need at least one client node")
    from repro.runner import PlacementRunSpec, execute, strategy_spec
    job_strategy = strategy_spec("online", micro_clusters=micro_clusters)
    specs: list[PlacementRunSpec] = []
    for system in systems:
        system_setting = replace(setting, coord_system=system)
        for run in range(setting.n_runs):
            specs.append(PlacementRunSpec(
                sweep="coords", series=system, x=float(k), run_index=run,
                n_dc=n_dc, k=k, strategy=job_strategy, seed=setting.seed,
                candidate_mode=setting.candidate_mode,
                setting=system_setting))
    results = execute(specs, jobs=jobs, cache_dir=cache_dir, resume=resume,
                      chunk_size=chunk_size)
    delays: dict[str, list[float]] = {}
    for spec, delay in zip(specs, results):
        delays.setdefault(spec.series, []).append(delay)
    series = {
        system: [SeriesPoint(float(k), summarize(delays[system]))]
        for system in systems
    }
    return FigureResult(
        name="Coordinate-system ablation",
        xlabel=f"k = {k}, {n_dc} data centers",
        ylabel="average access delay (ms)",
        series=series,
    )
