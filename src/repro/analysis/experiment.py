"""The paper's evaluation, as callable experiments.

The methodology mirrors Section IV-A: one 226-node matrix (synthetic
PlanetLab; see DESIGN.md §2), network coordinates assigned once, then for
each configuration ``n_runs`` independent draws of candidate replica
locations; the remaining nodes are the clients, every client reads its
closest replica, and the reported number is the true mean access delay.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.clustering.kmeans import weighted_kmeans
from repro.coords.embedding import embed_matrix
from repro.coords.space import EuclideanSpace
from repro.core.costs import offline_bandwidth_bytes, online_bandwidth_bytes
from repro.core.summarizer import ReplicaAccessSummary
from repro.core.macro import place_replicas
from repro.net.latency import LatencyMatrix
from repro.net.planetlab import PlanetLabParams, synthetic_planetlab_matrix
from repro.placement.base import (
    PlacementProblem,
    PlacementStrategy,
    average_access_delay,
)
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement
from repro.placement.optimal import OptimalPlacement
from repro.placement.random_placement import RandomPlacement
from repro.analysis.stats import SeriesPoint, summarize

__all__ = [
    "EvaluationSetting",
    "FigureResult",
    "Table2Row",
    "default_strategies",
    "draw_candidates",
    "run_comparison",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_table2",
    "run_coord_ablation",
]


@dataclass(frozen=True)
class EvaluationSetting:
    """The shared experimental setting of Section IV-A.

    Attributes
    ----------
    n_nodes:
        Total nodes emulated (paper: 226 PlanetLab hosts).
    n_runs:
        Independent candidate draws per configuration (paper: 30).
    coord_system:
        How nodes get coordinates: ``"rnp"`` (the paper's system;
        default), ``"vivaldi"``, ``"gnp"`` or ``"mds"``.  The
        decentralized systems carry height vectors, which the placement
        strategies use to price per-node access delay.
    embed_rounds:
        Gossip rounds for the decentralized systems.
    candidate_mode:
        How each run draws its candidate data centers: ``"dispersed"``
        (the paper's geographically diverse sites) or ``"uniform"``.
    seed:
        Master seed: drives the matrix, the embedding and every run.
    """

    n_nodes: int = 226
    n_runs: int = 30
    coord_system: str = "rnp"
    embed_rounds: int = 100
    candidate_mode: str = "dispersed"
    seed: int = 0

    def build(self) -> tuple[LatencyMatrix, np.ndarray, np.ndarray | None]:
        """Materialize (matrix, planar coordinates, heights-or-None)."""
        matrix, _ = synthetic_planetlab_matrix(
            PlanetLabParams(n=self.n_nodes), seed=self.seed)
        result = embed_matrix(matrix, system=self.coord_system,
                              rounds=self.embed_rounds,
                              rng=np.random.default_rng(self.seed + 1))
        planar = result.coords[:, :result.space.dim]
        heights = (result.coords[:, -1] if result.space.use_height else None)
        return matrix, planar, heights


@dataclass(frozen=True)
class FigureResult:
    """Series data for one reproduced figure."""

    name: str
    xlabel: str
    ylabel: str
    series: dict[str, list[SeriesPoint]]

    def means(self, series_name: str) -> list[float]:
        """Mean values of one series, in x order."""
        return [p.mean for p in self.series[series_name]]

    def xs(self, series_name: str) -> list[float]:
        """x positions of one series."""
        return [p.x for p in self.series[series_name]]


def default_strategies(micro_clusters: int = 10) -> list[PlacementStrategy]:
    """The paper's four contenders, in its presentation order."""
    return [
        RandomPlacement(),
        OfflineKMeansPlacement(),
        OnlineClusteringPlacement(micro_clusters=micro_clusters),
        OptimalPlacement(),
    ]


def draw_candidates(matrix: LatencyMatrix, n_dc: int,
                     rng: np.random.Generator,
                     mode: str = "dispersed"
                     ) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """One run's split into candidate data centers and clients.

    ``mode="dispersed"`` (default) reproduces the paper's setup: the
    candidate nodes are "dispersed at diverse geographic locations",
    each representing a different data center.  Candidates are drawn by
    randomized farthest-point sampling on true RTTs (probability
    proportional to squared distance from the already-chosen set), so
    every run gets a different but always geographically diverse set.
    ``mode="uniform"`` draws candidates uniformly from the nodes, i.e.
    proportional to client density — a harsher setting for the paper's
    claims, kept for the sensitivity benchmarks.
    """
    n_nodes = matrix.n
    if mode == "uniform":
        picks = rng.choice(n_nodes, size=n_dc, replace=False)
        candidates = tuple(int(p) for p in picks)
    elif mode == "dispersed":
        first = int(rng.integers(0, n_nodes))
        chosen = [first]
        min_dist = matrix.rtt[first].copy()
        for _ in range(n_dc - 1):
            weights = min_dist ** 2
            weights[chosen] = 0.0
            total = weights.sum()
            if total <= 0:  # degenerate matrix: fall back to uniform
                remaining = [i for i in range(n_nodes) if i not in set(chosen)]
                chosen.append(int(rng.choice(remaining)))
            else:
                nxt = int(rng.choice(n_nodes, p=weights / total))
                chosen.append(nxt)
                min_dist = np.minimum(min_dist, matrix.rtt[nxt])
        candidates = tuple(chosen)
    else:
        raise ValueError(f"unknown candidate mode {mode!r}")
    taken = set(candidates)
    clients = tuple(i for i in range(n_nodes) if i not in taken)
    return candidates, clients


def run_comparison(matrix: LatencyMatrix, coords: np.ndarray,
                   strategies: Sequence[PlacementStrategy],
                   n_dc: int, k: int, n_runs: int,
                   seed: int = 0,
                   heights: np.ndarray | None = None,
                   candidate_mode: str = "dispersed") -> dict[str, list[float]]:
    """Mean access delay per strategy over ``n_runs`` candidate draws.

    Every strategy sees the *same* candidate/client split in each run,
    so the comparison is paired (as in the paper's simulator).
    """
    if n_dc >= matrix.n:
        raise ValueError("need at least one client node")
    delays: dict[str, list[float]] = {s.name: [] for s in strategies}
    for run in range(n_runs):
        run_rng = np.random.default_rng((seed, run))
        candidates, clients = draw_candidates(matrix, n_dc, run_rng,
                                              candidate_mode)
        problem = PlacementProblem(matrix, candidates, clients, k,
                                   coords=coords, heights=heights)
        for strategy in strategies:
            strat_rng = np.random.default_rng(
                (seed, run, zlib.crc32(strategy.name.encode())))
            sites = strategy.place(problem, strat_rng)
            delays[strategy.name].append(
                average_access_delay(matrix, clients, sites))
    return delays


def _sweep(matrix: LatencyMatrix, coords: np.ndarray,
           strategies_for_x: Callable[[float], Sequence[PlacementStrategy]],
           xs: Sequence[float], n_dc_for_x: Callable[[float], int],
           k_for_x: Callable[[float], int], n_runs: int,
           seed: int,
           heights: np.ndarray | None = None,
           candidate_mode: str = "dispersed") -> dict[str, list[SeriesPoint]]:
    series: dict[str, list[SeriesPoint]] = {}
    for x in xs:
        strategies = strategies_for_x(x)
        delays = run_comparison(matrix, coords, strategies,
                                n_dc_for_x(x), k_for_x(x), n_runs, seed,
                                heights=heights, candidate_mode=candidate_mode)
        for name, values in delays.items():
            series.setdefault(name, []).append(
                SeriesPoint(float(x), summarize(values)))
    return series


def run_figure1(setting: EvaluationSetting | None = None,
                datacenter_counts: Sequence[int] = (5, 10, 15, 20, 25, 30),
                k: int = 3,
                micro_clusters: int = 10) -> FigureResult:
    """Figure 1: impact of the number of available data centers (k = 3)."""
    setting = setting or EvaluationSetting()
    matrix, coords, heights = setting.build()
    series = _sweep(
        matrix, coords,
        strategies_for_x=lambda _x: default_strategies(micro_clusters),
        xs=datacenter_counts,
        n_dc_for_x=int,
        k_for_x=lambda _x: k,
        n_runs=setting.n_runs,
        seed=setting.seed,
        heights=heights,
        candidate_mode=setting.candidate_mode,
    )
    return FigureResult(
        name="Figure 1",
        xlabel=f"number of data centers ({k} replicas)",
        ylabel="average access delay (ms)",
        series=series,
    )


def run_figure2(setting: EvaluationSetting | None = None,
                replica_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
                n_dc: int = 20,
                micro_clusters: int = 10) -> FigureResult:
    """Figure 2: impact of the degree of replication (20 data centers)."""
    setting = setting or EvaluationSetting()
    matrix, coords, heights = setting.build()
    series = _sweep(
        matrix, coords,
        strategies_for_x=lambda _x: default_strategies(micro_clusters),
        xs=replica_counts,
        n_dc_for_x=lambda _x: n_dc,
        k_for_x=int,
        n_runs=setting.n_runs,
        seed=setting.seed,
        heights=heights,
        candidate_mode=setting.candidate_mode,
    )
    return FigureResult(
        name="Figure 2",
        xlabel=f"number of replicas ({n_dc} data centers)",
        ylabel="average access delay (ms)",
        series=series,
    )


def run_figure3(setting: EvaluationSetting | None = None,
                micro_cluster_counts: Sequence[int] = (1, 2, 4, 7, 11),
                replica_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
                n_dc: int = 20) -> FigureResult:
    """Figure 3: online clustering delay vs. k, one series per m."""
    setting = setting or EvaluationSetting()
    matrix, coords, heights = setting.build()
    series: dict[str, list[SeriesPoint]] = {}
    for m in micro_cluster_counts:
        strategy = OnlineClusteringPlacement(micro_clusters=m)
        for k in replica_counts:
            delays = run_comparison(matrix, coords, [strategy], n_dc, k,
                                    setting.n_runs, setting.seed,
                                    heights=heights,
                                    candidate_mode=setting.candidate_mode)
            name = f"{m} micro-clusters"
            series.setdefault(name, []).append(
                SeriesPoint(float(k), summarize(delays[strategy.name])))
    return FigureResult(
        name="Figure 3",
        xlabel=f"number of replicas ({n_dc} data centers)",
        ylabel="average access delay (ms)",
        series=series,
    )


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    """Measured online-vs-offline costs for one access volume.

    ``online_seconds`` / ``offline_seconds`` time the *coordinator's*
    clustering step — the quantity Table II bounds (O((km)^k log km) vs
    O(n^k log n)).  ``online_ingest_seconds`` is the per-replica stream
    maintenance, which is O(m) per access and distributed across the
    replica servers, reported for completeness.
    """

    n_accesses: int
    k: int
    m: int
    online_bytes: int
    offline_bytes: int
    online_seconds: float
    offline_seconds: float
    online_ingest_seconds: float
    online_bytes_analytic: int
    offline_bytes_analytic: int


def run_table2(n_accesses_list: Sequence[int] = (1_000, 10_000, 100_000),
               k: int = 3, m: int = 100, dim: int = 3,
               seed: int = 0) -> list[Table2Row]:
    """Table II: bandwidth and computation, online vs. offline.

    For each access volume *n*: draw *n* client coordinates from ``k``
    population blobs, (a) feed them through per-replica summaries and
    cluster the micro-clusters (online), (b) record all of them and run
    k-means directly (offline).  Bytes are what each approach must ship
    to the coordinator; seconds are measured clustering time.
    """
    rows: list[Table2Row] = []
    rng = np.random.default_rng(seed)
    blob_centers = rng.uniform(-200, 200, size=(max(k, 2), dim))
    for n in n_accesses_list:
        assignment = rng.integers(0, blob_centers.shape[0], size=n)
        points = blob_centers[assignment] + rng.normal(0, 15, size=(n, dim))

        # Online: k summaries, each sees one shard of the stream.
        summaries = [ReplicaAccessSummary(m, radius_floor=10.0)
                     for _ in range(k)]
        shard = rng.integers(0, k, size=n)
        started = time.perf_counter()
        for point, s in zip(points, shard):
            summaries[s].record_access(point)
        online_ingest_seconds = time.perf_counter() - started
        pooled = [c for summary in summaries for c in summary.snapshot()]
        started = time.perf_counter()
        place_replicas(pooled, k, blob_centers, np.random.default_rng(seed))
        online_seconds = time.perf_counter() - started
        online_bytes = sum(s.wire_size_bytes() for s in summaries)

        # Offline: ship every coordinate, cluster them all.
        started = time.perf_counter()
        weighted_kmeans(points, k, rng=np.random.default_rng(seed))
        offline_seconds = time.perf_counter() - started
        offline_bytes = points.nbytes

        rows.append(Table2Row(
            n_accesses=n, k=k, m=m,
            online_bytes=online_bytes,
            offline_bytes=offline_bytes,
            online_seconds=online_seconds,
            offline_seconds=offline_seconds,
            online_ingest_seconds=online_ingest_seconds,
            online_bytes_analytic=online_bandwidth_bytes(k, m, dim),
            offline_bytes_analytic=offline_bandwidth_bytes(n, dim),
        ))
    return rows


def run_coord_ablation(setting: EvaluationSetting | None = None,
                       systems: Sequence[str] = ("mds", "rnp", "vivaldi", "gnp"),
                       n_dc: int = 20, k: int = 3,
                       micro_clusters: int = 10) -> FigureResult:
    """Ablation: how the coordinate system affects online placement."""
    setting = setting or EvaluationSetting()
    matrix, _ = synthetic_planetlab_matrix(
        PlanetLabParams(n=setting.n_nodes), seed=setting.seed)
    series: dict[str, list[SeriesPoint]] = {}
    for system in systems:
        result = embed_matrix(matrix, system=system,
                              rounds=setting.embed_rounds,
                              rng=np.random.default_rng(setting.seed + 1))
        planar = result.coords[:, :result.space.dim]
        heights = (result.coords[:, -1] if result.space.use_height else None)
        strategy = OnlineClusteringPlacement(micro_clusters=micro_clusters)
        delays = run_comparison(matrix, planar, [strategy], n_dc, k,
                                setting.n_runs, setting.seed,
                                heights=heights,
                                candidate_mode=setting.candidate_mode)
        series[system] = [SeriesPoint(float(k), summarize(delays[strategy.name]))]
    return FigureResult(
        name="Coordinate-system ablation",
        xlabel=f"k = {k}, {n_dc} data centers",
        ylabel="average access delay (ms)",
        series=series,
    )
