"""Plotting-free ASCII charts for figure results.

The benchmark tables give exact numbers; these charts give the *shape*
at a glance in any terminal — no matplotlib dependency, so the repo
stays installable offline.  Each series is drawn with its own marker on
a shared canvas, mirroring how the paper's figures overlay the four
strategies.
"""

from __future__ import annotations

from repro.analysis.experiment import FigureResult

__all__ = ["render_chart"]

#: Markers assigned to series in insertion order (then recycled).
MARKERS = "ox*#+%@&"


def render_chart(result: FigureResult, width: int = 64,
                 height: int = 16) -> str:
    """Render a figure as an ASCII scatter/line chart.

    Parameters
    ----------
    result:
        The figure to draw.
    width / height:
        Plot-area size in characters (axes and labels are added around
        it).
    """
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4 characters")
    series_names = list(result.series)
    if not series_names:
        raise ValueError("figure has no series")

    xs = sorted({p.x for points in result.series.values() for p in points})
    ys = [p.mean for points in result.series.values() for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        col = round_clamp((x - x_lo) / x_span * (width - 1), width - 1)
        row = round_clamp((y_hi - y) / y_span * (height - 1), height - 1)
        # Later series overwrite earlier ones on collision; the legend
        # disambiguates close curves.
        canvas[row][col] = marker

    for index, name in enumerate(series_names):
        marker = MARKERS[index % len(MARKERS)]
        for point in result.series[name]:
            plot(point.x, point.mean, marker)

    lines = [f"{result.name} — {result.ylabel}"]
    label_width = 8
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_hi:8.1f}"
        elif i == height - 1:
            label = f"{y_lo:8.1f}"
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = (f"{x_lo:g}".ljust(width // 2)
              + f"{x_hi:g}".rjust(width - width // 2))
    lines.append(" " * (label_width + 1) + x_axis)
    lines.append(" " * (label_width + 1) + result.xlabel)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series_names)
    )
    lines.append(" " * (label_width + 1) + legend)
    return "\n".join(lines)


def round_clamp(value: float, maximum: int) -> int:
    """Round to the nearest cell and clamp into [0, maximum]."""
    return max(0, min(maximum, round(value)))
