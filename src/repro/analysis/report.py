"""Render experiment results as the text tables the benchmarks print."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiment import FigureResult, Table2Row

__all__ = ["format_figure", "format_table2", "format_bytes"]


def format_bytes(n: int | float) -> str:
    """Human-readable byte count."""
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError("unreachable")


def format_figure(result: FigureResult, precision: int = 1) -> str:
    """One row per series, one column per x — like reading the figure."""
    names = list(result.series)
    xs = [p.x for p in result.series[names[0]]]
    header_cells = [result.xlabel] + [_format_x(x) for x in xs]
    widths = [max(len(h), 24) for h in header_cells[:1]] + [
        max(len(h), 8) for h in header_cells[1:]
    ]

    lines = [result.name + f" — {result.ylabel}"]
    lines.append(_row(header_cells, widths))
    lines.append("-+-".join("-" * w for w in widths))
    for name in names:
        points = result.series[name]
        cells = [name] + [f"{p.mean:.{precision}f}" for p in points]
        lines.append(_row(cells, widths))
    return "\n".join(lines)


def _format_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(c.ljust(w) for c, w in zip(cells, widths))


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Online-vs-offline cost table (measured + analytic bandwidth)."""
    header = (f"{'n accesses':>12} | {'online B':>12} | {'offline B':>12} | "
              f"{'ratio':>8} | {'online s':>10} | {'offline s':>10}")
    lines = [
        f"Table II (k={rows[0].k}, m={rows[0].m}) — "
        "bandwidth O(km) vs O(n); computation independent of n vs growing",
        header,
        "-" * len(header),
    ]
    for row in rows:
        ratio = row.offline_bytes / max(row.online_bytes, 1)
        lines.append(
            f"{row.n_accesses:>12,} | {format_bytes(row.online_bytes):>12} | "
            f"{format_bytes(row.offline_bytes):>12} | {ratio:>7.0f}x | "
            f"{row.online_seconds:>10.4f} | {row.offline_seconds:>10.4f}"
        )
    return "\n".join(lines)
