"""One-command reproduction report.

``python -m repro report --out report.md`` regenerates every evaluation
artifact at the requested scale and writes a self-contained Markdown
report: the environment and seeds, each figure as a table plus an ASCII
chart, Table II, and the headline-claim checklist with pass/fail marks.
This is the artifact to attach to a reproduction claim.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass

import numpy as np

from repro.analysis.charts import render_chart
from repro.analysis.experiment import (
    EvaluationSetting,
    FigureResult,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)
from repro.analysis.report import format_figure, format_table2

__all__ = ["ClaimCheck", "generate_report"]


@dataclass(frozen=True)
class ClaimCheck:
    """One verified headline claim."""

    claim: str
    passed: bool
    detail: str


def _check_figure2_claims(figure2: FigureResult) -> list[ClaimCheck]:
    checks: list[ClaimCheck] = []
    gains = [
        (r - on) / r
        for r, on in zip(figure2.means("random"),
                         figure2.means("online clustering"))
    ]
    checks.append(ClaimCheck(
        "online clustering ≥ 35 % below random at every k",
        min(gains) >= 0.35,
        f"min gain {min(gains):.0%}, max {max(gains):.0%}",
    ))
    ratios = [
        on / opt
        for on, opt in zip(figure2.means("online clustering"),
                           figure2.means("optimal"))
    ]
    checks.append(ClaimCheck(
        "online clustering slightly worse than optimal (≤ 1.2×)",
        max(ratios) <= 1.2,
        f"worst online/optimal ratio {max(ratios):.2f}",
    ))
    offline_gap = [
        abs(on - off) / off
        for on, off in zip(figure2.means("online clustering"),
                           figure2.means("offline k-means"))
    ]
    checks.append(ClaimCheck(
        "online clustering comparable to offline k-means (within 15 %)",
        max(offline_gap) <= 0.15,
        f"largest relative gap {max(offline_gap):.1%}",
    ))
    drops = figure2.means("optimal")
    checks.append(ClaimCheck(
        "diminishing returns in k (k=1→4 drop > 2× the k=4→7 drop)",
        (drops[0] - drops[3]) > 2 * (drops[3] - drops[6]),
        f"early drop {drops[0] - drops[3]:.1f} ms, "
        f"late drop {drops[3] - drops[6]:.1f} ms",
    ))
    return checks


def _check_figure1_claims(figure1: FigureResult) -> list[ClaimCheck]:
    checks = []
    for name in ("offline k-means", "online clustering", "optimal"):
        means = figure1.means(name)
        checks.append(ClaimCheck(
            f"{name} improves with more candidate data centers",
            means[-1] < means[0] * 0.9,
            f"{means[0]:.1f} -> {means[-1]:.1f} ms",
        ))
    return checks


def _check_figure3_claims(figure3: FigureResult) -> list[ClaimCheck]:
    m4 = figure3.means("4 micro-clusters")
    m11 = figure3.means("11 micro-clusters")
    worst = max(a / b for a, b in zip(m4, m11))
    return [ClaimCheck(
        "a small micro-cluster budget suffices (m=4 within 15 % of m=11)",
        worst <= 1.15,
        f"worst m=4 / m=11 ratio {worst:.2f}",
    )]


def generate_report(setting: EvaluationSetting | None = None, *,
                    jobs: int | None = 1,
                    cache_dir: str | None = None,
                    resume: bool = False,
                    chunk_size: int | None = None) -> str:
    """Run the full evaluation and return the Markdown report.

    ``jobs``/``cache_dir``/``resume`` are forwarded to every figure
    runner (see :mod:`repro.runner`), so the full report can be
    regenerated in parallel and resumed after an interruption.
    """
    setting = setting or EvaluationSetting()
    runner_kwargs = dict(jobs=jobs, cache_dir=cache_dir, resume=resume,
                         chunk_size=chunk_size)
    lines: list[str] = []
    out = lines.append

    out("# Reproduction report — Towards Optimal Data Replication "
        "Across Data Centers (ICDCS 2011)")
    out("")
    out(f"- nodes: {setting.n_nodes}; runs/point: {setting.n_runs}; "
        f"coordinates: {setting.coord_system}; "
        f"candidates: {setting.candidate_mode}; seed: {setting.seed}")
    out(f"- python {platform.python_version()} / numpy {np.__version__} "
        f"on {platform.system().lower()}")
    out("")

    checks: list[ClaimCheck] = []
    for title, runner, checker in (
        ("Figure 1 — number of data centers", run_figure1,
         _check_figure1_claims),
        ("Figure 2 — degree of replication", run_figure2,
         _check_figure2_claims),
        ("Figure 3 — micro-cluster budget", run_figure3,
         _check_figure3_claims),
    ):
        result = runner(setting, **runner_kwargs)
        out(f"## {title}")
        out("")
        out("```")
        out(format_figure(result))
        out("")
        out(render_chart(result))
        out("```")
        out("")
        checks.extend(checker(result))

    out("## Table II — online vs offline overheads")
    out("")
    out("```")
    out(format_table2(run_table2(seed=setting.seed, **runner_kwargs)))
    out("```")
    out("")

    out("## Headline-claim checklist")
    out("")
    for check in checks:
        mark = "✅" if check.passed else "❌"
        out(f"- {mark} {check.claim} — {check.detail}")
    out("")
    passed = sum(1 for c in checks if c.passed)
    out(f"**{passed}/{len(checks)} claims reproduced.**")
    out("")
    return "\n".join(lines)
