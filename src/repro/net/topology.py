"""Geographic node placement for synthetic wide-area topologies.

PlanetLab hosts cluster around research institutions on a handful of
continents.  :class:`GeoTopology` reproduces that structure: nodes are
drawn from weighted :class:`Region` blobs on the globe (Gaussian spread in
latitude/longitude around a regional center), and great-circle distances
between them drive baseline propagation delay in
:mod:`repro.net.planetlab`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Region", "WORLD_REGIONS", "GeoTopology", "great_circle_km"]

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class Region:
    """A geographic blob from which node locations are sampled.

    ``weight`` is the relative share of nodes the region receives and
    ``spread_deg`` the standard deviation (degrees) of the Gaussian blob.
    """

    name: str
    lat: float
    lon: float
    weight: float
    spread_deg: float = 4.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")
        if self.weight <= 0:
            raise ValueError("region weight must be positive")
        if self.spread_deg <= 0:
            raise ValueError("region spread must be positive")


#: Default region mix, mirroring the PlanetLab deployment of the era:
#: dense in North America and Europe, present in East Asia, sparse in
#: South America and Oceania.
WORLD_REGIONS: tuple[Region, ...] = (
    Region("us-east", 40.7, -74.0, weight=0.24, spread_deg=5.0),
    Region("us-west", 37.4, -122.1, weight=0.14, spread_deg=4.0),
    Region("us-central", 41.9, -87.6, weight=0.08, spread_deg=4.0),
    Region("eu-west", 48.9, 2.4, weight=0.18, spread_deg=5.0),
    Region("eu-central", 52.5, 13.4, weight=0.10, spread_deg=4.0),
    Region("asia-east", 35.7, 139.7, weight=0.10, spread_deg=5.0),
    Region("asia-south", 1.35, 103.8, weight=0.06, spread_deg=4.0),
    Region("south-america", -23.5, -46.6, weight=0.05, spread_deg=4.0),
    Region("oceania", -33.9, 151.2, weight=0.05, spread_deg=3.0),
)


def great_circle_km(lat1: np.ndarray, lon1: np.ndarray,
                    lat2: np.ndarray, lon2: np.ndarray) -> np.ndarray:
    """Great-circle distance in kilometres (haversine; vectorised)."""
    p1, p2 = np.radians(lat1), np.radians(lat2)
    dphi = p2 - p1
    dlam = np.radians(lon2) - np.radians(lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


class GeoTopology:
    """A set of nodes with geographic coordinates drawn from regions.

    Parameters
    ----------
    n:
        Number of nodes to place.
    regions:
        Weighted regions to sample from; defaults to :data:`WORLD_REGIONS`.
    rng:
        Source of randomness; required for reproducibility.
    """

    def __init__(self, n: int, regions: Sequence[Region] = WORLD_REGIONS,
                 rng: np.random.Generator | None = None) -> None:
        if n <= 0:
            raise ValueError("topology needs at least one node")
        if not regions:
            raise ValueError("at least one region required")
        rng = rng or np.random.default_rng(0)
        self.regions = tuple(regions)

        weights = np.array([r.weight for r in self.regions], dtype=float)
        weights /= weights.sum()
        assignment = rng.choice(len(self.regions), size=n, p=weights)

        lats = np.empty(n)
        lons = np.empty(n)
        for i, ridx in enumerate(assignment):
            region = self.regions[ridx]
            lats[i] = np.clip(
                rng.normal(region.lat, region.spread_deg), -89.9, 89.9
            )
            lon = rng.normal(region.lon, region.spread_deg)
            lons[i] = (lon + 180.0) % 360.0 - 180.0

        self.lat = lats
        self.lon = lons
        self.region_of = np.asarray(assignment, dtype=int)

    @property
    def n(self) -> int:
        """Number of nodes in the topology."""
        return self.lat.size

    def region_name(self, node: int) -> str:
        """Name of the region node ``node`` was drawn from."""
        return self.regions[self.region_of[node]].name

    def distance_km(self) -> np.ndarray:
        """Pairwise great-circle distance matrix in kilometres."""
        lat1 = self.lat[:, None]
        lon1 = self.lon[:, None]
        lat2 = self.lat[None, :]
        lon2 = self.lon[None, :]
        d = great_circle_km(lat1, lon1, lat2, lon2)
        np.fill_diagonal(d, 0.0)
        return d

    def same_region(self) -> np.ndarray:
        """Boolean matrix: True where two nodes share a region."""
        return self.region_of[:, None] == self.region_of[None, :]
