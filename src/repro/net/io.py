"""Load and save RTT matrices.

Two on-disk formats are supported:

* **npz** — ``numpy.savez`` with keys ``rtt`` and (optionally) ``names``;
  lossless and preferred.
* **text** — whitespace-separated rows of milliseconds, the format used by
  the public King / PlanetLab "network coordinates" dumps; ``-1`` or
  ``nan`` entries mark unmeasured pairs and are patched symmetrically
  (falling back to the matrix median when both directions are missing).
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.net.latency import LatencyMatrix

__all__ = ["load_matrix", "save_matrix"]


def save_matrix(matrix: LatencyMatrix, path: str) -> None:
    """Persist ``matrix`` to ``path`` (.npz or text by extension)."""
    if path.endswith(".npz"):
        np.savez_compressed(path, rtt=matrix.rtt, names=np.array(matrix.names))
        return
    np.savetxt(path, matrix.rtt, fmt="%.4f")


def load_matrix(path: str, names: Sequence[str] | None = None) -> LatencyMatrix:
    """Load an RTT matrix from ``path`` (.npz or whitespace text)."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    if path.endswith(".npz"):
        with np.load(path, allow_pickle=False) as data:
            rtt = np.asarray(data["rtt"], dtype=float)
            if names is None and "names" in data:
                names = [str(x) for x in data["names"]]
    else:
        rtt = np.loadtxt(path, dtype=float)
    rtt = _clean(rtt)
    return LatencyMatrix(rtt, tuple(names) if names else ())


def _clean(rtt: np.ndarray) -> np.ndarray:
    """Symmetrize and patch missing entries of a raw measurement matrix."""
    rtt = np.array(rtt, dtype=float)
    if rtt.ndim != 2 or rtt.shape[0] != rtt.shape[1]:
        raise ValueError(f"matrix file must be square, got {rtt.shape}")
    missing = ~np.isfinite(rtt) | (rtt < 0)
    rtt[missing] = np.nan

    # Use the reverse direction when only one direction was measured.
    reverse = rtt.T.copy()
    take_reverse = np.isnan(rtt) & ~np.isnan(reverse)
    rtt[take_reverse] = reverse[take_reverse]

    # Average asymmetric measurements.
    rtt = np.where(
        np.isnan(rtt) | np.isnan(rtt.T), rtt, (rtt + rtt.T) / 2.0
    )

    # Whatever is still missing gets the median off-diagonal measurement.
    off_diagonal = ~np.eye(rtt.shape[0], dtype=bool)
    finite = rtt[off_diagonal & np.isfinite(rtt)]
    if finite.size == 0:
        raise ValueError("matrix contains no finite measurements")
    rtt[np.isnan(rtt)] = float(np.median(finite))
    np.fill_diagonal(rtt, 0.0)
    return rtt
