"""Round-trip-time matrix abstraction.

A :class:`LatencyMatrix` wraps a symmetric ``(n, n)`` array of round-trip
times in milliseconds, with a zero diagonal.  It is the single source of
network truth for the simulator, the coordinate systems (which try to
embed it) and the evaluation of placements (which always measures true
RTTs, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["LatencyMatrix"]


@dataclass(frozen=True)
class LatencyMatrix:
    """Symmetric matrix of round-trip times between ``n`` nodes.

    Parameters
    ----------
    rtt:
        ``(n, n)`` array of round-trip times in milliseconds.  Must be
        symmetric with a zero diagonal and non-negative entries.
    names:
        Optional node names; defaults to ``node-0 .. node-{n-1}``.
    """

    rtt: np.ndarray
    names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        rtt = np.asarray(self.rtt, dtype=float)
        if rtt.ndim != 2 or rtt.shape[0] != rtt.shape[1]:
            raise ValueError(f"RTT matrix must be square, got shape {rtt.shape}")
        if rtt.shape[0] == 0:
            raise ValueError("RTT matrix must contain at least one node")
        if np.any(rtt < 0):
            raise ValueError("RTT matrix must be non-negative")
        if np.any(np.diag(rtt) != 0):
            raise ValueError("RTT matrix must have a zero diagonal")
        if not np.allclose(rtt, rtt.T, rtol=1e-9, atol=1e-9):
            raise ValueError("RTT matrix must be symmetric")
        object.__setattr__(self, "rtt", rtt)
        names = self.names or tuple(f"node-{i}" for i in range(rtt.shape[0]))
        if len(names) != rtt.shape[0]:
            raise ValueError(
                f"{len(names)} names supplied for {rtt.shape[0]} nodes"
            )
        object.__setattr__(self, "names", tuple(names))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.rtt.shape[0]

    def __len__(self) -> int:
        return self.n

    def latency(self, a: int, b: int) -> float:
        """Round-trip time between nodes ``a`` and ``b`` in milliseconds."""
        return float(self.rtt[a, b])

    def one_way(self, a: int, b: int) -> float:
        """One-way delay estimate: half the round-trip time."""
        return float(self.rtt[a, b]) / 2.0

    def submatrix(self, indices: Sequence[int]) -> "LatencyMatrix":
        """Restrict the matrix to ``indices`` (order preserved)."""
        idx = np.asarray(list(indices), dtype=int)
        if idx.size == 0:
            raise ValueError("cannot build an empty submatrix")
        return LatencyMatrix(
            self.rtt[np.ix_(idx, idx)],
            tuple(self.names[i] for i in idx),
        )

    def rows(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """RTTs from each of ``sources`` to each of ``targets``.

        Returns an ``(len(sources), len(targets))`` array; this is the
        kernel the placement evaluators use.
        """
        src = np.asarray(list(sources), dtype=int)
        dst = np.asarray(list(targets), dtype=int)
        return self.rtt[np.ix_(src, dst)]

    # ------------------------------------------------------------------
    # Statistics used in the evaluation and docs
    # ------------------------------------------------------------------
    def pair_values(self) -> np.ndarray:
        """All off-diagonal RTTs (upper triangle) as a flat array."""
        iu = np.triu_indices(self.n, k=1)
        return self.rtt[iu]

    def median(self) -> float:
        """Median pairwise RTT in milliseconds."""
        return float(np.median(self.pair_values()))

    def percentile(self, q: float) -> float:
        """``q``-th percentile of pairwise RTTs."""
        return float(np.percentile(self.pair_values(), q))

    def triangle_violation_fraction(self, sample: int | None = None,
                                    rng: np.random.Generator | None = None) -> float:
        """Fraction of node triples violating the triangle inequality.

        Real internet RTT matrices violate the triangle inequality for a
        noticeable fraction of triples; this statistic lets tests confirm
        the synthetic matrix does too.  With ``sample`` set, that many
        random triples are checked instead of all ``O(n^3)``.
        """
        n = self.n
        if n < 3:
            return 0.0
        if sample is None:
            triples = (
                (i, j, k)
                for i in range(n)
                for j in range(i + 1, n)
                for k in range(j + 1, n)
            )
            total = n * (n - 1) * (n - 2) // 6
            violations = sum(1 for i, j, k in triples if self._violates(i, j, k))
            return violations / total
        rng = rng or np.random.default_rng(0)
        violations = 0
        for _ in range(sample):
            i, j, k = rng.choice(n, size=3, replace=False)
            if self._violates(int(i), int(j), int(k)):
                violations += 1
        return violations / sample

    def _violates(self, i: int, j: int, k: int) -> bool:
        a, b, c = self.rtt[i, j], self.rtt[j, k], self.rtt[i, k]
        return a > b + c or b > a + c or c > a + b

    def describe(self, tiv_sample: int = 3000) -> str:
        """A one-paragraph statistical summary of the matrix.

        Useful in logs and example scripts to sanity-check a generated
        or loaded matrix at a glance.
        """
        values = self.pair_values()
        rng = np.random.default_rng(0)
        tiv = self.triangle_violation_fraction(
            sample=min(tiv_sample, max(self.n ** 2, 10)), rng=rng)
        return (
            f"{self.n} nodes, {values.size} pairs; RTT ms: "
            f"min {values.min():.1f} / p25 {np.percentile(values, 25):.1f} / "
            f"median {np.median(values):.1f} / p75 {np.percentile(values, 75):.1f} / "
            f"p95 {np.percentile(values, 95):.1f} / max {values.max():.1f}; "
            f"triangle-inequality violations ~{tiv:.1%} of sampled triples"
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_condensed(values: Iterable[float], names: Sequence[str] | None = None
                       ) -> "LatencyMatrix":
        """Build from a condensed upper-triangle vector (scipy convention).

        Examples
        --------
        >>> m = LatencyMatrix.from_condensed([10.0, 50.0, 40.0])
        >>> m.latency(0, 2)
        50.0
        >>> m.median()
        40.0
        """
        vec = np.asarray(list(values), dtype=float)
        m = vec.size
        n = int(round((1 + np.sqrt(1 + 8 * m)) / 2))
        if n * (n - 1) // 2 != m:
            raise ValueError(f"{m} values do not form a condensed matrix")
        rtt = np.zeros((n, n))
        iu = np.triu_indices(n, k=1)
        rtt[iu] = vec
        rtt += rtt.T
        return LatencyMatrix(rtt, tuple(names) if names else ())
