"""Synthetic PlanetLab-style RTT matrices.

The paper drives its simulator with RTTs measured between 226 PlanetLab
hosts (its reference [24], the Harvard "network coordinates" dataset).
That snapshot is not redistributable here, so this module synthesizes a
matrix with the same qualitative properties the placement algorithms
depend on:

* nodes cluster geographically (continental blobs, North America and
  Europe dense) — see :mod:`repro.net.topology`;
* RTT grows with great-circle distance at roughly the speed of light in
  fibre, inflated by routing indirection;
* every path carries access-link and intra-site overhead, so nearby pairs
  still see a few milliseconds;
* pairwise jitter is log-normal, producing the heavy right tail measured
  on PlanetLab;
* a controlled fraction of pairs is detoured (multiplied by an inflation
  factor), creating triangle-inequality violations.

All randomness flows through one :class:`numpy.random.Generator`, so a
seed fully determines the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.net.latency import LatencyMatrix
from repro.net.topology import GeoTopology, Region, WORLD_REGIONS

__all__ = ["PlanetLabParams", "synthetic_planetlab_matrix"]

#: Speed of light in fibre, km per millisecond.
FIBRE_KM_PER_MS = 200.0


@dataclass(frozen=True)
class PlanetLabParams:
    """Tunables for the synthetic PlanetLab matrix.

    The defaults target the published shape of the 226-host dataset:
    median pairwise RTT near 80–120 ms, intra-continent pairs in the
    10–40 ms range, trans-Pacific pairs above 150 ms, and a small but
    non-zero triangle-inequality-violation rate.
    """

    n: int = 226
    regions: Sequence[Region] = WORLD_REGIONS
    #: Multiplier on great-circle propagation delay to model routing
    #: indirection (paths are never great-circle straight).
    path_stretch: float = 1.6
    #: Minimum per-pair overhead (access links, last mile), milliseconds.
    access_overhead_ms: float = 4.0
    #: Sigma of the log-normal noise multiplier applied per pair.
    jitter_sigma: float = 0.18
    #: Fraction of pairs routed over a detour.
    detour_fraction: float = 0.05
    #: RTT multiplier applied to detoured pairs.
    detour_inflation: float = 1.9
    #: Per-node additive overhead is sampled uniformly from this range
    #: (models slow access links of individual hosts), milliseconds.
    node_overhead_range: tuple[float, float] = (0.0, 6.0)
    #: Fraction of hosts that are *congested* — overloaded PlanetLab
    #: nodes whose every path carries a large extra delay.  This heavy
    #: tail is well documented for the platform and matters for the
    #: placement problem: informed strategies route around congested
    #: hosts, random placement cannot.
    congested_fraction: float = 0.12
    #: Extra per-node overhead of a congested host, sampled uniformly
    #: from this range (milliseconds).
    congested_overhead_range: tuple[float, float] = (40.0, 180.0)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two nodes")
        if self.path_stretch < 1.0:
            raise ValueError("path stretch cannot shrink distances")
        if not 0.0 <= self.detour_fraction <= 1.0:
            raise ValueError("detour fraction must lie in [0, 1]")
        if self.detour_inflation < 1.0:
            raise ValueError("detours only inflate RTT")
        lo, hi = self.node_overhead_range
        if lo < 0 or hi < lo:
            raise ValueError("invalid node overhead range")
        if not 0.0 <= self.congested_fraction <= 1.0:
            raise ValueError("congested fraction must lie in [0, 1]")
        clo, chi = self.congested_overhead_range
        if clo < 0 or chi < clo:
            raise ValueError("invalid congested overhead range")


def synthetic_planetlab_matrix(
    params: PlanetLabParams | None = None,
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    topology: GeoTopology | None = None,
) -> tuple[LatencyMatrix, GeoTopology]:
    """Generate a seeded PlanetLab-like RTT matrix.

    Parameters
    ----------
    params:
        Generation tunables; defaults reproduce the 226-node setting.
    seed / rng:
        Provide either a seed or a generator; ``seed`` wins if both given.
    topology:
        Reuse an existing :class:`GeoTopology` instead of sampling one
        (its size must match ``params.n``).

    Returns
    -------
    (matrix, topology):
        The RTT matrix and the geographic layout that produced it.
    """
    params = params or PlanetLabParams()
    if seed is not None:
        rng = np.random.default_rng(seed)
    rng = rng or np.random.default_rng(0)

    if topology is None:
        topology = GeoTopology(params.n, params.regions, rng=rng)
    elif topology.n != params.n:
        raise ValueError(
            f"topology has {topology.n} nodes but params.n={params.n}"
        )

    n = params.n
    dist_km = topology.distance_km()
    base = (dist_km / FIBRE_KM_PER_MS) * params.path_stretch

    # Per-node additive overhead, applied to both endpoints of a pair.
    lo, hi = params.node_overhead_range
    node_overhead = rng.uniform(lo, hi, size=n)
    # Congested hosts: a heavy per-node tail on every path they join.
    if params.congested_fraction > 0:
        n_congested = int(round(params.congested_fraction * n))
        congested = rng.choice(n, size=n_congested, replace=False)
        clo, chi = params.congested_overhead_range
        node_overhead[congested] += rng.uniform(clo, chi, size=n_congested)
    overhead = params.access_overhead_ms + node_overhead[:, None] + node_overhead[None, :]

    # Log-normal multiplicative jitter, symmetric per pair.
    jitter = rng.lognormal(mean=0.0, sigma=params.jitter_sigma, size=(n, n))
    jitter = np.triu(jitter, k=1)
    jitter = jitter + jitter.T

    rtt = (base + overhead) * np.where(jitter > 0, jitter, 1.0)

    # Detoured pairs: inflate a random subset of the upper triangle.
    iu = np.triu_indices(n, k=1)
    n_pairs = iu[0].size
    n_detours = int(round(params.detour_fraction * n_pairs))
    if n_detours > 0:
        picks = rng.choice(n_pairs, size=n_detours, replace=False)
        det = np.ones(n_pairs)
        det[picks] = params.detour_inflation
        detour = np.zeros((n, n))
        detour[iu] = det
        detour = detour + detour.T
        np.fill_diagonal(detour, 1.0)
        rtt = rtt * detour

    np.fill_diagonal(rtt, 0.0)
    names = tuple(
        f"{topology.region_name(i)}-{i:03d}" for i in range(n)
    )
    return LatencyMatrix(rtt, names), topology


def small_matrix(n: int = 30, seed: int = 0) -> LatencyMatrix:
    """Convenience: a small seeded matrix for tests and examples."""
    params = PlanetLabParams(n=n)
    matrix, _ = synthetic_planetlab_matrix(params, seed=seed)
    return matrix
