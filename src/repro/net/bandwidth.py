"""Bandwidth models: how long payload bytes take on a wide-area path.

The simulator's default is latency-only delivery (message size never
affects timing), which matches the paper's evaluation — it measures
pure access *latency*.  For the migration and large-object scenarios a
transfer's serialization time matters, so :class:`~repro.sim.node.Network`
accepts a bandwidth model that adds ``size / bandwidth`` to the one-way
delay.

The paper motivates co-placing replicas near users partly because
"low-latency network connections tend to have high bandwidth" (its
references [7], [8]); :class:`LatencyCorrelatedBandwidth` encodes exactly
that inverse relation, and :class:`UniformBandwidth` provides the flat
alternative.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "BandwidthModel",
    "LatencyOnlyBandwidth",
    "UniformBandwidth",
    "LatencyCorrelatedBandwidth",
]


class BandwidthModel(ABC):
    """Maps (endpoint pair, payload size) to serialization delay."""

    @abstractmethod
    def transfer_ms(self, rtt_ms: float, size_bytes: int) -> float:
        """Extra delivery delay in ms for ``size_bytes`` on this path."""


class LatencyOnlyBandwidth(BandwidthModel):
    """Infinite bandwidth: message size never affects timing (default)."""

    def transfer_ms(self, rtt_ms: float, size_bytes: int) -> float:
        return 0.0


class UniformBandwidth(BandwidthModel):
    """Every path carries the same bandwidth.

    Parameters
    ----------
    mbps:
        Path bandwidth in megabits per second.
    """

    def __init__(self, mbps: float) -> None:
        if mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.mbps = mbps

    def transfer_ms(self, rtt_ms: float, size_bytes: int) -> float:
        if size_bytes <= 0:
            return 0.0
        bits = size_bytes * 8.0
        return bits / (self.mbps * 1e6) * 1e3


class LatencyCorrelatedBandwidth(BandwidthModel):
    """Bandwidth falls with path RTT (the paper's [7]/[8] observation).

    ``bandwidth(rtt) = peak_mbps / (1 + rtt / reference_rtt_ms)`` —
    a nearby pair gets close to ``peak_mbps``; a pair at the reference
    RTT gets half of it; intercontinental paths proportionally less.
    This is the classic TCP-throughput-vs-RTT shape without modelling
    loss explicitly.
    """

    def __init__(self, peak_mbps: float = 1_000.0,
                 reference_rtt_ms: float = 50.0,
                 floor_mbps: float = 10.0) -> None:
        if peak_mbps <= 0 or reference_rtt_ms <= 0 or floor_mbps <= 0:
            raise ValueError("bandwidth parameters must be positive")
        if floor_mbps > peak_mbps:
            raise ValueError("floor cannot exceed peak bandwidth")
        self.peak_mbps = peak_mbps
        self.reference_rtt_ms = reference_rtt_ms
        self.floor_mbps = floor_mbps

    def bandwidth_mbps(self, rtt_ms: float) -> float:
        """Effective path bandwidth for a given RTT."""
        value = self.peak_mbps / (1.0 + max(rtt_ms, 0.0) / self.reference_rtt_ms)
        return max(value, self.floor_mbps)

    def transfer_ms(self, rtt_ms: float, size_bytes: int) -> float:
        if size_bytes <= 0:
            return 0.0
        bits = size_bytes * 8.0
        return bits / (self.bandwidth_mbps(rtt_ms) * 1e6) * 1e3
