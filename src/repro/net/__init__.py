"""Network substrate: round-trip-time matrices and wide-area topologies.

The placement algorithms in :mod:`repro` consume nothing from the network
but a pairwise round-trip-time (RTT) matrix over a set of nodes.  The paper
evaluated on RTTs measured between 226 PlanetLab hosts; this package
provides (a) the :class:`LatencyMatrix` abstraction those algorithms use,
(b) a seeded synthetic generator that reproduces PlanetLab's qualitative
structure (:func:`synthetic_planetlab_matrix`), and (c) loaders/savers for
externally measured matrices.
"""

from repro.net.latency import LatencyMatrix
from repro.net.domains import FailureDomains
from repro.net.topology import GeoTopology, Region, WORLD_REGIONS, great_circle_km
from repro.net.planetlab import PlanetLabParams, synthetic_planetlab_matrix
from repro.net.bandwidth import (
    BandwidthModel,
    LatencyCorrelatedBandwidth,
    LatencyOnlyBandwidth,
    UniformBandwidth,
)
from repro.net.io import load_matrix, save_matrix

__all__ = [
    "LatencyMatrix",
    "FailureDomains",
    "GeoTopology",
    "Region",
    "WORLD_REGIONS",
    "great_circle_km",
    "PlanetLabParams",
    "synthetic_planetlab_matrix",
    "load_matrix",
    "save_matrix",
    "BandwidthModel",
    "LatencyOnlyBandwidth",
    "UniformBandwidth",
    "LatencyCorrelatedBandwidth",
]
