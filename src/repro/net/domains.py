"""Hierarchical failure domains and the co-failure probability model.

The paper's placement objective is pure access latency; nothing stops
it from packing every replica into one blast radius.  Mills et al.
("Algorithms for Optimal Replica Placement Under Correlated Failure in
Hierarchical Failure Domains") model exactly the structure real
deployments have: a tree of failure domains — here region → data
center → rack → node — where each domain fails independently with a
per-level probability and a node is down iff any of its ancestors (or
the node itself) has failed.

:class:`FailureDomains` annotates the *candidate positions* of a store
(indices into its candidate list, the frame every controller decision
uses) with that tree and answers the probability queries the
availability-aware placement needs:

* ``p_down(i)`` — marginal outage probability of one site;
* ``p_pair_down(a, b)`` — probability both sites are down at once, in
  closed form, monotone in the number of shared ancestor levels;
* ``cofailure_risk(sites)`` — mean pairwise co-failure probability of a
  placement, the risk functional the λ-objective penalizes;
* ``prob_all_down(sites)`` — exact probability the placement loses
  *every* replica, by recursion over the domain tree;
* ``expected_survivors(sites)`` — expected number of live replicas.

Per-level probabilities are homogeneous (every rack is as mortal as
every other rack), which keeps the model a four-knob scenario input and
makes ``expected_survivors`` permutation-invariant over equivalent
sites — the property tests pin both facts.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.net.latency import LatencyMatrix

__all__ = ["FailureDomains"]

#: Tree levels, root-most first.  ``shared_depth`` counts how many of
#: these two sites have in common: 0 (different regions) … 3 (same rack).
LEVELS = ("region", "dc", "rack")


def _balanced_sizes(n: int, groups: int) -> list[int]:
    """Split ``n`` items into ``groups`` parts, sizes differing by ≤ 1."""
    base, extra = divmod(n, groups)
    return [base + (1 if g < extra else 0) for g in range(groups)]


def _greedy_groups(items: Sequence[int], n_groups: int,
                   dist: Callable[[int, int], float]) -> list[list[int]]:
    """Deterministic proximity grouping: seed each group with the
    lowest-numbered unassigned item, fill it with the seed's nearest
    unassigned neighbours (ties broken by item id)."""
    unassigned = list(items)
    groups: list[list[int]] = []
    for size in _balanced_sizes(len(unassigned), n_groups):
        seed = unassigned[0]
        rest = sorted(unassigned[1:], key=lambda p: (dist(seed, p), p))
        members = sorted([seed] + rest[:max(size - 1, 0)])
        groups.append(members)
        taken = set(members)
        unassigned = [p for p in unassigned if p not in taken]
    return groups


class FailureDomains:
    """A region → DC → rack failure-domain tree over candidate positions.

    Parameters
    ----------
    region_of / dc_of / rack_of:
        Per-position domain ids, one entry per candidate position.  The
        tree must nest: two positions in the same rack share a DC, two
        in the same DC share a region.
    p_region / p_dc / p_rack / p_node:
        Independent outage probability of one domain at each level
        (homogeneous within a level).  A node is down iff any domain on
        its root path — or the node itself — has failed.
    """

    def __init__(self, region_of: Sequence[int], dc_of: Sequence[int],
                 rack_of: Sequence[int], *, p_region: float = 0.0,
                 p_dc: float = 0.0, p_rack: float = 0.0,
                 p_node: float = 0.0) -> None:
        self.region_of = np.asarray(region_of, dtype=int)
        self.dc_of = np.asarray(dc_of, dtype=int)
        self.rack_of = np.asarray(rack_of, dtype=int)
        n = self.region_of.size
        if n == 0:
            raise ValueError("failure domains need at least one position")
        if self.dc_of.shape != (n,) or self.rack_of.shape != (n,):
            raise ValueError("one region/dc/rack id per position required")
        for level, array in (("region", self.region_of), ("dc", self.dc_of),
                             ("rack", self.rack_of)):
            if np.any(array < 0):
                raise ValueError(f"{level} ids must be non-negative")
        # Nesting: a rack lives in exactly one DC, a DC in one region.
        for child, parent, what in ((self.rack_of, self.dc_of, "rack"),
                                    (self.dc_of, self.region_of, "dc")):
            mapping: dict[int, int] = {}
            for c, p in zip(child.tolist(), parent.tolist()):
                if mapping.setdefault(c, p) != p:
                    raise ValueError(
                        f"{what} {c} spans multiple parent domains")
        for name, p in (("p_region", p_region), ("p_dc", p_dc),
                        ("p_rack", p_rack), ("p_node", p_node)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must lie in [0, 1)")
        self.p_region = float(p_region)
        self.p_dc = float(p_dc)
        self.p_rack = float(p_rack)
        self.p_node = float(p_node)
        self._level_of = {"region": self.region_of, "dc": self.dc_of,
                          "rack": self.rack_of}
        #: Survival probability of one node: every level up at once.
        self.p_up = ((1.0 - self.p_region) * (1.0 - self.p_dc)
                     * (1.0 - self.p_rack) * (1.0 - self.p_node))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def contiguous(cls, n: int, regions: int, dcs_per_region: int,
                   racks_per_dc: int, **probs: float) -> "FailureDomains":
        """Evenly slice ``n`` positions into a balanced domain tree.

        Position blocks are contiguous: positions ``0..`` fill the first
        rack of the first DC of the first region, and so on.
        """
        if n < 1 or regions < 1 or dcs_per_region < 1 or racks_per_dc < 1:
            raise ValueError("domain counts must be positive")
        n_racks = regions * dcs_per_region * racks_per_dc
        if n_racks > n:
            raise ValueError(f"{n_racks} racks for {n} positions — "
                             "every rack needs at least one position")
        rack_of = np.arange(n) * n_racks // n
        dc_of = rack_of // racks_per_dc
        region_of = dc_of // dcs_per_region
        return cls(region_of, dc_of, rack_of, **probs)

    @classmethod
    def from_matrix(cls, matrix: LatencyMatrix, candidates: Sequence[int],
                    regions: int, dcs_per_region: int, racks_per_dc: int,
                    **probs: float) -> "FailureDomains":
        """Proximity tree: mutually close candidates share a rack.

        Racks are built by deterministic greedy grouping on ground-truth
        RTTs (lowest-numbered unassigned candidate seeds a rack, its
        nearest unassigned neighbours fill it); racks then group into
        DCs, and DCs into regions, by the same rule on their seed
        members.  This is the realistic annotation for a wide-area
        world: the co-located candidates — the ones a latency-only
        placement is tempted to pack replicas into — are exactly the
        ones that fail together.
        """
        candidates = [int(c) for c in candidates]
        n = len(candidates)
        n_racks = regions * dcs_per_region * racks_per_dc
        if regions < 1 or dcs_per_region < 1 or racks_per_dc < 1:
            raise ValueError("domain counts must be positive")
        if n_racks > n:
            raise ValueError(f"{n_racks} racks for {n} positions — "
                             "every rack needs at least one position")

        def rtt(a: int, b: int) -> float:
            return float(matrix.latency(candidates[a], candidates[b]))

        racks = _greedy_groups(range(n), n_racks, rtt)
        rack_seed = [members[0] for members in racks]
        dcs = _greedy_groups(range(len(racks)), regions * dcs_per_region,
                             lambda a, b: rtt(rack_seed[a], rack_seed[b]))
        dc_seed = [rack_seed[group[0]] for group in dcs]
        region_groups = _greedy_groups(
            range(len(dcs)), regions,
            lambda a, b: rtt(dc_seed[a], dc_seed[b]))

        rack_of = np.empty(n, dtype=int)
        for rack_id, members in enumerate(racks):
            rack_of[members] = rack_id
        dc_of_rack = np.empty(len(racks), dtype=int)
        for dc_id, group in enumerate(dcs):
            dc_of_rack[group] = dc_id
        region_of_dc = np.empty(len(dcs), dtype=int)
        for region_id, group in enumerate(region_groups):
            region_of_dc[group] = region_id
        dc_of = dc_of_rack[rack_of]
        region_of = region_of_dc[dc_of]
        return cls(region_of, dc_of, rack_of, **probs)

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of annotated positions."""
        return self.region_of.size

    def shared_depth(self, a: int, b: int) -> int:
        """Shared ancestor levels of two positions: 0 (different
        regions) … 3 (same rack).  ``shared_depth(a, a)`` is 3."""
        if self.region_of[a] != self.region_of[b]:
            return 0
        if self.dc_of[a] != self.dc_of[b]:
            return 1
        if self.rack_of[a] != self.rack_of[b]:
            return 2
        return 3

    def members(self, level: str, domain_id: int) -> tuple[int, ...]:
        """Positions inside one domain (sorted)."""
        ids = self._level_of.get(level)
        if ids is None:
            raise ValueError(f"unknown level {level!r}; known: {LEVELS}")
        return tuple(int(p) for p in np.flatnonzero(ids == int(domain_id)))

    def resolve(self, spec: str) -> tuple[int, ...]:
        """Positions of a ``"level:id"`` domain spec (e.g. ``"rack:2"``)."""
        level, _, raw = spec.partition(":")
        if level not in LEVELS or not raw:
            raise ValueError(
                f"bad domain spec {spec!r}; use '<level>:<id>' with level "
                f"in {LEVELS}")
        members = self.members(level, int(raw))
        if not members:
            raise ValueError(f"domain {spec!r} has no positions")
        return members

    def densest_members(self, level: str,
                        positions: Sequence[int]) -> tuple[int, ...]:
        """Members of the ``level`` domain holding most of ``positions``.

        Ties break toward the lowest domain id, so the answer is
        deterministic.  With ``positions`` empty the lowest-id domain of
        the level wins (it holds zero of them, like every other).
        """
        ids = self._level_of.get(level)
        if ids is None:
            raise ValueError(f"unknown level {level!r}; known: {LEVELS}")
        counts: dict[int, int] = {}
        for p in positions:
            domain = int(ids[int(p)])
            counts[domain] = counts.get(domain, 0) + 1
        if counts:
            densest = max(sorted(counts), key=lambda d: counts[d])
        else:
            densest = int(ids.min())
        return self.members(level, densest)

    # ------------------------------------------------------------------
    # The co-failure model
    # ------------------------------------------------------------------
    def p_down(self, position: int) -> float:
        """Marginal probability one site is down."""
        if not 0 <= int(position) < self.n:
            raise ValueError(f"position {position} outside {self.n} sites")
        return 1.0 - self.p_up

    def _shared_up(self, depth: int) -> float:
        """P(all *shared* ancestors up) for a pair at ``depth``."""
        shared = 1.0
        for level_p, level_depth in ((self.p_region, 1), (self.p_dc, 2),
                                     (self.p_rack, 3)):
            if depth >= level_depth:
                shared *= 1.0 - level_p
        return shared

    def p_pair_down(self, a: int, b: int) -> float:
        """Probability both sites are down at once (closed form).

        With shared-ancestor survival ``q`` and marginal survival
        ``p_up``, inclusion–exclusion over the independent domain
        failures gives ``1 - 2·p_up + p_up²/q``: the more ancestry the
        pair shares, the smaller ``q`` and the larger the joint outage —
        monotone in :meth:`shared_depth`.
        """
        if int(a) == int(b):
            return self.p_down(a)
        q = self._shared_up(self.shared_depth(int(a), int(b)))
        return 1.0 - 2.0 * self.p_up + self.p_up * self.p_up / q

    def cofailure_risk(self, sites: Sequence[int]) -> float:
        """Mean pairwise co-failure probability of a placement.

        The risk functional of the availability objective: it is
        permutation-invariant (pairs are enumerated over the *sorted*
        placement, so even float summation order is canonical), rewards
        domain-disjoint spreading, and — unlike expected survivors,
        which homogeneous per-level probabilities make placement-
        invariant — actually discriminates between placements.
        Placements with fewer than two sites carry zero pairwise risk.
        """
        ordered = sorted(int(s) for s in sites)
        if len(ordered) != len(set(ordered)):
            raise ValueError("placement sites must be distinct")
        if len(ordered) < 2:
            return 0.0
        total = 0.0
        pairs = 0
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                total += self.p_pair_down(a, b)
                pairs += 1
        return total / pairs

    def expected_survivors(self, sites: Sequence[int]) -> float:
        """Expected number of live replicas of a placement."""
        return sum(1.0 - self.p_down(s) for s in sorted(int(s) for s in sites))

    def prob_all_down(self, sites: Sequence[int]) -> float:
        """Exact probability every replica of a placement is down.

        Recursion over the domain tree: a region's sites are all down if
        the region failed, or it survived and every DC group below lost
        all its sites — and so on down to independent per-node failures
        within a rack.
        """
        ordered = sorted(set(int(s) for s in sites))
        if not ordered:
            raise ValueError("placement must be non-empty")
        by_region: dict[int, list[int]] = {}
        for s in ordered:
            by_region.setdefault(int(self.region_of[s]), []).append(s)
        result = 1.0
        for region in sorted(by_region):
            result *= self._down_below(by_region[region], self.p_region,
                                       (self.dc_of, self.p_dc))
        return result

    def _down_below(self, sites: list[int], p_level: float,
                    child: tuple[np.ndarray, float] | None) -> float:
        """P(all ``sites`` down) for one domain at a level, recursively."""
        if child is None:
            inner = 1.0
            for _ in sites:
                inner *= self.p_node
        else:
            ids, p_child = child
            grand: tuple[np.ndarray, float] | None
            if ids is self.dc_of:
                grand = (self.rack_of, self.p_rack)
            else:
                grand = None
            by_child: dict[int, list[int]] = {}
            for s in sites:
                by_child.setdefault(int(ids[s]), []).append(s)
            inner = 1.0
            for domain in sorted(by_child):
                inner *= self._down_below(by_child[domain], p_child, grand)
        return p_level + (1.0 - p_level) * inner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FailureDomains(n={self.n}, "
                f"regions={len(set(self.region_of.tolist()))}, "
                f"dcs={len(set(self.dc_of.tolist()))}, "
                f"racks={len(set(self.rack_of.tolist()))}, "
                f"p=({self.p_region}, {self.p_dc}, {self.p_rack}, "
                f"{self.p_node}))")
