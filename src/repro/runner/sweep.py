"""Declarative sweeps: a small JSON/TOML spec in, figure artifacts out.

``repro sweep spec.toml --jobs 4 --cache-dir .cache`` runs a whole
evaluation sweep described by a file instead of code — the shape the
extended comparisons in the related replica-migration work (Mseddi et
al., Luo et al.) need: many seeded grid points, farmed out to workers,
resumable after interruption.

A spec names one experiment ``kind`` and its parameters::

    kind = "figure1"              # figure1|figure2|figure3|coords|table2

    [setting]                     # EvaluationSetting overrides
    n_nodes = 60
    n_runs = 5
    seed = 7

    [params]                      # forwarded to the experiment runner
    datacenter_counts = [5, 10]
    k = 2

The result is the repo's existing artifact types —
:class:`~repro.analysis.experiment.FigureResult` or Table II rows — so
every export path (CSV, JSON, ASCII charts, Markdown report sections)
works unchanged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields
from typing import Any, Sequence

from repro.analysis.experiment import (
    EvaluationSetting,
    FigureResult,
    Table2Row,
    run_coord_ablation,
    run_figure1,
    run_figure2,
    run_figure3,
    run_table2,
)

__all__ = ["SweepSpec", "load_sweep_spec", "run_sweep", "SWEEP_KINDS"]

#: Experiment kind -> (runner, allowed parameter names).
SWEEP_KINDS: dict[str, tuple[Any, tuple[str, ...]]] = {
    "figure1": (run_figure1, ("datacenter_counts", "k", "micro_clusters")),
    "figure2": (run_figure2, ("replica_counts", "n_dc", "micro_clusters")),
    "figure3": (run_figure3, ("micro_cluster_counts", "replica_counts",
                              "n_dc")),
    "coords": (run_coord_ablation, ("systems", "n_dc", "k",
                                    "micro_clusters")),
    "table2": (run_table2, ("n_accesses_list", "k", "m", "dim", "seed")),
}


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep: experiment kind, setting, parameters."""

    kind: str
    setting: EvaluationSetting
    params: dict[str, Any]

    def __post_init__(self) -> None:
        if self.kind not in SWEEP_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}; "
                             f"known: {sorted(SWEEP_KINDS)}")
        allowed = SWEEP_KINDS[self.kind][1]
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ValueError(f"sweep kind {self.kind!r} does not accept "
                             f"{unknown}; allowed: {sorted(allowed)}")


def _parse_spec(payload: dict, source: str) -> SweepSpec:
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: sweep spec must be a table/object")
    kind = payload.get("kind") or payload.get("figure")
    if not kind:
        raise ValueError(f"{source}: sweep spec needs a 'kind' entry")
    setting_fields = {f.name for f in fields(EvaluationSetting)}
    setting_payload = payload.get("setting", {})
    unknown = sorted(set(setting_payload) - setting_fields)
    if unknown:
        raise ValueError(f"{source}: unknown setting fields {unknown}")
    setting = EvaluationSetting(**setting_payload)
    params = dict(payload.get("params", {}))
    # Sequence params arrive as lists; the runners expect tuples.
    params = {key: tuple(value) if isinstance(value, list) else value
              for key, value in params.items()}
    return SweepSpec(kind=str(kind), setting=setting, params=params)


def load_sweep_spec(path: str) -> SweepSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file."""
    extension = os.path.splitext(path)[1].lower()
    if extension == ".toml":
        import tomllib
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    elif extension == ".json":
        with open(path) as handle:
            payload = json.load(handle)
    else:
        raise ValueError(f"unsupported sweep spec format {extension!r} "
                         "(use .toml or .json)")
    return _parse_spec(payload, path)


def run_sweep(spec: SweepSpec, *,
              jobs: int | None = 1,
              cache_dir: str | None = None,
              resume: bool = False,
              chunk_size: int | None = None,
              ) -> FigureResult | Sequence[Table2Row]:
    """Execute one declarative sweep through the parallel runner."""
    runner, _allowed = SWEEP_KINDS[spec.kind]
    kwargs: dict[str, Any] = dict(spec.params)
    if spec.kind == "table2":
        kwargs.setdefault("seed", spec.setting.seed)
        return run_table2(jobs=jobs, cache_dir=cache_dir, resume=resume,
                          chunk_size=chunk_size, **kwargs)
    return runner(spec.setting, jobs=jobs, cache_dir=cache_dir,
                  resume=resume, chunk_size=chunk_size, **kwargs)
