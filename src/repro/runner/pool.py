"""Parallel job execution: a warm worker pool with chunked dispatch.

:func:`execute` takes a list of job specs (:mod:`repro.runner.jobs`) and
returns their results **in spec order**, regardless of how execution was
scheduled.  The execution engine is built for the paper's workload shape
— thousands of ~4 ms cells — where naive pooling loses to serial:

* **Serial fallback** — ``jobs=1`` runs every job in-process with zero
  extra machinery (no pickling, no subprocesses), which is also the mode
  the test suite uses for reference results.
* **Warm worker pool** — ``jobs=N`` spawns N persistent worker
  processes (:mod:`repro.runner.workers`) once per :func:`execute` call
  and keeps them alive across crash-retry rounds: a dead worker is
  replaced individually, the rest of the pool keeps its warm state
  (attached world, world memo, imports).  The world ships once — via a
  shared-memory segment for the standard array world (every worker maps
  the same pages, zero-copy), pickled otherwise.
* **Chunked, queue-leveled dispatch** — specs are grouped into
  :class:`~repro.runner.jobs.JobChunk` batches so dispatch and
  registry-merge costs amortize over dozens of jobs.  Chunk size is
  auto-tuned from the first completed chunk's measured
  dispatch-overhead/job-cost ratio (override with ``chunk_size=``, CLI
  ``--chunk-size``).  Workers *pull* the next chunk when idle rather
  than receiving a static partition, so heterogeneous cells cannot
  straggle behind an unlucky pre-assignment.
* **Result cache / resume** — with a ``cache_dir``, completed jobs are
  persisted through :class:`~repro.runner.cache.ResultCache` chunk by
  chunk (one fsync pass per chunk, not per job); with ``resume=True``,
  cached results are loaded up front and only the missing jobs execute.
* **Fault tolerance** — a worker process dying (OOM-kill, segfault,
  ``os._exit``) is detected on its process sentinel; its in-flight
  chunk is requeued and only that worker is respawned, up to
  ``retries`` times.  A stall watchdog (``timeout`` seconds without any
  chunk completing) kills and replaces the wedged workers the same way.
  ``KeyboardInterrupt`` stops dispatch, drains in-flight chunks for a
  bounded window (their results land in the cache) and re-raises —
  Ctrl-C plus ``resume`` loses nothing.

Observability: the parent times the whole call (``runner.sweep``) and
counts ``runner.jobs`` / ``runner.jobs_completed`` / ``runner.chunks`` /
``runner.cache_hits`` / ``runner.cache_misses`` /
``runner.worker_crashes`` / ``runner.stalls`` / ``runner.retries``,
and gauges ``runner.chunk_size``, ``runner.dispatch_overhead`` (seconds,
first completed chunk) and ``runner.shm_bytes`` (shared-memory world
size).  Each worker runs its chunk under a private
:class:`~repro.obs.MetricsRegistry` (which also captures the jobs' inner
instrumentation, e.g. ``placement.online.place`` and the per-job
``runner.job`` phase timer) and ships it back with the chunk; the parent
merges every chunk registry into the active one — histograms and timers
merge by addition, so pooled worker metrics are lossless.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Sequence

from repro import obs
from repro.runner import workers
from repro.runner.cache import MISS, ResultCache
from repro.runner.jobs import ChunkResult, JobChunk
from repro.runner.workers import CRASH_ONCE_ENV  # re-export (test hook)

__all__ = ["execute", "RunnerError", "WorkerCrashError", "StallTimeoutError",
           "CRASH_ONCE_ENV"]


class RunnerError(RuntimeError):
    """Base class for executor failures."""


class WorkerCrashError(RunnerError):
    """A worker process died and the retry budget is exhausted."""


class StallTimeoutError(RunnerError):
    """No chunk completed within the stall timeout."""


#: How long a Ctrl-C waits for in-flight chunks before hard-stopping.
_DRAIN_SECONDS = 10.0

#: Auto-tuner: jobs in the pilot chunks the tuner measures.
_PILOT_CHUNK_JOBS = 2
#: Auto-tuner: chunk compute must be >= this multiple of the measured
#: dispatch overhead (20x == overhead <= 5% of the chunk).
_OVERHEAD_AMORTIZATION = 20.0
#: Auto-tuner: a chunk should also bundle at least this much compute, so
#: parent-side per-chunk costs (merge, cache fsync) amortize too.
_MIN_CHUNK_SECONDS = 0.05
#: Load leveling: aim for at least this many chunks per worker, so slow
#: cells cannot straggle behind a too-coarse partition.
_LEVELING_CHUNKS_PER_WORKER = 4
#: Hard ceiling on jobs per chunk.
_MAX_CHUNK_JOBS = 256

#: Test hook: called after each recorded chunk in the parallel loop
#: (the KeyboardInterrupt drain tests raise from it deterministically).
_after_chunk_hook = None

_UNSET = object()


def execute(specs: Sequence[Any], *,
            jobs: int | None = 1,
            cache_dir: str | None = None,
            resume: bool = False,
            timeout: float | None = None,
            retries: int = 2,
            world: Any = None,
            chunk_size: int | None = None,
            meta_out: list | None = None) -> list[Any]:
    """Run every spec and return the results in spec order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None`` means ``os.cpu_count()``.
    cache_dir:
        When set, completed jobs are persisted here as they finish.
    resume:
        Load cached results before executing; only misses run.  Requires
        ``cache_dir``.
    timeout:
        Stall watchdog, in seconds: if no chunk completes for this long,
        the workers holding in-flight chunks are killed and replaced and
        their chunks retried (the jobs of one sweep are homogeneous, so
        a stall this long means some job blew its budget).  ``None``
        disables the watchdog.
    retries:
        How many worker-loss events (crashes or stalls) to tolerate —
        each replaces only the dead worker, never the pool — before
        giving up.
    world:
        Explicit ``(matrix, coords, heights)`` world for specs that do
        not carry a setting (:func:`repro.analysis.experiment.
        run_comparison` uses this).  Shipped to the pool once, through
        shared memory when it is the standard array world.
    chunk_size:
        Jobs per dispatched chunk.  ``None`` (default) auto-tunes from
        the first completed chunk's dispatch-overhead/job-cost ratio;
        ``1`` restores one-job-per-dispatch.  Ignored when ``jobs=1``.
    meta_out:
        Optional list; when given, one dict per spec (in spec order) is
        appended recording how the cell was served: ``source``
        (``cache`` / ``serial`` / ``worker``), ``chunk`` and ``worker``
        ids, and the cell's data-plane ``engine`` when the spec carries
        one.
    """
    if resume and cache_dir is None:
        raise ValueError("resume=True requires a cache_dir")
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("jobs must be >= 1 (or None for cpu_count)")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1 (or None for auto)")

    registry = obs.get_registry()
    cache = ResultCache(cache_dir) if cache_dir else None
    results: list[Any] = [_UNSET] * len(specs)
    meta: dict[int, dict] | None = {} if meta_out is not None else None

    with registry.phase("runner.sweep"):
        registry.counter("runner.jobs").inc(len(specs))
        remaining: list[int] = []
        for i, spec in enumerate(specs):
            if cache is not None and resume:
                hit = cache.get(spec)
                if hit is not MISS:
                    results[i] = hit
                    registry.counter("runner.cache_hits").inc()
                    if meta is not None:
                        meta[i] = {"source": "cache",
                                   "engine": _engine_of(spec)}
                    continue
                registry.counter("runner.cache_misses").inc()
            remaining.append(i)

        if jobs == 1:
            _execute_serial(specs, remaining, world, cache, results,
                            registry, meta)
        elif remaining:
            _execute_pool(specs, remaining, jobs, world, cache, results,
                          registry, timeout, retries, chunk_size, meta)

    missing = [i for i, r in enumerate(results) if r is _UNSET]
    if missing:  # pragma: no cover - defensive; all paths fill or raise
        raise RunnerError(f"jobs {missing} produced no result")
    if meta_out is not None and meta is not None:
        meta_out.extend({"index": i, **meta.get(i, {})}
                        for i in range(len(specs)))
    return results


def _engine_of(spec: Any) -> Any:
    """The data-plane engine a cell runs on, if its spec records one."""
    engine = getattr(spec, "engine", None)
    if engine is None:
        engine = getattr(getattr(spec, "scenario", None), "engine", None)
    return engine


def _execute_serial(specs, remaining, world, cache, results, registry, meta):
    for i in remaining:
        with registry.phase("runner.job"):
            result = specs[i].execute(world if world is not None
                                      else workers.world_for(specs[i]))
        results[i] = result
        if cache is not None:
            cache.put(specs[i], result)
        registry.counter("runner.jobs_completed").inc()
        if meta is not None:
            meta[i] = {"source": "serial", "engine": _engine_of(specs[i])}


# ----------------------------------------------------------------------
# The warm pool
# ----------------------------------------------------------------------

class _PoolWorker:
    """Parent-side record of one live worker process."""

    __slots__ = ("id", "process", "conn", "chunk", "sent_at")

    def __init__(self, worker_id, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.chunk: JobChunk | None = None
        self.sent_at = 0.0


class WorkerPool:
    """N persistent workers, each fed chunk-by-chunk over a private pipe.

    Dispatch is parent-driven pull-on-idle: a worker gets its next chunk
    only when its previous one returns, which levels load across
    heterogeneous cells without any shared queue (and therefore without
    shared locks a killed worker could wedge).
    """

    def __init__(self, n_workers: int, world_handle: tuple | None) -> None:
        self._ctx = multiprocessing.get_context()
        self._world_handle = world_handle
        self._next_id = 0
        self._closed = False
        self.workers: list[_PoolWorker] = [self._spawn()
                                           for _ in range(n_workers)]

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=workers.worker_main,
            args=(self._next_id, child_conn, self._world_handle),
            daemon=True)
        process.start()
        child_conn.close()
        worker = _PoolWorker(self._next_id, process, parent_conn)
        self._next_id += 1
        return worker

    def idle(self) -> list[_PoolWorker]:
        return [w for w in self.workers if w.chunk is None]

    def in_flight(self) -> list[_PoolWorker]:
        return [w for w in self.workers if w.chunk is not None]

    def send(self, worker: _PoolWorker, chunk: JobChunk) -> None:
        worker.chunk = chunk
        worker.sent_at = time.perf_counter()
        worker.conn.send(chunk)

    def wait(self, timeout: float | None):
        """Events among busy workers: ``(worker, "result"|"dead", payload)``.

        An empty list means the timeout expired with nothing completed
        (the stall signal).  A worker whose pipe delivered a result and
        then hit EOF is still a result — salvage beats suspicion.
        """
        busy = self.in_flight()
        waitables = [w.conn for w in busy] + [w.process.sentinel
                                             for w in busy]
        ready = set(connection.wait(waitables, timeout))
        events = []
        for worker in busy:
            if worker.conn in ready:
                try:
                    payload = worker.conn.recv()
                except (EOFError, OSError):
                    events.append((worker, "dead", None))
                else:
                    events.append((worker, "result", payload))
            elif worker.process.sentinel in ready:
                events.append((worker, "dead", None))
        return events

    def replace(self, worker: _PoolWorker) -> JobChunk | None:
        """Kill and respawn one worker; return its lost chunk, if any."""
        lost = worker.chunk
        self._reap(worker)
        self.workers[self.workers.index(worker)] = self._spawn()
        return lost

    def kill_stalled(self) -> list[JobChunk]:
        """Replace every worker holding an in-flight chunk (the wedged
        set at a stall); return their chunks for requeueing."""
        lost = []
        for worker in self.in_flight():
            chunk = self.replace(worker)
            if chunk is not None:
                lost.append(chunk)
        return lost

    def _reap(self, worker: _PoolWorker) -> None:
        try:
            worker.process.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
        worker.process.join(timeout=5)
        if worker.process.is_alive():  # pragma: no cover - wedged hard
            worker.process.kill()
            worker.process.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def shutdown(self, hard: bool = False) -> None:
        """Stop every worker: idle ones get a goodbye message (they exit
        cleanly, keeping pipes intact), busy or ``hard``-stopped ones are
        terminated."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if not hard and worker.chunk is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self.workers:
            self._reap(worker)


# ----------------------------------------------------------------------
# Chunk cutting and auto-tuning
# ----------------------------------------------------------------------

class _ChunkDispatcher:
    """Cuts pending spec indices into chunks, auto-tuning the size.

    Until the first chunk completes, chunks are small pilots; the first
    completion measures the dispatch overhead (parent wall time minus
    worker compute) and the per-job cost, and sizes subsequent chunks so
    the overhead amortizes to <= ~5% — clamped so every worker still
    sees several chunks (load leveling) and to a hard ceiling.
    """

    def __init__(self, specs, remaining, chunk_size, n_workers, registry):
        self._specs = specs
        self._pending = deque(remaining)
        self._requeued: deque[JobChunk] = deque()
        self._fixed = chunk_size
        self._tuned: int | None = None
        self._n_workers = n_workers
        self._total = len(remaining)
        self._next_chunk_id = 0
        self._overhead_recorded = False
        self._registry = registry
        if chunk_size is not None:
            registry.gauge("runner.chunk_size").set(chunk_size)

    def has_pending(self) -> bool:
        return bool(self._pending or self._requeued)

    def outstanding(self) -> int:
        """Jobs not yet recorded (pending + requeued)."""
        return len(self._pending) + sum(len(c) for c in self._requeued)

    def _current_size(self) -> int:
        if self._fixed is not None:
            return self._fixed
        if self._tuned is not None:
            return self._tuned
        return _PILOT_CHUNK_JOBS

    def next_chunk(self) -> JobChunk | None:
        if self._requeued:
            return self._requeued.popleft()
        if not self._pending:
            return None
        size = min(self._current_size(), len(self._pending))
        items = tuple((i, self._specs[i])
                      for i in (self._pending.popleft()
                                for _ in range(size)))
        chunk = JobChunk(chunk_id=self._next_chunk_id, items=items)
        self._next_chunk_id += 1
        self._registry.counter("runner.chunks").inc()
        return chunk

    def requeue(self, chunks: Sequence[JobChunk]) -> None:
        self._requeued.extend(chunks)

    def note_complete(self, result: ChunkResult, wall_seconds: float) -> None:
        n_jobs = len(result.indices)
        overhead = max(wall_seconds - result.exec_seconds, 0.0)
        if not self._overhead_recorded:
            self._overhead_recorded = True
            self._registry.gauge("runner.dispatch_overhead").set(overhead)
        if self._fixed is not None or self._tuned is not None:
            return
        per_job = max((result.exec_seconds - result.setup_seconds)
                      / max(n_jobs, 1), 1e-6)
        amortized = math.ceil(overhead * _OVERHEAD_AMORTIZATION / per_job)
        floor = math.ceil(_MIN_CHUNK_SECONDS / per_job)
        leveling_cap = max(1, math.ceil(
            self._total / (self._n_workers * _LEVELING_CHUNKS_PER_WORKER)))
        self._tuned = max(1, min(max(amortized, floor), leveling_cap,
                                 _MAX_CHUNK_JOBS))
        self._registry.gauge("runner.chunk_size").set(self._tuned)


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------

def _world_handle(specs, remaining, world, registry):
    """How the pool ships its world: ``(handle, SharedWorld | None)``.

    An explicit world ships as-is; when every remaining spec shares one
    setting, the parent builds that world once (memoized) and shares it,
    so N workers stop doing N redundant builds.  Heterogeneous settings
    fall back to per-worker builds through the bounded world memo.
    """
    if world is None:
        settings = {getattr(specs[i], "setting", None) for i in remaining}
        if len(settings) != 1:
            return ("none",), None
        setting = settings.pop()
        if setting is None:
            return ("none",), None
        world = workers.world_memo.get_or_build(setting)
    shared = workers.try_pack_shared(world)
    if shared is not None:
        registry.gauge("runner.shm_bytes").set(shared.nbytes)
        return shared.handle, shared
    return ("pickle", world), None


def _record_chunk(result: ChunkResult, worker, specs, cache, results,
                  registry, dispatcher, meta) -> None:
    registry.merge(result.registry)
    pairs = list(zip(result.indices, result.results))
    for i, value in pairs:
        results[i] = value
    if cache is not None:
        cache.put_many([(specs[i], value) for i, value in pairs])
    registry.counter("runner.jobs_completed").inc(len(pairs))
    dispatcher.note_complete(result, time.perf_counter() - worker.sent_at)
    if meta is not None:
        for i in result.indices:
            meta[i] = {"source": "worker", "worker": worker.id,
                       "chunk": result.chunk_id,
                       "engine": _engine_of(specs[i])}


def _execute_pool(specs, remaining, jobs, world, cache, results, registry,
                  timeout, retries, chunk_size, meta):
    handle, shared = _world_handle(specs, remaining, world, registry)
    n_workers = max(1, min(jobs, len(remaining)))
    pool = WorkerPool(n_workers, handle)
    dispatcher = _ChunkDispatcher(specs, remaining, chunk_size, n_workers,
                                  registry)
    attempts = 0

    def note_crash(worker) -> None:
        """One worker died: count it, replace only it, requeue its chunk."""
        nonlocal attempts
        registry.counter("runner.worker_crashes").inc()
        attempts += 1
        lost = pool.replace(worker)
        unfinished = dispatcher.outstanding() + (len(lost) if lost else 0)
        if attempts > retries:
            raise WorkerCrashError(
                f"worker crashed and {retries} retries exhausted "
                f"({unfinished} jobs unfinished)")
        registry.counter("runner.retries").inc()
        if lost is not None:
            dispatcher.requeue([lost])

    try:
        while dispatcher.has_pending() or pool.in_flight():
            for worker in pool.idle():
                if not worker.process.is_alive():
                    note_crash(worker)  # replacement is fed next pass
                    continue
                chunk = dispatcher.next_chunk()
                if chunk is None:
                    break
                try:
                    pool.send(worker, chunk)
                except (BrokenPipeError, OSError):
                    note_crash(worker)  # chunk was claimed: requeued
            if not pool.in_flight():
                continue
            events = pool.wait(timeout)
            if not events:
                registry.counter("runner.stalls").inc()
                attempts += 1
                in_flight = len(pool.in_flight())
                dispatcher.requeue(pool.kill_stalled())
                if attempts > retries:
                    raise StallTimeoutError(
                        f"no chunk completed within {timeout}s "
                        f"({in_flight} in flight) and {retries} retries "
                        f"exhausted")
                registry.counter("runner.retries").inc()
                continue
            for worker, kind, payload in events:
                if kind == "result":
                    _record_chunk(payload, worker, specs, cache, results,
                                  registry, dispatcher, meta)
                    worker.chunk = None
                    if _after_chunk_hook is not None:
                        _after_chunk_hook()
                else:
                    note_crash(worker)
    except KeyboardInterrupt:
        # Graceful drain: stop dispatching (pending chunks are simply
        # never sent), give in-flight chunks a bounded window to finish
        # — their results land in the cache — then hard-stop and
        # re-raise.  Ctrl-C + resume loses nothing.
        _drain_in_flight(pool, specs, cache, results, registry, dispatcher,
                         meta)
        raise
    finally:
        pool.shutdown()
        if shared is not None:
            shared.close()


def _drain_in_flight(pool, specs, cache, results, registry, dispatcher,
                     meta) -> None:
    deadline = time.monotonic() + _DRAIN_SECONDS
    try:
        while pool.in_flight():
            left = deadline - time.monotonic()
            if left <= 0:
                break
            for worker, kind, payload in pool.wait(left):
                if kind == "result":
                    _record_chunk(payload, worker, specs, cache, results,
                                  registry, dispatcher, meta)
                worker.chunk = None
    except KeyboardInterrupt:
        pass  # second Ctrl-C: stop draining immediately
    finally:
        pool.shutdown(hard=True)
